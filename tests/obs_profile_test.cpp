// Kernel profiler & performance attribution (obs/profile.h): base-name
// rollup, stage/frame attribution with conservation across all three
// axes, fallback buckets, the validating JSON round-trip, the RunRecord
// projection feeding `fdet_report profile diff`, and end-to-end stage
// attribution through detect::Pipeline.
#include "obs/profile.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "core/check.h"
#include "core/rng.h"
#include "detect/pipeline.h"
#include "haar/profile.h"
#include "obs/compare.h"
#include "obs/trace.h"
#include "vgpu/kernel.h"

namespace fdet::obs {
namespace {

TEST(KernelBaseName, StripsPerScaleSuffixOnly) {
  EXPECT_EQ(kernel_base_name("cascade_s0"), "cascade");
  EXPECT_EQ(kernel_base_name("cascade_s12"), "cascade");
  EXPECT_EQ(kernel_base_name("scan2_s7"), "scan2");
  // No suffix, or a tail that is not `_s<digits>`, passes through.
  EXPECT_EQ(kernel_base_name("scale"), "scale");
  EXPECT_EQ(kernel_base_name("transpose"), "transpose");
  EXPECT_EQ(kernel_base_name("foo_s"), "foo_s");
  EXPECT_EQ(kernel_base_name("foo_stage"), "foo_stage");
  EXPECT_EQ(kernel_base_name("foo_s1x"), "foo_s1x");
}

TEST(StageScope, NestsWithInnermostWinning) {
  EXPECT_EQ(ProfileStageScope::current(), nullptr);
  {
    const ProfileStageScope outer("integral");
    ASSERT_NE(ProfileStageScope::current(), nullptr);
    EXPECT_EQ(*ProfileStageScope::current(), "integral");
    {
      const ProfileStageScope inner("cascade");
      EXPECT_EQ(*ProfileStageScope::current(), "cascade");
    }
    EXPECT_EQ(*ProfileStageScope::current(), "integral");
  }
  EXPECT_EQ(ProfileStageScope::current(), nullptr);
}

/// One tiny launch with a distinguishable amount of work.
vgpu::LaunchCost run_named(const std::string& name, int alu_per_lane) {
  const vgpu::DeviceSpec spec;
  vgpu::KernelConfig config{
      .name = name, .grid = {1, 1, 1}, .block = {32, 1, 1}};
  return vgpu::execute_kernel(
      spec, config, [=](const vgpu::ThreadCoord&, vgpu::LaneCtx& ctx,
                        vgpu::SharedMem&) { ctx.alu(alu_per_lane); });
}

double sum_kernel_cycles(const ProfileRecord& record) {
  double sum = 0.0;
  for (const KernelProfile& k : record.kernels) {
    sum += k.total_cycles;
  }
  return sum;
}

double sum_bucket_cycles(const std::vector<AttributionBucket>& buckets) {
  double sum = 0.0;
  for (const AttributionBucket& b : buckets) {
    sum += b.cycles;
  }
  return sum;
}

TEST(KernelProfiler, ConservesCyclesAcrossAllThreeAxes) {
  KernelProfiler profiler;
  {
    const ScopedProfileCollection collection(profiler);
    const ScopedTraceContext frame0(make_frame_context(42, 0));
    {
      const ProfileStageScope stage("integral");
      run_named("scan_s0", 8);
      run_named("transpose_s0", 4);
    }
    {
      const ProfileStageScope stage("cascade");
      run_named("cascade_s0", 16);
      run_named("cascade_s1", 16);
    }
  }
  {
    const ScopedProfileCollection collection(profiler);
    const ScopedTraceContext frame1(make_frame_context(42, 1));
    const ProfileStageScope stage("cascade");
    run_named("cascade_s0", 16);
  }

  EXPECT_EQ(profiler.launches(), 5u);
  const ProfileRecord record = profiler.snapshot("test");
  EXPECT_EQ(record.launches, 5u);
  ASSERT_GT(record.total_cycles, 0.0);

  // Every bucket sums the same per-launch service cycles, so kernel,
  // stage, and frame totals all equal the grand total.
  const double tol = record.total_cycles * 1e-9;
  EXPECT_NEAR(sum_kernel_cycles(record), record.total_cycles, tol);
  EXPECT_NEAR(sum_bucket_cycles(record.stages), record.total_cycles, tol);
  EXPECT_NEAR(sum_bucket_cycles(record.frames), record.total_cycles, tol);

  // The per-scale cascade launches rolled up under one base name.
  const KernelProfile* cascade = record.find_kernel("cascade");
  ASSERT_NE(cascade, nullptr);
  EXPECT_EQ(cascade->launches, 3u);
  EXPECT_EQ(record.find_kernel("cascade_s0"), nullptr);

  // Two stages, two frames, keyed as installed.
  ASSERT_EQ(record.stages.size(), 2u);
  const AttributionBucket* integral = record.find_stage("integral");
  ASSERT_NE(integral, nullptr);
  EXPECT_EQ(integral->launches, 2u);
  ASSERT_EQ(record.frames.size(), 2u);
  // Frames sort by name (hex trace id); both installed contexts appear.
  const auto has_frame = [&](std::uint64_t trace_id) {
    const std::string id = hex_id(trace_id);
    for (const AttributionBucket& f : record.frames) {
      if (f.name == id) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has_frame(make_frame_context(42, 0).trace_id));
  EXPECT_TRUE(has_frame(make_frame_context(42, 1).trace_id));
}

TEST(KernelProfiler, FallbackBucketsCatchUnscopedLaunches) {
  KernelProfiler profiler;
  {
    const ScopedProfileCollection collection(profiler);
    run_named("orphan", 4);  // no stage scope, no trace context
  }
  const ProfileRecord record = profiler.snapshot("test");
  ASSERT_EQ(record.stages.size(), 1u);
  EXPECT_EQ(record.stages[0].name, kUnattributedStage);
  ASSERT_EQ(record.frames.size(), 1u);
  EXPECT_EQ(record.frames[0].name, kNoFrame);
  // Fallback launches still count toward the conserved total.
  EXPECT_NEAR(record.stages[0].cycles, record.total_cycles, 1e-9);
}

TEST(KernelProfiler, EmptyHookSuppressesOuterProfiler) {
  KernelProfiler profiler;
  const ScopedProfileCollection collection(profiler);
  run_named("seen", 4);
  {
    const vgpu::ScopedKernelProfileHook suppress(nullptr);
    run_named("hidden", 4);
  }
  run_named("seen", 4);
  EXPECT_EQ(profiler.launches(), 2u);
  const ProfileRecord record = profiler.snapshot("test");
  EXPECT_EQ(record.find_kernel("hidden"), nullptr);
  ASSERT_NE(record.find_kernel("seen"), nullptr);
  EXPECT_EQ(record.find_kernel("seen")->launches, 2u);
}

TEST(KernelProfiler, ResetDiscardsCollectedLaunches) {
  KernelProfiler profiler;
  {
    const ScopedProfileCollection collection(profiler);
    run_named("k", 4);
  }
  EXPECT_EQ(profiler.launches(), 1u);
  profiler.reset();
  EXPECT_EQ(profiler.launches(), 0u);
  EXPECT_DOUBLE_EQ(profiler.total_cycles(), 0.0);
  EXPECT_TRUE(profiler.snapshot("test").kernels.empty());
}

ProfileRecord sample_record() {
  KernelProfiler profiler;
  {
    const ScopedProfileCollection collection(profiler);
    const ScopedTraceContext frame(make_frame_context(7, 0));
    const ProfileStageScope stage("integral");
    run_named("scan_s0", 8);
    run_named("scan_s1", 6);
    run_named("transpose", 3);
  }
  return profiler.snapshot("roundtrip", "ours", {{"host", "test"}});
}

TEST(ProfileRecordJson, DumpParsesBackIdentically) {
  const ProfileRecord record = sample_record();
  const ProfileRecord reparsed = ProfileRecord::parse(record.dump());

  EXPECT_EQ(reparsed.schema_version, kProfileSchemaVersion);
  EXPECT_EQ(reparsed.artifact, "roundtrip");
  EXPECT_EQ(reparsed.variant, "ours");
  EXPECT_EQ(format_labels(reparsed.labels), "host=test");
  EXPECT_EQ(reparsed.launches, record.launches);
  EXPECT_DOUBLE_EQ(reparsed.total_cycles, record.total_cycles);
  EXPECT_DOUBLE_EQ(reparsed.ridge_ops_per_byte, record.ridge_ops_per_byte);

  ASSERT_EQ(reparsed.kernels.size(), record.kernels.size());
  for (std::size_t i = 0; i < record.kernels.size(); ++i) {
    const KernelProfile& a = record.kernels[i];
    const KernelProfile& b = reparsed.kernels[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.launches, b.launches);
    EXPECT_DOUBLE_EQ(a.total_cycles, b.total_cycles);
    EXPECT_DOUBLE_EQ(a.issue_cycles, b.issue_cycles);
    EXPECT_DOUBLE_EQ(a.stall_cycles, b.stall_cycles);
    EXPECT_DOUBLE_EQ(a.divergence_cycles, b.divergence_cycles);
    EXPECT_DOUBLE_EQ(a.bank_conflict_cycles, b.bank_conflict_cycles);
    EXPECT_DOUBLE_EQ(a.occupancy_limited_cycles, b.occupancy_limited_cycles);
    EXPECT_DOUBLE_EQ(a.occupancy_cycles, b.occupancy_cycles);
    EXPECT_EQ(a.arithmetic_ops, b.arithmetic_ops);
    EXPECT_EQ(a.global_bytes, b.global_bytes);
  }
  ASSERT_EQ(reparsed.stages.size(), record.stages.size());
  ASSERT_EQ(reparsed.frames.size(), record.frames.size());
  EXPECT_EQ(reparsed.frames[0].name, record.frames[0].name);
}

TEST(ProfileRecordJson, FileRoundTripThroughWriteAndLoad) {
  const ProfileRecord record = sample_record();
  const std::string path = "profile_roundtrip_tmp.json";
  record.write_file(path);
  const ProfileRecord loaded = ProfileRecord::load_file(path);
  EXPECT_EQ(loaded.artifact, "roundtrip");
  EXPECT_DOUBLE_EQ(loaded.total_cycles, record.total_cycles);
  std::remove(path.c_str());
}

TEST(ProfileRecordJson, RejectsSchemaMismatchAndMissingFields) {
  const ProfileRecord record = sample_record();
  json::Value::Object members = record.to_json().as_object();
  for (auto& [key, value] : members) {
    if (key == "schema_version") {
      value = json::Value::make_number(kProfileSchemaVersion + 1);
    }
  }
  const json::Value wrong_schema = json::Value::make_object(members);
  EXPECT_THROW(ProfileRecord::from_json(wrong_schema), core::CheckError);

  EXPECT_THROW(ProfileRecord::parse("{}"), core::CheckError);
  EXPECT_THROW(ProfileRecord::parse("not json"), core::CheckError);
  EXPECT_THROW(ProfileRecord::load_file("no_such_profile.json"),
               core::CheckError);
}

TEST(KernelProfileDerived, RatiosAndRooflineClassification) {
  KernelProfile k;
  // Degenerate kernel: no cycles, no branches, no traffic.
  EXPECT_DOUBLE_EQ(k.achieved_occupancy(), 0.0);
  EXPECT_DOUBLE_EQ(k.branch_efficiency(), 1.0);
  EXPECT_DOUBLE_EQ(k.simd_efficiency(), 1.0);
  EXPECT_STREQ(k.roofline_bound(4.0), "compute");  // no traffic

  k.total_cycles = 100.0;
  k.occupancy_cycles = 50.0;
  k.warp_branches = 10;
  k.divergent_branches = 1;
  k.arithmetic_ops = 100;
  k.global_bytes = 50;  // intensity 2 < ridge 4
  EXPECT_DOUBLE_EQ(k.achieved_occupancy(), 0.5);
  EXPECT_DOUBLE_EQ(k.branch_efficiency(), 0.9);
  EXPECT_DOUBLE_EQ(k.arithmetic_intensity(), 2.0);
  EXPECT_STREQ(k.roofline_bound(4.0), "memory");
  EXPECT_STREQ(k.roofline_bound(1.0), "compute");
}

/// Hand-built single-kernel record for direction-sensitive diff tests.
ProfileRecord synthetic_record(double cascade_cycles, double occ_limited,
                               std::uint64_t conflicts, double occupancy) {
  ProfileRecord r;
  r.artifact = "synthetic";
  r.ridge_ops_per_byte = 4.0;
  KernelProfile k;
  k.name = "cascade";
  k.launches = 10;
  k.total_cycles = cascade_cycles;
  k.issue_cycles = cascade_cycles * 0.8;
  k.stall_cycles = cascade_cycles * 0.2;
  k.occupancy_limited_cycles = occ_limited;
  k.occupancy_cycles = cascade_cycles * occupancy;
  k.bank_conflicts = conflicts;
  k.global_transactions = 1000;
  k.warp_branches = 100;
  r.kernels.push_back(k);
  AttributionBucket stage;
  stage.name = "cascade";
  stage.launches = 10;
  stage.cycles = cascade_cycles;
  r.stages.push_back(stage);
  r.launches = 10;
  r.total_cycles = cascade_cycles;
  return r;
}

TEST(ProfileDiff, CycleGrowthRegressesThroughRunRecordProjection) {
  const ProfileRecord baseline = synthetic_record(1000.0, 50.0, 10, 0.6);
  const ProfileRecord slower = synthetic_record(1500.0, 50.0, 10, 0.6);
  const CompareReport report =
      compare_runs(baseline.to_run_record(), slower.to_run_record());
  EXPECT_FALSE(report.ok());
  EXPECT_GT(report.regressed, 0);
  // The reverse direction improves rather than regresses.
  const CompareReport reverse =
      compare_runs(slower.to_run_record(), baseline.to_run_record());
  EXPECT_TRUE(reverse.ok());
  EXPECT_EQ(reverse.regressed, 0);
}

TEST(ProfileDiff, OccupancyLimitedCyclesGateAsLowerIsBetter) {
  // "occupancy_limited_cycles" contains both "occupancy" (higher is
  // better) and "cycles" (lower is better); the cycles rule must win,
  // so growth regresses.
  const ProfileRecord baseline = synthetic_record(1000.0, 50.0, 10, 0.6);
  const ProfileRecord worse = synthetic_record(1000.0, 400.0, 10, 0.6);
  const CompareReport report =
      compare_runs(baseline.to_run_record(), worse.to_run_record());
  EXPECT_FALSE(report.ok());
}

TEST(ProfileDiff, ConflictGrowthAndOccupancyDropRegress) {
  const ProfileRecord baseline = synthetic_record(1000.0, 50.0, 10, 0.6);
  const ProfileRecord conflicted = synthetic_record(1000.0, 50.0, 500, 0.6);
  EXPECT_FALSE(
      compare_runs(baseline.to_run_record(), conflicted.to_run_record()).ok());

  const ProfileRecord less_occupied = synthetic_record(1000.0, 50.0, 10, 0.3);
  EXPECT_FALSE(compare_runs(baseline.to_run_record(),
                            less_occupied.to_run_record())
                   .ok());
}

TEST(ProfileDiff, IdenticalRecordsPass) {
  const ProfileRecord record = synthetic_record(1000.0, 50.0, 10, 0.6);
  const CompareReport report =
      compare_runs(record.to_run_record(), record.to_run_record());
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.regressed, 0);
}

TEST(ProfileRender, TextNamesKernelsStagesAndCoverage) {
  const ProfileRecord record = sample_record();
  const std::string text = render_profile_text(record);
  EXPECT_NE(text.find("PROFILE roundtrip"), std::string::npos);
  EXPECT_NE(text.find("scan"), std::string::npos);
  EXPECT_NE(text.find("stage breakdown"), std::string::npos);
  EXPECT_NE(text.find("integral"), std::string::npos);
  EXPECT_NE(text.find("attribution:"), std::string::npos);
  EXPECT_NE(text.find("100.0%"), std::string::npos);
}

TEST(ProfilePath, CanonicalArtifactName) {
  EXPECT_EQ(profile_record_path("fig5"), "PROFILE_fig5.json");
}

// --- pipeline integration ----------------------------------------------

TEST(PipelineAttribution, StagesCoverTimelineBusyCycles) {
  // A cheap un-calibrated profile cascade is enough: attribution only
  // cares that the pipeline's kernels run under their stage scopes.
  const vgpu::DeviceSpec spec;
  haar::Cascade cascade = haar::build_profile_cascade(
      "profile-test", std::vector<int>{8, 8, 8}, 99);
  detect::PipelineOptions options;
  options.min_neighbors = 1;
  const detect::Pipeline pipeline(spec, std::move(cascade), options);

  core::Rng rng(17);
  img::ImageU8 frame(96, 72);
  for (auto& p : frame.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }

  KernelProfiler profiler;
  detect::FrameResult result;
  {
    const ScopedProfileCollection collection(profiler);
    const ScopedTraceContext frame_ctx(make_frame_context(2012, 0));
    result = pipeline.process(frame);
  }
  ASSERT_GT(profiler.launches(), 0u);
  const ProfileRecord record = profiler.snapshot("pipeline");

  // Stage scopes installed by the pipeline cover every launch: nothing
  // lands in the fallback bucket, and the expected stages are present.
  EXPECT_EQ(record.find_stage(kUnattributedStage), nullptr);
  ASSERT_NE(record.find_stage("scale"), nullptr);
  ASSERT_NE(record.find_stage("integral"), nullptr);
  ASSERT_NE(record.find_stage("cascade"), nullptr);

  // All cycles land in the frame's trace bucket.
  ASSERT_EQ(record.frames.size(), 1u);
  EXPECT_EQ(record.frames[0].name,
            hex_id(make_frame_context(2012, 0).trace_id));

  // Conservation against the scheduler: the profiler's grand total is
  // exactly the busy SM time the timeline accounts for this frame.
  EXPECT_NEAR(spec.cycles_to_seconds(record.total_cycles),
              result.timeline.sm_busy_s,
              result.timeline.sm_busy_s * 1e-9);

  // The paper's headline attribution is expressible from the record: the
  // integral stage is a meaningful but minority share of detection time.
  const AttributionBucket* integral = record.find_stage("integral");
  const double integral_share = integral->cycles / record.total_cycles;
  EXPECT_GT(integral_share, 0.0);
  EXPECT_LT(integral_share, 0.9);
}

}  // namespace
}  // namespace fdet::obs
