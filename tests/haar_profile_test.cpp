#include "haar/profile.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/rng.h"

namespace fdet::haar {
namespace {

TEST(Profile, OpencvProfileMatchesPaperTotals) {
  const auto profile = opencv_frontal_profile();
  EXPECT_EQ(profile.size(), 25u);
  EXPECT_EQ(std::accumulate(profile.begin(), profile.end(), 0), 2913);
  EXPECT_EQ(profile.front(), 9);  // tiny first stage: the early-exit filter
}

TEST(Profile, CompactProfileMatchesPaperTotals) {
  const auto profile = compact_profile();
  EXPECT_EQ(profile.size(), 25u);
  EXPECT_EQ(std::accumulate(profile.begin(), profile.end(), 0), 1446);
  // Shape preserved: stages grow with depth, first stage is small.
  EXPECT_LE(profile.front(), 6);
  EXPECT_GT(profile.back(), profile.front());
}

TEST(Profile, ScaleProfilePreservesTotalExactly) {
  const std::vector<int> reference{10, 20, 30, 40};
  for (const int target : {4, 37, 50, 100, 333}) {
    const auto scaled = scale_profile(reference, target);
    EXPECT_EQ(std::accumulate(scaled.begin(), scaled.end(), 0), target);
    for (const int n : scaled) {
      EXPECT_GE(n, 1);
    }
  }
}

TEST(Profile, BuildIsDeterministicPerSeed) {
  const std::vector<int> sizes{3, 4};
  const Cascade a = build_profile_cascade("a", sizes, 42);
  const Cascade b = build_profile_cascade("b", sizes, 42);
  for (int s = 0; s < 2; ++s) {
    for (std::size_t c = 0; c < a.stages()[static_cast<std::size_t>(s)].classifiers.size(); ++c) {
      EXPECT_EQ(a.stages()[static_cast<std::size_t>(s)].classifiers[c].feature,
                b.stages()[static_cast<std::size_t>(s)].classifiers[c].feature);
    }
  }
}

TEST(Profile, PaperPassProfileReproducesFig7Head) {
  const auto pass = paper_pass_profile(25);
  ASSERT_EQ(pass.size(), 25u);
  EXPECT_NEAR(pass[0], 0.0548, 1e-6);          // 94.52 % rejected at stage 1
  EXPECT_NEAR(pass[0] * pass[1], 0.0148, 1e-4);// 4 % of all rejected at stage 2
  for (std::size_t s = 2; s < pass.size(); ++s) {
    EXPECT_GT(pass[s], 0.0);
    EXPECT_LT(pass[s], 1.0);
  }
}

TEST(Profile, CalibrationPinsStageOnePassRate) {
  core::Rng rng(17);
  img::ImageU8 scene(200, 160);
  for (auto& p : scene.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  const auto ii = integral::integral_cpu(scene);

  // ±1-vote stumps quantize scores, so use a wide stage for granularity.
  Cascade cascade =
      build_profile_cascade("calib", std::vector<int>{40, 8, 8}, 31);
  const std::vector<double> pass_rates{0.10, 0.5, 0.5};
  calibrate_stage_thresholds(cascade, {&ii}, pass_rates, 2);

  // Measure the realized stage-1 pass rate on the same grid.
  int total = 0;
  int passed = 0;
  for (int y = 0; y + kWindowSize <= ii.height(); y += 2) {
    for (int x = 0; x + kWindowSize <= ii.width(); x += 2) {
      ++total;
      passed += (cascade.evaluate(ii, x, y, 1).depth >= 1);
    }
  }
  const double rate = static_cast<double>(passed) / total;
  EXPECT_NEAR(rate, 0.10, 0.05);
}

TEST(Profile, CalibrationProducesMonotoneSurvival) {
  core::Rng rng(18);
  img::ImageU8 scene(180, 140);
  for (auto& p : scene.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  const auto ii = integral::integral_cpu(scene);
  Cascade cascade =
      build_profile_cascade("mono", std::vector<int>{6, 6, 6, 6}, 77);
  calibrate_stage_thresholds(cascade, {&ii},
                             std::vector<double>{0.3, 0.5, 0.5, 0.5}, 3);

  int prev = std::numeric_limits<int>::max();
  for (int depth = 1; depth <= 4; ++depth) {
    int survivors = 0;
    for (int y = 0; y + kWindowSize <= ii.height(); y += 3) {
      for (int x = 0; x + kWindowSize <= ii.width(); x += 3) {
        survivors += (cascade.evaluate(ii, x, y, depth).depth >= depth);
      }
    }
    EXPECT_LE(survivors, prev);
    prev = survivors;
  }
}

TEST(Profile, CalibrationRejectsBadArity) {
  Cascade cascade = build_profile_cascade("bad", std::vector<int>{2, 2}, 1);
  core::Rng rng(1);
  img::ImageU8 scene(64, 64);
  const auto ii = integral::integral_cpu(scene);
  EXPECT_THROW(calibrate_stage_thresholds(cascade, {&ii},
                                          std::vector<double>{0.5}, 4),
               core::CheckError);
}

}  // namespace
}  // namespace fdet::haar
