// SLO engine: burn-rate arithmetic, window accounting, and the claim the
// serving layer rests on — the default decision stream reproduces the
// legacy DegradationLadder::observe() dynamics exactly.
#include "obs/slo.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/check.h"
#include "core/rng.h"
#include "obs/metrics.h"
#include "serve/policy.h"

namespace fdet::obs {
namespace {

SloOptions options_with_deadline(double deadline_ms) {
  SloOptions options;
  options.deadline_ms = deadline_ms;
  return options;
}

TEST(SloEngine, SingleMissBurnsTheFastBudget) {
  SloEngine engine(options_with_deadline(40.0));
  const SloDecision good = engine.observe_frame(10.0);
  EXPECT_FALSE(good.miss);
  EXPECT_FALSE(good.degrade);
  EXPECT_DOUBLE_EQ(good.fast_burn, 0.0);

  const SloDecision miss = engine.observe_frame(41.0);
  EXPECT_TRUE(miss.miss);
  EXPECT_TRUE(miss.degrade);
  // fast window = 1 frame, miss ratio 1.0, budget 0.05 -> burn 20.
  EXPECT_DOUBLE_EQ(miss.fast_burn, 1.0 / engine.options().miss_budget);
  EXPECT_GT(miss.slow_burn, 0.0);
}

TEST(SloEngine, RecoverySignalNeedsAComfortableStreak) {
  SloOptions options = options_with_deadline(40.0);
  options.recover_fraction = 0.75;
  options.recover_after = 3;
  SloEngine engine(options);

  engine.observe_frame(50.0);  // miss resets everything
  // Two comfortable frames: no recover signal yet.
  EXPECT_FALSE(engine.observe_frame(10.0).recover);
  EXPECT_FALSE(engine.observe_frame(10.0).recover);
  // An in-budget but too-close frame (>= 0.75 * 40 = 30) resets the streak.
  EXPECT_FALSE(engine.observe_frame(35.0).recover);
  EXPECT_FALSE(engine.observe_frame(10.0).recover);
  EXPECT_FALSE(engine.observe_frame(10.0).recover);
  // Third consecutive comfortable frame fires the signal...
  EXPECT_TRUE(engine.observe_frame(10.0).recover);
  // ...and firing resets the streak: the next frame does not re-fire.
  EXPECT_FALSE(engine.observe_frame(10.0).recover);
}

TEST(SloEngine, ResetRecoveryClearsTheStreakOnly) {
  SloEngine engine(options_with_deadline(40.0));
  engine.observe_frame(10.0);
  engine.observe_frame(10.0);
  engine.reset_recovery();  // breaker-forced serial fallback
  EXPECT_FALSE(engine.observe_frame(10.0).recover);
  EXPECT_FALSE(engine.observe_frame(10.0).recover);
  EXPECT_TRUE(engine.observe_frame(10.0).recover);
  // Window statistics were untouched by the reset.
  EXPECT_EQ(engine.snapshot().frames, 5u);
}

// The equivalence the serving layer relies on (service.cpp drives the
// ladder from SloDecision by default): for any latency stream, applying
// the engine's decisions must trace the same level trajectory as the
// legacy local state machine.
TEST(SloEngine, DefaultDecisionsReproduceLegacyLadderTrajectory) {
  const double deadline = 40.0;
  serve::DegradeOptions degrade;
  SloOptions slo = options_with_deadline(deadline);
  slo.recover_fraction = degrade.recover_fraction;
  slo.recover_after = degrade.recover_after;

  SloEngine engine(slo);
  serve::DegradationLadder legacy(degrade, deadline);
  serve::DegradationLadder driven(degrade, deadline);

  core::Rng rng(0xabcdef);
  for (int i = 0; i < 500; ++i) {
    // Mix of comfortable, close-to-deadline and missing frames.
    const double u = rng.uniform(0.0, 1.0);
    const double latency = u < 0.6   ? rng.uniform(1.0, 25.0)
                           : u < 0.8 ? rng.uniform(30.0, 40.0)
                                     : rng.uniform(40.1, 120.0);
    legacy.observe(latency);
    const SloDecision decision = engine.observe_frame(latency);
    driven.apply(decision.degrade, decision.recover,
                 decision.degrade ? "slo-burn" : "slo-recover");
    ASSERT_EQ(driven.level(), legacy.level()) << "frame " << i
                                              << " latency " << latency;
    ASSERT_EQ(driven.shifts(), legacy.shifts()) << "frame " << i;
  }
}

TEST(SloEngine, WindowMissRatioDecaysLifetimeDoesNot) {
  SloOptions options = options_with_deadline(40.0);
  options.window_frames = 16;
  options.window_slots = 4;
  SloEngine engine(options);

  for (int i = 0; i < 8; ++i) {
    engine.observe_frame(50.0);  // all misses
  }
  SloSnapshot hot = engine.snapshot();
  EXPECT_DOUBLE_EQ(hot.miss_ratio, 1.0);
  EXPECT_DOUBLE_EQ(hot.window_miss_ratio, 1.0);

  // A full window of good frames flushes the windowed ratio to zero while
  // the lifetime ratio remembers the bad start.
  for (int i = 0; i < 16; ++i) {
    engine.observe_frame(5.0);
  }
  SloSnapshot cooled = engine.snapshot();
  EXPECT_DOUBLE_EQ(cooled.window_miss_ratio, 0.0);
  EXPECT_DOUBLE_EQ(cooled.slow_burn, 0.0);
  EXPECT_NEAR(cooled.miss_ratio, 8.0 / 24.0, 1e-12);
  EXPECT_EQ(cooled.misses, 8u);
  EXPECT_EQ(cooled.frames, 24u);
}

TEST(SloEngine, SnapshotPercentilesTrackTheLatencyStream) {
  SloEngine engine(options_with_deadline(100.0));
  for (int i = 1; i <= 100; ++i) {
    engine.observe_frame(static_cast<double>(i));  // 1..100 ms
  }
  const SloSnapshot snap = engine.snapshot();
  const double bound = snap.max_relative_error;
  EXPECT_GT(bound, 0.0);
  EXPECT_NEAR(snap.p50_ms, 50.0, bound * 50.0 + 1e-9);
  EXPECT_NEAR(snap.p95_ms, 95.0, bound * 95.0 + 1e-9);
  EXPECT_NEAR(snap.p99_ms, 99.0, bound * 99.0 + 1e-9);
  EXPECT_NEAR(snap.p999_ms, 100.0, bound * 100.0 + 1e-9);
}

TEST(SloEngine, StageAndQueueDepthSketches) {
  SloEngine engine(options_with_deadline(40.0));
  EXPECT_FALSE(engine.has_queue_depth());
  engine.observe_stage("decode", 2.0);
  engine.observe_stage("detect", 8.0);
  engine.observe_stage("detect", 12.0);
  engine.observe_queue_depth(0.0);
  engine.observe_queue_depth(3.0);

  const std::vector<std::string> expected = {"decode", "detect"};
  EXPECT_EQ(engine.stages(), expected);
  EXPECT_NEAR(engine.stage_quantile("decode", 0.5), 2.0, 0.1);
  EXPECT_TRUE(engine.has_queue_depth());
  EXPECT_GE(engine.queue_depth_quantile(1.0), 2.9);
  EXPECT_THROW(engine.stage_quantile("nonexistent", 0.5), core::CheckError);
}

TEST(SloEngine, PublishExportsTheSloSeries) {
  SloEngine engine(options_with_deadline(40.0));
  engine.observe_frame(10.0);
  engine.observe_frame(50.0);
  engine.observe_stage("detect", 9.0);
  engine.observe_queue_depth(1.0);

  Registry registry;
  engine.publish(registry);
  EXPECT_DOUBLE_EQ(registry.gauge("slo.frames").value(), 2.0);
  EXPECT_DOUBLE_EQ(registry.gauge("slo.misses").value(), 1.0);
  EXPECT_DOUBLE_EQ(registry.gauge("slo.deadline_miss_ratio").value(), 0.5);
  EXPECT_DOUBLE_EQ(registry.gauge("slo.deadline_ms").value(), 40.0);
  EXPECT_GT(registry.gauge("slo.latency_p99_ms").value(), 0.0);
  EXPECT_GT(
      registry.gauge("slo.burn_rate", {{"window", "fast"}}).value(), 0.0);
  EXPECT_GT(
      registry.gauge("slo.stage_p99_ms", {{"stage", "detect"}}).value(), 0.0);
  EXPECT_GE(registry.gauge("slo.queue_depth_p99").value(), 0.9);
}

TEST(SloEngine, RejectsUnusableOptions) {
  // A zero deadline is caught at the first observation (the service
  // overrides it from ServiceOptions before running).
  SloEngine unset(SloOptions{});
  EXPECT_THROW(unset.observe_frame(1.0), core::CheckError);
  SloOptions zero_budget = options_with_deadline(40.0);
  zero_budget.miss_budget = 0.0;
  EXPECT_THROW(SloEngine{zero_budget}, core::CheckError);
  SloOptions zero_window = options_with_deadline(40.0);
  zero_window.window_frames = 0;
  EXPECT_THROW(SloEngine{zero_window}, core::CheckError);
}

}  // namespace
}  // namespace fdet::obs
