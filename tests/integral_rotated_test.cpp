#include "integral/rotated.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace fdet::integral {
namespace {

img::ImageU8 random_image(int w, int h, std::uint64_t seed) {
  core::Rng rng(seed);
  img::ImageU8 im(w, h);
  for (auto& p : im.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return im;
}

/// Oracle: cone sum by definition — pixels with y' <= y, |x'-x| <= y-y'.
std::int64_t brute_cone(const img::ImageU8& im, int x, int y) {
  std::int64_t acc = 0;
  for (int yp = 0; yp < im.height() && yp <= y; ++yp) {
    for (int xp = 0; xp < im.width(); ++xp) {
      if (std::abs(xp - x) <= y - yp) {
        acc += im(xp, yp);
      }
    }
  }
  return acc;
}

/// Oracle: solid tilted rectangle below apex (x, y) — in diagonal
/// coordinates d = x'-y', e = x'+y':
///   d in [x-y-2h, x-y-1], e in [x+y+1, x+y+2w].
std::int64_t brute_tilted(const img::ImageU8& im, int x, int y, int w, int h) {
  std::int64_t acc = 0;
  std::int64_t pixels = 0;
  for (int yp = 0; yp < im.height(); ++yp) {
    for (int xp = 0; xp < im.width(); ++xp) {
      const int d = xp - yp;
      const int e = xp + yp;
      if (d >= x - y - 2 * h && d <= x - y - 1 && e >= x + y + 1 &&
          e <= x + y + 2 * w) {
        acc += im(xp, yp);
        ++pixels;
      }
    }
  }
  EXPECT_EQ(pixels, 2 * w * h) << "tilted rect clipped by the image";
  return acc;
}

TEST(RotatedIntegral, ConeMatchesBruteForceEverywhere) {
  const img::ImageU8 im = random_image(13, 11, 1);
  const RotatedIntegralImage rot = rotated_integral_cpu(im);
  for (int y = 0; y < 11; ++y) {
    for (int x = -1; x <= 13; ++x) {
      ASSERT_EQ(rot.rsat(x, y), brute_cone(im, x, y))
          << "apex (" << x << "," << y << ")";
    }
  }
}

TEST(RotatedIntegral, ConstantImageConesHaveClosedForm) {
  img::ImageU8 im(9, 9);
  im.fill(1);
  const RotatedIntegralImage rot = rotated_integral_cpu(im);
  // Interior cone of height k has 1+3+...+(2k+1) = (k+1)^2 pixels.
  EXPECT_EQ(rot.rsat(4, 0), 1);
  EXPECT_EQ(rot.rsat(4, 1), 4);
  EXPECT_EQ(rot.rsat(4, 2), 9);
}

TEST(RotatedIntegral, TiltedSumMatchesBruteForce) {
  const img::ImageU8 im = random_image(40, 36, 3);
  const RotatedIntegralImage rot = rotated_integral_cpu(im);
  core::Rng rng(4);
  int checked = 0;
  for (int trial = 0; trial < 600; ++trial) {
    const int w = rng.uniform_int(1, 6);
    const int h = rng.uniform_int(1, 6);
    const int x = rng.uniform_int(0, 39);
    const int y = rng.uniform_int(0, 35);
    // Keep the rect fully inside the image.
    if (x - h + 1 < 0 || x + w - 1 >= 40 || y + w + h >= 36) {
      continue;
    }
    ASSERT_EQ(rot.tilted_sum(x, y, w, h), brute_tilted(im, x, y, w, h))
        << "apex (" << x << "," << y << ") w=" << w << " h=" << h;
    ++checked;
  }
  EXPECT_GT(checked, 200);
}

TEST(RotatedIntegral, TiltedSumOfUniformImageIsAreaTimesLevel) {
  img::ImageU8 im(30, 30);
  im.fill(7);
  const RotatedIntegralImage rot = rotated_integral_cpu(im);
  // 2*w*h pixels in a solid tilted rect.
  EXPECT_EQ(rot.tilted_sum(14, 2, 3, 4), 7 * 2 * 3 * 4);
  EXPECT_EQ(rot.tilted_sum(10, 0, 1, 1), 7 * 2);
}

TEST(RotatedIntegral, RejectsBadArguments) {
  const img::ImageU8 im = random_image(10, 10, 5);
  const RotatedIntegralImage rot = rotated_integral_cpu(im);
  EXPECT_THROW(rot.rsat(-2, 3), core::CheckError);
  EXPECT_THROW(rot.rsat(11, 3), core::CheckError);
  EXPECT_THROW(rot.rsat(3, 10), core::CheckError);
  EXPECT_EQ(rot.rsat(3, -1), 0);  // above the image: empty cone
  EXPECT_THROW(rot.tilted_sum(5, 2, 0, 1), core::CheckError);
}

class RotatedGpuParam : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RotatedGpuParam, GpuMatchesCpuConstruction) {
  const auto [w, h] = GetParam();
  const vgpu::DeviceSpec spec;
  const img::ImageU8 im = random_image(w, h, 7);
  const RotatedIntegralImage cpu = rotated_integral_cpu(im);
  const GpuRotatedResult gpu = rotated_integral_gpu(spec, im);
  ASSERT_EQ(gpu.integral.table().width(), cpu.table().width());
  ASSERT_EQ(gpu.integral.table().height(), cpu.table().height());
  for (int y = 0; y < h; ++y) {
    for (int x = -1; x <= w; ++x) {
      ASSERT_EQ(gpu.integral.rsat(x, y), cpu.rsat(x, y))
          << "(" << x << "," << y << ") size " << w << "x" << h;
    }
  }
  EXPECT_EQ(gpu.launches.size(), 3u);  // diag scan, edge carry, anti scan
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RotatedGpuParam,
    ::testing::Values(std::pair{8, 8}, std::pair{13, 9}, std::pair{9, 13},
                      std::pair{64, 48}, std::pair{100, 7},
                      std::pair{257, 130}));

TEST(RotatedIntegralGpu, LaunchCostsArePositive) {
  const vgpu::DeviceSpec spec;
  const img::ImageU8 im = random_image(96, 64, 9);
  const GpuRotatedResult gpu = rotated_integral_gpu(spec, im);
  for (const auto& launch : gpu.launches) {
    EXPECT_GT(launch.total_service_cycles, 0.0);
  }
  // Diagonal walks cannot coalesce like row scans: more transactions per
  // element than the upright scan (sanity check of the charged pattern).
  EXPECT_GT(gpu.launches[0].counters.global_transactions,
            static_cast<std::uint64_t>(96 * 64 / 128));
}

}  // namespace
}  // namespace fdet::integral
