// Regression tests for the LaunchTap seam (vgpu/tap.h): the dynamic
// checker and the static analyzer's capture engine are both taps, and
// when both are active around a launch the CHECKER wins — capture must
// observe nothing except a shadowed-launch notification. This precedence
// is load-bearing: fdet_check's hazard reports must not change because a
// capture scope happens to be open somewhere up the stack.
#include "vgpu/tap.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analyze/capture.h"
#include "vgpu/checker.h"
#include "vgpu/kernel.h"

namespace fdet::analyze {
namespace {

using vgpu::CheckScope;
using vgpu::KernelConfig;
using vgpu::LaneCtx;
using vgpu::SharedMem;
using vgpu::ThreadCoord;

const vgpu::DeviceSpec kSpec;
const KernelConfig kConfig{.name = "tapped",
                           .grid = {1, 1, 1},
                           .block = {32, 1, 1},
                           .shared_bytes = 32 * 4};

void launch_once() {
  vgpu::execute_kernel(
      kSpec, kConfig,
      [](const ThreadCoord& t, LaneCtx& ctx, SharedMem& shared) {
        auto tile = shared.array<std::int32_t>(32);
        const auto lane = static_cast<std::size_t>(t.thread.x);
        tile[lane] = t.thread.x;
        ctx.shared_store_at(shared, tile[lane]);
      });
}

TEST(LaunchTap, CaptureAloneObservesTheLaunch) {
  CaptureScope scope;
  launch_once();
  EXPECT_EQ(scope.engine().captures().size(), 1u);
  EXPECT_EQ(scope.shadowed_launches(), 0);
}

TEST(LaunchTap, CheckerShadowsCapture) {
  CaptureScope capture;
  {
    // Checker opened INSIDE the capture scope: for launches under both,
    // the checker takes the tap hooks and capture only counts shadows.
    CheckScope check;
    launch_once();
    EXPECT_EQ(check.reports().size(), 1u);
    EXPECT_TRUE(check.clean());
  }
  EXPECT_EQ(capture.engine().captures().size(), 0u);
  EXPECT_EQ(capture.shadowed_launches(), 1);

  // Once the checker closes, the same capture scope sees launches again.
  launch_once();
  EXPECT_EQ(capture.engine().captures().size(), 1u);
  EXPECT_EQ(capture.shadowed_launches(), 1);
}

TEST(LaunchTap, CheckerReportsAreIdenticalUnderCapture) {
  // A hazardous kernel (same-phase write/read race) must produce the same
  // hazard count whether or not a capture scope surrounds the check —
  // the precedence rule means capture cannot perturb verification.
  const auto racy = [](const ThreadCoord& t, LaneCtx& ctx, SharedMem&) {
    const auto self = static_cast<std::size_t>(t.thread.x);
    const std::size_t next = (self + 1) % 32;
    ctx.shared_store(self * 4, 4);
    ctx.shared_load(next * 4, 4);  // neighbour's slot, no barrier between
  };

  std::size_t hazards_plain = 0;
  {
    CheckScope check;
    vgpu::execute_kernel(kSpec, kConfig, racy);
    hazards_plain = check.hazard_count();
  }
  EXPECT_GT(hazards_plain, 0u);

  std::size_t hazards_shadowed = 0;
  {
    CaptureScope capture;
    CheckScope check;
    vgpu::execute_kernel(kSpec, kConfig, racy);
    hazards_shadowed = check.hazard_count();
    EXPECT_EQ(capture.engine().captures().size(), 0u);
  }
  EXPECT_EQ(hazards_shadowed, hazards_plain);
}

TEST(LaunchTap, CaptureKernelsReportsShadowedLaunches) {
  int shadowed = 0;
  const std::vector<KernelIR> irs = capture_kernels(
      [](std::uint64_t /*seed*/) {
        CheckScope check;  // the driver itself opens a checker
        launch_once();
      },
      0x5eed0001, 0x5eed0002, CaptureOptions{}, &shadowed);
  EXPECT_TRUE(irs.empty());
  EXPECT_EQ(shadowed, 2);  // one shadowed launch per capture seed
}

TEST(LaunchTap, ScopesRestorePreviousTap) {
  CaptureScope outer;
  {
    CaptureScope inner;
    launch_once();
    EXPECT_EQ(inner.engine().captures().size(), 1u);
    EXPECT_EQ(outer.engine().captures().size(), 0u);
  }
  launch_once();
  EXPECT_EQ(outer.engine().captures().size(), 1u);
}

}  // namespace
}  // namespace fdet::analyze
