#include <gtest/gtest.h>

#include <cmath>

#include "facegen/background.h"
#include "facegen/dataset.h"
#include "facegen/face.h"
#include "haar/feature.h"
#include "integral/integral.h"

namespace fdet::facegen {
namespace {

double region_mean(const img::ImageU8& im, int x0, int y0, int x1, int y1) {
  double acc = 0.0;
  int n = 0;
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      acc += im(x, y);
      ++n;
    }
  }
  return acc / std::max(1, n);
}

TEST(Face, RenderIsDeterministicForSameParams) {
  core::Rng rng(1);
  const FaceParams p = FaceParams::random(rng);
  const FaceInstance a = render_face(p, 24);
  const FaceInstance b = render_face(p, 24);
  EXPECT_EQ(a.image, b.image);
}

TEST(Face, EyesAreDarkerThanCheeks) {
  core::Rng rng(2);
  int ok = 0;
  constexpr int kTrials = 50;
  for (int i = 0; i < kTrials; ++i) {
    const FaceInstance face = render_face(FaceParams::random(rng), 48);
    const int ex = static_cast<int>(face.left_eye_x);
    const int ey = static_cast<int>(face.left_eye_y);
    const double eye = region_mean(face.image, ex - 2, ey - 2, ex + 3, ey + 3);
    // Cheek: below the eye by ~20 % of the face.
    const double cheek =
        region_mean(face.image, ex - 2, ey + 8, ex + 3, ey + 13);
    ok += (eye < cheek - 10.0);
  }
  EXPECT_GE(ok, kTrials * 8 / 10);  // robustly darker despite noise
}

TEST(Face, EyeAnnotationsAreSymmetricAndInsideImage) {
  core::Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const FaceInstance face = render_face(FaceParams::random(rng), 36);
    EXPECT_GT(face.right_eye_x, face.left_eye_x);
    EXPECT_NEAR(face.left_eye_y, face.right_eye_y, 1e-9);
    for (const double v : {face.left_eye_x, face.left_eye_y, face.right_eye_x,
                           face.right_eye_y}) {
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 36.0);
    }
  }
}

TEST(Face, ScalesToArbitraryResolutions) {
  core::Rng rng(4);
  const FaceParams p = FaceParams::random(rng);
  for (const int size : {8, 24, 64, 128}) {
    const FaceInstance face = render_face(p, size);
    EXPECT_EQ(face.image.width(), size);
    EXPECT_EQ(face.image.height(), size);
    // Eye positions scale linearly with the render size.
    EXPECT_NEAR(face.left_eye_x / size, (p.center_x - p.eye_dx), 1e-9);
  }
  EXPECT_THROW(render_face(p, 4), core::CheckError);
}

TEST(Face, HaarEyeBandFeatureSeparatesFacesFromBackgrounds) {
  // The core premise of the substitution: a Haar feature contrasting the
  // eye band against the cheeks responds differently on faces than on
  // background patches, for the same geometric reason as on real faces.
  core::Rng rng(5);
  const haar::HaarFeature eye_band{haar::HaarType::kEdge, true, 4, 7, 16, 5};
  ASSERT_TRUE(eye_band.valid());

  std::vector<double> face_responses;
  std::vector<double> bg_responses;
  for (int i = 0; i < 60; ++i) {
    const FaceInstance face = random_training_face(rng);
    face_responses.push_back(static_cast<double>(
        eye_band.response(integral::integral_cpu(face.image), 0, 0)));
    const img::ImageU8 bg = render_background(24, 24, rng);
    bg_responses.push_back(static_cast<double>(
        eye_band.response(integral::integral_cpu(bg), 0, 0)));
  }
  const auto mean = [](const std::vector<double>& v) {
    double acc = 0.0;
    for (const double x : v) {
      acc += x;
    }
    return acc / static_cast<double>(v.size());
  };
  const auto stddev = [&](const std::vector<double>& v) {
    const double m = mean(v);
    double acc = 0.0;
    for (const double x : v) {
      acc += (x - m) * (x - m);
    }
    return std::sqrt(acc / static_cast<double>(v.size()));
  };
  // Separation of at least one pooled standard deviation.
  const double gap = std::abs(mean(face_responses) - mean(bg_responses));
  const double pooled = (stddev(face_responses) + stddev(bg_responses)) / 2.0;
  EXPECT_GT(gap, pooled);
}

TEST(Background, AllStylesRenderInRange) {
  core::Rng rng(6);
  for (int s = 0; s < kBackgroundStyleCount; ++s) {
    const img::ImageU8 bg =
        render_background(static_cast<BackgroundStyle>(s), 40, 30, rng);
    EXPECT_EQ(bg.width(), 40);
    EXPECT_EQ(bg.height(), 30);
    // Not constant: some texture present.
    int min = 255;
    int max = 0;
    for (const auto p : bg.pixels()) {
      min = std::min<int>(min, p);
      max = std::max<int>(max, p);
    }
    EXPECT_GT(max - min, 5) << "style " << s;
  }
}

TEST(Background, RandomPatchStaysInBounds) {
  core::Rng rng(7);
  const img::ImageU8 source = render_background(50, 50, rng);
  for (int i = 0; i < 20; ++i) {
    const img::ImageU8 patch = random_patch(source, 24, rng);
    EXPECT_EQ(patch.width(), 24);
    EXPECT_EQ(patch.height(), 24);
  }
  EXPECT_THROW(random_patch(source, 51, rng), core::CheckError);
}

TEST(Dataset, TrainingSetHasRequestedShape) {
  const TrainingSet set = build_training_set(30, 10, 64, 42);
  EXPECT_EQ(set.faces.size(), 30u);
  EXPECT_EQ(set.backgrounds.size(), 10u);
  for (const auto& face : set.faces) {
    EXPECT_EQ(face.image.width(), 24);
    EXPECT_EQ(face.image.height(), 24);
  }
  for (const auto& bg : set.backgrounds) {
    EXPECT_EQ(bg.width(), 64);
  }
}

TEST(Dataset, TrainingSetIsDeterministic) {
  const TrainingSet a = build_training_set(5, 3, 48, 9);
  const TrainingSet b = build_training_set(5, 3, 48, 9);
  for (std::size_t i = 0; i < a.faces.size(); ++i) {
    EXPECT_EQ(a.faces[i].image, b.faces[i].image);
  }
  for (std::size_t i = 0; i < a.backgrounds.size(); ++i) {
    EXPECT_EQ(a.backgrounds[i], b.backgrounds[i]);
  }
}

TEST(Dataset, MugshotFaceBoxContainsEyes) {
  const MugshotBenchmark bench = build_mugshot_benchmark(12, 4, 96, 11);
  EXPECT_EQ(bench.mugshots.size(), 12u);
  EXPECT_EQ(bench.backgrounds.size(), 4u);
  for (const Mugshot& shot : bench.mugshots) {
    EXPECT_GE(shot.left_eye_x, shot.face.x);
    EXPECT_LE(shot.right_eye_x, shot.face.right());
    EXPECT_GE(shot.left_eye_y, shot.face.y);
    EXPECT_LE(shot.left_eye_y, shot.face.bottom());
    EXPECT_GE(shot.face.x, 0);
    EXPECT_LE(shot.face.right(), shot.image.width());
    EXPECT_GE(shot.face.w, 24);
  }
}

}  // namespace
}  // namespace fdet::facegen
