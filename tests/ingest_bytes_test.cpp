// Bounded byte-cursor primitives (ingest/bytes.h): every parser-facing
// read must fail typed — truncation, magic mismatch, trailing garbage —
// instead of reading past the end, and the writer/reader pair must
// round-trip little-endian fields regardless of host endianness.
#include "ingest/bytes.h"

#include <gtest/gtest.h>

#include <string>

#include "ingest/error.h"

namespace fdet::ingest {
namespace {

TEST(ByteWriter, LittleEndianFieldLayout) {
  ByteWriter writer;
  writer.u8(0xab);
  writer.u16(0x1234);
  writer.u32(0xdeadbeef);
  const std::string& out = writer.str();
  ASSERT_EQ(out.size(), 7u);
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 0xab);
  EXPECT_EQ(static_cast<unsigned char>(out[1]), 0x34);  // u16 low byte first
  EXPECT_EQ(static_cast<unsigned char>(out[2]), 0x12);
  EXPECT_EQ(static_cast<unsigned char>(out[3]), 0xef);  // u32 low byte first
  EXPECT_EQ(static_cast<unsigned char>(out[6]), 0xde);
}

TEST(ByteReader, RoundTripsWriterFields) {
  ByteWriter writer;
  writer.u8(7);
  writer.u16(60000);
  writer.u32(0x01020304);
  writer.bytes("tail");

  ByteReader reader(writer.str(), "raw");
  EXPECT_EQ(reader.u8("a"), 7);
  EXPECT_EQ(reader.u16("b"), 60000);
  EXPECT_EQ(reader.u32("c"), 0x01020304u);
  EXPECT_EQ(reader.bytes(4, "d"), "tail");
  EXPECT_TRUE(reader.at_end());
  EXPECT_NO_THROW(reader.expect_end("stream"));
}

TEST(ByteReader, TruncatedReadThrowsTypedErrorNamingOffset) {
  ByteReader reader("abc", "mjpeg");
  reader.bytes(2, "skip");
  try {
    reader.u32("frame length");
    FAIL() << "expected IngestError";
  } catch (const IngestError& error) {
    EXPECT_EQ(error.kind(), IngestErrorKind::kTruncated);
    EXPECT_EQ(error.format(), "mjpeg");
    EXPECT_EQ(error.offset(), 2u);
    EXPECT_NE(std::string(error.what()).find("frame length"),
              std::string::npos)
        << error.what();
  }
}

TEST(ByteReader, MagicMismatchNamesExpectedAndObservedBytes) {
  ByteReader reader("FRX1", "raw");
  try {
    reader.expect_magic("FRW", "container magic");
    FAIL() << "expected IngestError";
  } catch (const IngestError& error) {
    EXPECT_EQ(error.kind(), IngestErrorKind::kBadMagic);
    const std::string what = error.what();
    EXPECT_NE(what.find("FRW"), std::string::npos) << what;
    EXPECT_NE(what.find("FRX"), std::string::npos) << what;
  }
}

TEST(ByteReader, NonPrintableMagicBytesAreEscapedInDiagnostics) {
  const std::string bytes("\x00\x01G", 3);
  ByteReader reader(bytes, "gif");
  try {
    reader.expect_magic("FGF", "container magic");
    FAIL() << "expected IngestError";
  } catch (const IngestError& error) {
    EXPECT_NE(std::string(error.what()).find("\\x00"), std::string::npos)
        << error.what();
  }
}

TEST(ByteReader, TrailingBytesAfterLastFrameAreTyped) {
  ByteReader reader("payloadEXTRA", "raw");
  reader.bytes(7, "payload");
  try {
    reader.expect_end("stream");
    FAIL() << "expected IngestError";
  } catch (const IngestError& error) {
    EXPECT_EQ(error.kind(), IngestErrorKind::kTrailingGarbage);
    EXPECT_NE(std::string(error.what()).find("5 byte(s)"), std::string::npos)
        << error.what();
  }
}

TEST(ByteReader, SeekPastEndIsTruncationNotUb) {
  ByteReader reader("12345678", "raw");
  EXPECT_NO_THROW(reader.seek(8, "frame table"));  // one-past-end is valid
  EXPECT_TRUE(reader.at_end());
  try {
    reader.seek(9, "frame table");
    FAIL() << "expected IngestError";
  } catch (const IngestError& error) {
    EXPECT_EQ(error.kind(), IngestErrorKind::kTruncated);
  }
}

TEST(ByteReader, FailRaisesSemanticErrorAtCurrentOffset) {
  ByteReader reader("FRW1....", "raw");
  reader.bytes(4, "header");
  try {
    reader.fail(IngestErrorKind::kAbsurdMetadata, "0 frames declared");
    FAIL() << "expected IngestError";
  } catch (const IngestError& error) {
    EXPECT_EQ(error.kind(), IngestErrorKind::kAbsurdMetadata);
    EXPECT_EQ(error.offset(), 4u);
  }
}

TEST(IngestErrorKindName, TokensAreStable) {
  EXPECT_STREQ(ingest_error_kind_name(IngestErrorKind::kTruncated),
               "truncated");
  EXPECT_STREQ(ingest_error_kind_name(IngestErrorKind::kBadMagic),
               "bad-magic");
  EXPECT_STREQ(ingest_error_kind_name(IngestErrorKind::kChecksumMismatch),
               "checksum-mismatch");
  EXPECT_STREQ(ingest_error_kind_name(IngestErrorKind::kPaletteOverflow),
               "palette-overflow");
  EXPECT_STREQ(ingest_error_kind_name(IngestErrorKind::kInjected),
               "injected");
}

}  // namespace
}  // namespace fdet::ingest
