// Cross-module integration tests: trailer -> decoder -> pipeline -> eval,
// exercising the same paths the benchmark binaries use, at small scale.
#include <gtest/gtest.h>

#include <filesystem>

#include "detect/pipeline.h"
#include "eval/accuracy.h"
#include "facegen/dataset.h"
#include "train/boost.h"
#include "video/decoder.h"

namespace fdet {
namespace {

/// Small but real cascade shared by the integration tests.
const haar::Cascade& integration_cascade() {
  static const haar::Cascade cascade = [] {
    const auto set = facegen::build_training_set(250, 40, 64, 31337);
    train::TrainOptions options;
    options.stage_sizes = {6, 10, 14, 18, 22};
    options.feature_pool = 400;
    options.negatives_per_stage = 300;
    options.stage_hit_target = 0.99;
    options.seed = 13;
    return train::train_cascade(set, options, "integration").cascade;
  }();
  return cascade;
}

TEST(Integration, TrailerFramesFlowThroughTheFullPipeline) {
  video::TrailerSpec spec;
  spec.title = "integration";
  spec.width = 320;
  spec.height = 240;
  spec.frames = 4;
  spec.shot_frames = 4;
  spec.face_density = 2.0;
  spec.seed = 5;
  const video::SyntheticTrailer trailer(spec);
  const video::MockH264Decoder decoder(trailer);

  const vgpu::DeviceSpec device;
  const detect::Pipeline pipeline(device, integration_cascade(), {});

  int frames_with_gt = 0;
  int frames_recovered = 0;
  for (int f = 0; f < 4; ++f) {
    const video::DecodedFrame frame = decoder.decode(f);
    const detect::FrameResult result = pipeline.process(frame.frame.luma());
    EXPECT_GT(result.detect_ms, 0.0);
    EXPECT_FALSE(result.scales.empty());
    if (frame.ground_truth.empty()) {
      continue;
    }
    ++frames_with_gt;
    for (const auto& gt : frame.ground_truth) {
      bool hit = false;
      for (const auto& det : result.detections) {
        hit |= detect::s_square(det.box, gt.box) > 0.25;
      }
      if (hit) {
        ++frames_recovered;
        break;
      }
    }
  }
  if (frames_with_gt > 0) {
    EXPECT_GT(frames_recovered, 0)
        << "no ground-truth face recovered in any frame";
  }
}

TEST(Integration, MugshotBenchmarkProducesSaneRocInput) {
  const vgpu::DeviceSpec device;
  const detect::Pipeline pipeline(device, integration_cascade(), {});
  const auto bench = facegen::build_mugshot_benchmark(10, 5, 96, 777);
  const eval::BenchmarkRun run = eval::run_mugshot_benchmark(pipeline, bench);

  EXPECT_EQ(run.total_faces, 10);
  int matched = 0;
  for (const auto& s : run.scored) {
    matched += s.matched;
  }
  EXPECT_LE(matched, 10);  // at most one match per ground-truth face
  if (!run.scored.empty()) {
    const auto curve = eval::roc_curve(run.scored, run.total_faces);
    EXPECT_FALSE(curve.empty());
    EXPECT_LE(curve.back().true_positive_rate, 1.0);
  }
}

TEST(Integration, DeeperPrefixesNeverIncreaseAcceptedWindows) {
  // Acceptance at depth d+1 is a subset of acceptance at depth d, so the
  // raw accepted-window count is monotone in the prefix length. (Grouped
  // detection counts are NOT monotone — thinning acceptance can split one
  // blob into several clusters — which is why this asserts on raw
  // windows.)
  const vgpu::DeviceSpec device;
  const auto bench = facegen::build_mugshot_benchmark(4, 3, 96, 4242);

  std::size_t prev_raw = std::numeric_limits<std::size_t>::max();
  for (const int stages : {1, 3, 5}) {
    const detect::Pipeline pipeline(
        device, integration_cascade().prefix(stages), {});
    std::size_t raw = 0;
    for (const auto& shot : bench.mugshots) {
      raw += pipeline.process(shot.image).raw_detections.size();
    }
    for (const auto& bg : bench.backgrounds) {
      raw += pipeline.process(bg).raw_detections.size();
    }
    EXPECT_LE(raw, prev_raw) << "at " << stages << " stages";
    prev_raw = raw;
  }
}

TEST(Integration, CascadeSurvivesSaveLoadWithIdenticalDetections) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() / "fdet_integration.cascade").string();
  haar::save_cascade(path, integration_cascade());
  const haar::Cascade loaded = haar::load_cascade(path);

  const vgpu::DeviceSpec device;
  const detect::Pipeline original(device, integration_cascade(), {});
  const detect::Pipeline reloaded(device, loaded, {});

  const auto bench = facegen::build_mugshot_benchmark(3, 0, 96, 9);
  for (const auto& shot : bench.mugshots) {
    const auto a = original.process(shot.image);
    const auto b = reloaded.process(shot.image);
    ASSERT_EQ(a.raw_detections.size(), b.raw_detections.size());
    for (std::size_t i = 0; i < a.raw_detections.size(); ++i) {
      EXPECT_EQ(a.raw_detections[i].box, b.raw_detections[i].box);
    }
  }
  fs::remove(path);
}

TEST(Integration, SerialAndConcurrentProduceIdenticalDetections) {
  const vgpu::DeviceSpec device;
  const detect::Pipeline pipeline(device, integration_cascade(), {});
  const auto bench = facegen::build_mugshot_benchmark(2, 0, 96, 21);
  for (const auto& shot : bench.mugshots) {
    const auto [conc, serial] = pipeline.process_dual(shot.image);
    ASSERT_EQ(conc.raw_detections.size(), serial.raw_detections.size());
    EXPECT_GE(serial.detect_ms, conc.detect_ms);
    for (std::size_t i = 0; i < conc.raw_detections.size(); ++i) {
      EXPECT_EQ(conc.raw_detections[i].box, serial.raw_detections[i].box);
    }
  }
}

}  // namespace
}  // namespace fdet
