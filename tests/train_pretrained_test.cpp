// PretrainedOptions digest semantics and cache behaviour (without running
// the minutes-long training).
#include <gtest/gtest.h>

#include <filesystem>

#include "haar/profile.h"
#include "train/pretrained.h"

namespace fdet::train {
namespace {

TEST(PretrainedDigest, StableForIdenticalOptions) {
  PretrainedOptions a;
  PretrainedOptions b;
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(PretrainedDigest, ChangesWithEveryField) {
  const PretrainedOptions base;
  PretrainedOptions variant = base;
  variant.faces += 1;
  EXPECT_NE(base.digest(), variant.digest());

  variant = base;
  variant.backgrounds += 1;
  EXPECT_NE(base.digest(), variant.digest());

  variant = base;
  variant.feature_pool += 1;
  EXPECT_NE(base.digest(), variant.digest());

  variant = base;
  variant.negatives_per_stage += 1;
  EXPECT_NE(base.digest(), variant.digest());

  variant = base;
  variant.stage_hit_target += 0.001;
  EXPECT_NE(base.digest(), variant.digest());

  variant = base;
  variant.seed += 1;
  EXPECT_NE(base.digest(), variant.digest());
}

TEST(PretrainedCache, LoadsSavedPairWithoutRetraining) {
  // Seed the cache with hand-built cascades under the expected names, then
  // verify get_or_train_cascades() loads them instead of training.
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "fdet_pretrained_test").string();
  fs::remove_all(dir);
  fs::create_directories(dir);

  PretrainedOptions options;
  options.seed = 987654321;  // never matches a real training run
  const std::string tag = options.digest();
  const haar::Cascade ours =
      haar::build_profile_cascade("fake-ours", std::vector<int>{2, 3}, 1);
  const haar::Cascade baseline =
      haar::build_profile_cascade("fake-ocv", std::vector<int>{4}, 2);
  haar::save_cascade(dir + "/ours-" + tag + ".cascade", ours);
  haar::save_cascade(dir + "/opencv-like-" + tag + ".cascade", baseline);

  const CascadePair pair = get_or_train_cascades(dir, options);
  EXPECT_EQ(pair.ours.name(), "fake-ours");
  EXPECT_EQ(pair.ours.classifier_count(), 5);
  EXPECT_EQ(pair.opencv_like.name(), "fake-ocv");
  EXPECT_EQ(pair.opencv_like.classifier_count(), 4);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace fdet::train
