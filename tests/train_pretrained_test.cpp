// PretrainedOptions digest semantics and cache behaviour (without running
// the minutes-long training).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "core/artifact.h"
#include "haar/profile.h"
#include "train/pretrained.h"

namespace fdet::train {
namespace {

TEST(PretrainedDigest, StableForIdenticalOptions) {
  PretrainedOptions a;
  PretrainedOptions b;
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(PretrainedDigest, ChangesWithEveryField) {
  const PretrainedOptions base;
  PretrainedOptions variant = base;
  variant.faces += 1;
  EXPECT_NE(base.digest(), variant.digest());

  variant = base;
  variant.backgrounds += 1;
  EXPECT_NE(base.digest(), variant.digest());

  variant = base;
  variant.feature_pool += 1;
  EXPECT_NE(base.digest(), variant.digest());

  variant = base;
  variant.negatives_per_stage += 1;
  EXPECT_NE(base.digest(), variant.digest());

  variant = base;
  variant.stage_hit_target += 0.001;
  EXPECT_NE(base.digest(), variant.digest());

  variant = base;
  variant.seed += 1;
  EXPECT_NE(base.digest(), variant.digest());
}

TEST(PretrainedCache, LoadsSavedPairWithoutRetraining) {
  // Seed the cache with hand-built cascades under the expected names, then
  // verify get_or_train_cascades() loads them instead of training.
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "fdet_pretrained_test").string();
  fs::remove_all(dir);
  fs::create_directories(dir);

  PretrainedOptions options;
  options.seed = 987654321;  // never matches a real training run
  const std::string tag = options.digest();
  const haar::Cascade ours =
      haar::build_profile_cascade("fake-ours", std::vector<int>{2, 3}, 1);
  const haar::Cascade baseline =
      haar::build_profile_cascade("fake-ocv", std::vector<int>{4}, 2);
  haar::save_cascade(dir + "/ours-" + tag + ".cascade", ours);
  haar::save_cascade(dir + "/opencv-like-" + tag + ".cascade", baseline);

  const CascadePair pair = get_or_train_cascades(dir, options);
  EXPECT_EQ(pair.ours.name(), "fake-ours");
  EXPECT_EQ(pair.ours.classifier_count(), 5);
  EXPECT_EQ(pair.opencv_like.name(), "fake-ocv");
  EXPECT_EQ(pair.opencv_like.classifier_count(), 4);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Cache validation (load_cached_pair): corrupt and stale entries must force
// a retrain — quarantined or skipped — never load as garbage. Exercised
// through load_cached_pair directly so no test ever pays for real training.

namespace fs = std::filesystem;

struct SeededCache {
  std::string dir;
  std::string tag;
  std::string ours_path;
  std::string baseline_path;
  std::string manifest_path;
  PretrainedOptions options;
};

std::string crc_hex(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::ostringstream out;
  out << std::hex << std::setw(8) << std::setfill('0')
      << core::crc32(buffer.str());
  return std::move(out).str();
}

/// Seeds a cache directory with a valid fake pair; optionally writes the
/// manifest the trainer would produce (recording `digest_override` when
/// non-empty, to fabricate staleness).
SeededCache seed_cache(const std::string& name, bool with_manifest,
                       const std::string& digest_override = "",
                       const std::string& ours_crc_override = "") {
  SeededCache cache;
  cache.dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(cache.dir);
  fs::create_directories(cache.dir);
  cache.options.seed = 987654321;  // never matches a real training run
  cache.tag = cache.options.digest();
  cache.ours_path = cache.dir + "/ours-" + cache.tag + ".cascade";
  cache.baseline_path = cache.dir + "/opencv-like-" + cache.tag + ".cascade";
  cache.manifest_path = cache.dir + "/pair-" + cache.tag + ".manifest";

  haar::save_cascade(cache.ours_path, haar::build_profile_cascade(
                                          "fake-ours", std::vector<int>{2}, 1));
  haar::save_cascade(
      cache.baseline_path,
      haar::build_profile_cascade("fake-ocv", std::vector<int>{3}, 2));

  if (with_manifest) {
    std::ostringstream payload;
    payload << "digest "
            << (digest_override.empty() ? cache.tag : digest_override) << "\n"
            << "ours-crc32 "
            << (ours_crc_override.empty() ? crc_hex(cache.ours_path)
                                          : ours_crc_override)
            << "\n"
            << "opencv-like-crc32 " << crc_hex(cache.baseline_path) << "\n";
    core::write_artifact(cache.manifest_path, "pretrained-manifest", 1,
                         payload.str());
  }
  return cache;
}

TEST(PretrainedCacheValidation, ValidManifestLoads) {
  const SeededCache cache = seed_cache("fdet_cache_valid", true);
  const auto pair = load_cached_pair(cache.dir, cache.options);
  ASSERT_TRUE(pair.has_value());
  EXPECT_EQ(pair->ours.name(), "fake-ours");
  EXPECT_EQ(pair->opencv_like.name(), "fake-ocv");
  fs::remove_all(cache.dir);
}

TEST(PretrainedCacheValidation, MissingFilesYieldNullopt) {
  const std::string dir =
      (fs::temp_directory_path() / "fdet_cache_missing").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  EXPECT_FALSE(load_cached_pair(dir, PretrainedOptions{}).has_value());
  fs::remove_all(dir);
}

TEST(PretrainedCacheValidation, CorruptCascadeQuarantinedAndRejected) {
  const SeededCache cache = seed_cache("fdet_cache_corrupt", false);
  // Truncate the ours cascade mid-record: the validating parser must
  // reject it and the loader must quarantine it.
  {
    std::ifstream in(cache.ours_path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string bytes = std::move(buffer).str();
    std::ofstream out(cache.ours_path, std::ios::binary | std::ios::trunc);
    out << bytes.substr(0, bytes.size() / 2);
  }

  EXPECT_FALSE(load_cached_pair(cache.dir, cache.options).has_value());
  EXPECT_FALSE(fs::exists(cache.ours_path));
  EXPECT_TRUE(fs::exists(cache.ours_path + ".corrupt"));
  // The intact baseline is left alone.
  EXPECT_TRUE(fs::exists(cache.baseline_path));
  fs::remove_all(cache.dir);
}

TEST(PretrainedCacheValidation, StaleManifestDigestForcesRetrain) {
  const SeededCache cache =
      seed_cache("fdet_cache_stale", true, /*digest_override=*/"0ldd1gest");
  EXPECT_FALSE(load_cached_pair(cache.dir, cache.options).has_value());
  // Stale is not corrupt: the files survive untouched for inspection.
  EXPECT_TRUE(fs::exists(cache.ours_path));
  EXPECT_TRUE(fs::exists(cache.baseline_path));
  EXPECT_TRUE(fs::exists(cache.manifest_path));
  fs::remove_all(cache.dir);
}

TEST(PretrainedCacheValidation, ManifestCrcMismatchQuarantinesTheFile) {
  const SeededCache cache = seed_cache("fdet_cache_crc", true,
                                       /*digest_override=*/"",
                                       /*ours_crc_override=*/"00000000");
  EXPECT_FALSE(load_cached_pair(cache.dir, cache.options).has_value());
  EXPECT_FALSE(fs::exists(cache.ours_path));
  EXPECT_TRUE(fs::exists(cache.ours_path + ".corrupt"));
  fs::remove_all(cache.dir);
}

TEST(PretrainedCacheValidation, CorruptManifestQuarantinedAndRejected) {
  const SeededCache cache = seed_cache("fdet_cache_badmanifest", false);
  {
    std::ofstream out(cache.manifest_path, std::ios::binary);
    out << "not an artifact container\n";
  }
  EXPECT_FALSE(load_cached_pair(cache.dir, cache.options).has_value());
  EXPECT_FALSE(fs::exists(cache.manifest_path));
  EXPECT_TRUE(fs::exists(cache.manifest_path + ".corrupt"));
  fs::remove_all(cache.dir);
}

}  // namespace
}  // namespace fdet::train
