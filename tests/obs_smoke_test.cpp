// End-to-end observability smoke: run a real (small) detection frame with
// the trace session installed, write the trace and metrics artifacts, and
// re-read both through the obs::json parser — the same validation the
// bench_trace_smoke ctest target performs on bench_fig6_kernel_trace.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/rng.h"
#include "detect/pipeline.h"
#include "haar/profile.h"
#include "integral/integral.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fdet {
namespace {

haar::Cascade smoke_cascade() {
  core::Rng rng(11);
  img::ImageU8 scene(160, 120);
  for (auto& p : scene.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  const auto ii = integral::integral_cpu(scene);
  haar::Cascade cascade = haar::build_profile_cascade(
      "smoke", std::vector<int>{6, 8, 10}, /*seed=*/11);
  haar::calibrate_stage_thresholds(cascade, {&ii},
                                   std::vector<double>{0.3, 0.4, 0.5}, 2);
  return cascade;
}

TEST(ObsSmoke, TracedPipelineFrameWritesValidArtifacts) {
  obs::TraceSession session;
  session.install();

  const vgpu::DeviceSpec spec;
  const detect::Pipeline pipeline(spec, smoke_cascade(), {});
  img::ImageU8 frame(96, 72);
  core::Rng rng(3);
  for (auto& p : frame.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  const auto [concurrent, serial] = pipeline.process_dual(frame);

  // The pipeline's internal ScopedSpans must have landed on the host track.
  int host_spans = 0;
  for (const obs::TraceEvent& event : session.events()) {
    host_spans += (event.pid == 0 && event.phase == 'X');
  }
  EXPECT_GT(host_spans, 0) << "pipeline stages did not hit the ambient session";

  session.add_timeline("concurrent", concurrent.timeline);
  session.add_timeline("serial", serial.timeline);

  obs::Registry metrics;
  concurrent.publish_metrics(metrics, {{"mode", "concurrent"}});
  serial.publish_metrics(metrics, {{"mode", "serial"}});

  const std::string dir = ::testing::TempDir();
  const std::string trace_path = dir + "/obs_smoke.trace.json";
  const std::string metrics_path = dir + "/obs_smoke.metrics.json";
  session.write_file(trace_path);
  metrics.write_file(metrics_path);

  // Trace: parses, and holds both device processes plus host spans.
  const obs::json::Value trace = obs::json::parse_file(trace_path);
  bool saw_host = false, saw_concurrent = false, saw_serial = false;
  for (const obs::json::Value& event : trace.at("traceEvents").as_array()) {
    if (event.at("ph").as_string() == "M" &&
        event.at("name").as_string() == "process_name") {
      const std::string& name = event.at("args").at("name").as_string();
      saw_host |= name == "host";
      saw_concurrent |= name == "vgpu:concurrent";
      saw_serial |= name == "vgpu:serial";
    }
  }
  EXPECT_TRUE(saw_host);
  EXPECT_TRUE(saw_concurrent);
  EXPECT_TRUE(saw_serial);

  // Metrics: parses, and carries the paper's profiler quantities for both
  // execution modes (the issue's acceptance list).
  const obs::json::Value doc = obs::json::parse_file(metrics_path);
  const char* required[] = {"vgpu.branch_efficiency", "vgpu.simd_efficiency",
                            "vgpu.dram_read_gbps", "vgpu.makespan_ms",
                            "vgpu.sm_utilization"};
  for (const char* name : required) {
    for (const char* mode : {"concurrent", "serial"}) {
      bool found = false;
      for (const obs::json::Value& m : doc.at("metrics").as_array()) {
        if (m.at("name").as_string() == name &&
            m.at("labels").at("mode").as_string() == mode) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << name << " missing for mode=" << mode;
    }
  }

  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
  session.uninstall();
}

}  // namespace
}  // namespace fdet
