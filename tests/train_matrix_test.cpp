#include "train/dataset_matrix.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "facegen/face.h"
#include "integral/integral.h"

namespace fdet::train {
namespace {

img::ImageU8 random_window(std::uint64_t seed) {
  core::Rng rng(seed);
  img::ImageU8 im(haar::kWindowSize, haar::kWindowSize);
  for (auto& p : im.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return im;
}

TEST(DatasetMatrix, StoresPaddedIntegralColumns) {
  img::ImageU8 window(haar::kWindowSize, haar::kWindowSize);
  window.fill(1);
  DatasetMatrix m;
  m.add_window(window);
  ASSERT_EQ(m.cols(), 1);
  // Padded row/column are zero.
  EXPECT_EQ(m.row(DatasetMatrix::row_index(0, 0))[0], 0);
  EXPECT_EQ(m.row(DatasetMatrix::row_index(5, 0))[0], 0);
  EXPECT_EQ(m.row(DatasetMatrix::row_index(0, 5))[0], 0);
  // Entry (gx, gy) = gx * gy for a constant-1 image.
  EXPECT_EQ(m.row(DatasetMatrix::row_index(3, 4))[0], 12);
  EXPECT_EQ(m.row(DatasetMatrix::row_index(24, 24))[0], 576);
}

TEST(DatasetMatrix, RejectsWrongWindowSize) {
  DatasetMatrix m;
  img::ImageU8 wrong(16, 16);
  EXPECT_THROW(m.add_window(wrong), core::CheckError);
}

TEST(DatasetMatrix, FeatureTermsReproduceResponses) {
  // Property: the row-arithmetic path (training) must agree with the
  // integral-image path (detection) on every family and random windows.
  DatasetMatrix m;
  std::vector<integral::IntegralImage> iis;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const img::ImageU8 window = random_window(seed);
    m.add_window(window);
    iis.push_back(integral::integral_cpu(window));
  }

  core::Rng rng(55);
  std::vector<std::int32_t> out(static_cast<std::size_t>(m.cols()));
  for (int trial = 0; trial < 200; ++trial) {
    haar::HaarFeature f;
    f.type = static_cast<haar::HaarType>(rng.uniform_int(0, 3));
    f.vertical = rng.bernoulli(0.5);
    f.cw = static_cast<std::uint8_t>(rng.uniform_int(1, 8));
    f.ch = static_cast<std::uint8_t>(rng.uniform_int(1, 8));
    if (f.extent_w() > haar::kWindowSize || f.extent_h() > haar::kWindowSize) {
      continue;
    }
    f.x = static_cast<std::uint8_t>(
        rng.uniform_int(0, haar::kWindowSize - f.extent_w()));
    f.y = static_cast<std::uint8_t>(
        rng.uniform_int(0, haar::kWindowSize - f.extent_h()));

    m.evaluate_feature(f, out);
    for (int j = 0; j < m.cols(); ++j) {
      ASSERT_EQ(out[static_cast<std::size_t>(j)],
                f.response(iis[static_cast<std::size_t>(j)], 0, 0))
          << haar::to_string(f.type) << " window " << j;
    }
  }
}

TEST(DatasetMatrix, TermsMergeSharedCorners) {
  // Adjacent rects share corners: an edge feature (2 rects, 8 raw corners)
  // must compress below 8 terms.
  const haar::HaarFeature f{haar::HaarType::kEdge, false, 2, 3, 4, 5};
  const auto terms = DatasetMatrix::feature_terms(f);
  EXPECT_LT(terms.size(), 8u);
  EXPECT_GE(terms.size(), 4u);
  for (const auto& t : terms) {
    EXPECT_NE(t.coeff, 0);
    EXPECT_GE(t.row, 0);
    EXPECT_LT(t.row, DatasetMatrix::kRows);
  }
}

TEST(DatasetMatrix, GrowthPreservesEarlierColumns) {
  DatasetMatrix m(2);  // force several grows
  std::vector<img::ImageU8> windows;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    windows.push_back(random_window(seed + 1000));
    m.add_window(windows.back());
  }
  ASSERT_EQ(m.cols(), 40);
  const haar::HaarFeature f{haar::HaarType::kDiagonal, false, 1, 1, 6, 6};
  std::vector<std::int32_t> out(40);
  m.evaluate_feature(f, out);
  for (int j = 0; j < 40; ++j) {
    const auto ii = integral::integral_cpu(windows[static_cast<std::size_t>(j)]);
    EXPECT_EQ(out[static_cast<std::size_t>(j)], f.response(ii, 0, 0));
  }
}

TEST(DatasetMatrix, EvaluateRejectsWrongOutputSize) {
  DatasetMatrix m;
  m.add_window(random_window(1));
  std::vector<std::int32_t> wrong(5);
  EXPECT_THROW(
      m.evaluate_feature({haar::HaarType::kEdge, false, 0, 0, 2, 2}, wrong),
      core::CheckError);
}

TEST(DatasetMatrix, SimdAndScalarTailsAgree) {
  // Column counts straddling the 4-wide SSE boundary.
  for (const int n : {1, 3, 4, 5, 7, 8, 9, 31}) {
    DatasetMatrix m;
    std::vector<integral::IntegralImage> iis;
    for (int j = 0; j < n; ++j) {
      const img::ImageU8 w = random_window(static_cast<std::uint64_t>(j) + 7);
      m.add_window(w);
      iis.push_back(integral::integral_cpu(w));
    }
    const haar::HaarFeature f{haar::HaarType::kLine, true, 3, 1, 5, 7};
    std::vector<std::int32_t> out(static_cast<std::size_t>(n));
    m.evaluate_feature(f, out);
    for (int j = 0; j < n; ++j) {
      ASSERT_EQ(out[static_cast<std::size_t>(j)],
                f.response(iis[static_cast<std::size_t>(j)], 0, 0))
          << "n=" << n << " j=" << j;
    }
  }
}

}  // namespace
}  // namespace fdet::train
