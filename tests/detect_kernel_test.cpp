#include "detect/kernels.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "haar/profile.h"
#include "img/pyramid.h"

namespace fdet::detect {
namespace {

img::ImageU8 random_image(int w, int h, std::uint64_t seed) {
  core::Rng rng(seed);
  img::ImageU8 im(w, h);
  for (auto& p : im.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return im;
}

haar::Cascade calibrated_cascade(const integral::IntegralImage& ii,
                                 std::uint64_t seed) {
  haar::Cascade cascade = haar::build_profile_cascade(
      "kernel-test", std::vector<int>{10, 10, 10}, seed);
  haar::calibrate_stage_thresholds(cascade, {&ii},
                                   std::vector<double>{0.4, 0.5, 0.5}, 2);
  return cascade;
}

TEST(ScaleKernel, MatchesHostBilinearResize) {
  const vgpu::DeviceSpec spec;
  const img::ImageU8 src = random_image(80, 60, 1);
  img::ImageU8 dst(40, 30);
  scale_kernel(spec, src, dst, "scale");
  const img::ImageF32 reference =
      img::resize_bilinear(src.cast<float>(), 40, 30);
  for (int y = 0; y < 30; ++y) {
    for (int x = 0; x < 40; ++x) {
      ASSERT_NEAR(static_cast<float>(dst(x, y)), reference(x, y), 1.0f);
    }
  }
}

TEST(FilterKernel, MatchesBinomialWeights) {
  const vgpu::DeviceSpec spec;
  img::ImageU8 src(8, 8);
  src.fill(0);
  src(4, 4) = 200;
  img::ImageU8 dst(8, 8);
  filter_kernel(spec, src, dst, /*horizontal=*/true, "fh");
  EXPECT_EQ(dst(4, 4), 100);  // 2/4 of 200
  EXPECT_EQ(dst(3, 4), 50);   // 1/4
  EXPECT_EQ(dst(5, 4), 50);
  EXPECT_EQ(dst(4, 3), 0);    // horizontal only

  filter_kernel(spec, src, dst, /*horizontal=*/false, "fv");
  EXPECT_EQ(dst(4, 3), 50);
  EXPECT_EQ(dst(4, 4), 100);
}

TEST(CascadeKernel, MatchesHostReferenceEverywhere) {
  const vgpu::DeviceSpec spec;
  const img::ImageU8 image = random_image(72, 56, 3);
  const auto ii = integral::integral_cpu(image);
  const haar::Cascade cascade = calibrated_cascade(ii, 17);
  const haar::ConstantBank bank = haar::ConstantBank::build(cascade);

  CascadeKernelOutput out;
  cascade_kernel(spec, bank, ii, out, CascadeKernelOptions{}, "cascade");

  for (int y = 0; y + haar::kWindowSize <= 56; ++y) {
    for (int x = 0; x + haar::kWindowSize <= 72; ++x) {
      const haar::CascadeResult ref = evaluate_bank(bank, ii, x, y);
      ASSERT_EQ(out.depth(x, y), ref.depth) << "(" << x << "," << y << ")";
      ASSERT_NEAR(out.score(x, y), ref.score, 1e-4f);
    }
  }
}

TEST(CascadeKernel, BorderAnchorsAreNotEvaluated) {
  const vgpu::DeviceSpec spec;
  const img::ImageU8 image = random_image(64, 64, 4);
  const auto ii = integral::integral_cpu(image);
  // Pass-through cascade: every *valid* window reaches depth 1.
  haar::Cascade cascade =
      haar::build_profile_cascade("pass", std::vector<int>{2}, 5);
  const haar::ConstantBank bank = haar::ConstantBank::build(cascade);
  CascadeKernelOutput out;
  cascade_kernel(spec, bank, ii, out, CascadeKernelOptions{}, "cascade");
  EXPECT_EQ(out.depth(64 - haar::kWindowSize, 0), 1);
  EXPECT_EQ(out.depth(64 - haar::kWindowSize + 1, 0), 0);  // window overflows
  EXPECT_EQ(out.depth(0, 64 - haar::kWindowSize + 1), 0);
}

TEST(CascadeKernel, Supports24PixelBlocks) {
  const vgpu::DeviceSpec spec;
  const img::ImageU8 image = random_image(60, 50, 6);
  const auto ii = integral::integral_cpu(image);
  const haar::Cascade cascade = calibrated_cascade(ii, 23);
  const haar::ConstantBank bank = haar::ConstantBank::build(cascade);

  CascadeKernelOutput out32;
  CascadeKernelOutput out24;
  cascade_kernel(spec, bank, ii, out32, CascadeKernelOptions{.block_dim = 32},
                 "c32");
  cascade_kernel(spec, bank, ii, out24, CascadeKernelOptions{.block_dim = 24},
                 "c24");
  EXPECT_EQ(out32.depth, out24.depth);  // block size must not change results
}

TEST(CascadeKernel, RejectsBlocksSmallerThanWindow) {
  const vgpu::DeviceSpec spec;
  const img::ImageU8 image = random_image(48, 48, 7);
  const auto ii = integral::integral_cpu(image);
  const haar::ConstantBank bank = haar::ConstantBank::build(
      haar::build_profile_cascade("x", std::vector<int>{1}, 1));
  CascadeKernelOutput out;
  EXPECT_THROW(cascade_kernel(spec, bank, ii, out,
                              CascadeKernelOptions{.block_dim = 16}, "bad"),
               core::CheckError);
}

TEST(CascadeKernel, GlobalMemoryFeaturesCostMore) {
  const vgpu::DeviceSpec spec;
  const img::ImageU8 image = random_image(96, 64, 8);
  const auto ii = integral::integral_cpu(image);
  const haar::Cascade cascade = calibrated_cascade(ii, 31);
  const haar::ConstantBank bank = haar::ConstantBank::build(cascade);

  CascadeKernelOutput out;
  const auto constant = cascade_kernel(
      spec, bank, ii, out, CascadeKernelOptions{.constant_memory = true}, "c");
  const auto global = cascade_kernel(
      spec, bank, ii, out, CascadeKernelOptions{.constant_memory = false},
      "g");
  EXPECT_GT(global.total_service_cycles, constant.total_service_cycles);
  EXPECT_EQ(out.depth.width(), 96);  // functional output unchanged
}

TEST(CascadeKernel, UncompressedRecordsCostMore) {
  const vgpu::DeviceSpec spec;
  const img::ImageU8 image = random_image(96, 64, 9);
  const auto ii = integral::integral_cpu(image);
  const haar::Cascade cascade = calibrated_cascade(ii, 37);
  const haar::ConstantBank bank = haar::ConstantBank::build(cascade);

  CascadeKernelOutput out_a;
  CascadeKernelOutput out_b;
  const auto compressed = cascade_kernel(
      spec, bank, ii, out_a, CascadeKernelOptions{.compressed_records = true},
      "comp");
  const auto raw = cascade_kernel(
      spec, bank, ii, out_b, CascadeKernelOptions{.compressed_records = false},
      "raw");
  EXPECT_GT(raw.counters.constant_accesses, compressed.counters.constant_accesses);
  EXPECT_GT(raw.total_service_cycles, compressed.total_service_cycles);
  EXPECT_EQ(out_a.depth, out_b.depth);
}

TEST(CascadeKernel, BranchEfficiencyIsHighOnSmoothImages) {
  // Adjacent windows mostly exit at the same stage on real-ish content,
  // which is why the paper measures 98.9 % non-divergent branches.
  const vgpu::DeviceSpec spec;
  core::Rng rng(10);
  img::ImageU8 smooth(128, 96);
  for (int y = 0; y < 96; ++y) {
    for (int x = 0; x < 128; ++x) {
      smooth(x, y) = static_cast<std::uint8_t>(
          100 + 40 * std::sin(x * 0.05) + rng.uniform(-5.0, 5.0));
    }
  }
  const auto ii = integral::integral_cpu(smooth);
  // Calibrate to the paper's rejection profile: 94.5 % of windows die in
  // stage 1 (and, on smooth content, whole warps die together).
  haar::Cascade cascade = haar::build_profile_cascade(
      "smooth", std::vector<int>{10, 10, 10}, 41);
  haar::calibrate_stage_thresholds(
      cascade, {&ii}, std::vector<double>{0.055, 0.27, 0.69}, 1);
  const haar::ConstantBank bank = haar::ConstantBank::build(cascade);
  CascadeKernelOutput out;
  const auto cost =
      cascade_kernel(spec, bank, ii, out, CascadeKernelOptions{}, "smooth");
  EXPECT_GT(cost.counters.branch_efficiency(), 0.85);
}

TEST(DisplayKernel, OutlinesAcceptedWindows) {
  const vgpu::DeviceSpec spec;
  img::ImageI32 depth(64, 64, 0);
  depth(10, 12) = 3;  // one accepted window at full depth 3
  img::ImageU8 overlay(64, 64);
  overlay.fill(7);
  display_kernel(spec, depth, 3, 1.0, overlay, "display");
  EXPECT_EQ(overlay(10, 12), 255);                          // top-left corner
  EXPECT_EQ(overlay(10 + haar::kWindowSize - 1, 12), 255);  // top-right
  EXPECT_EQ(overlay(20, 20), 7);                            // interior intact
}

}  // namespace
}  // namespace fdet::detect
