// IR capture edge cases (analyze/capture.h): affine recovery, non-affine
// flagging (never miscompiling), multi-phase barrier structure, forced
// branch tracking, data-dependence classification and partial
// participation.
#include "analyze/capture.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "analyze/ir.h"
#include "core/rng.h"
#include "img/image.h"
#include "integral/gpu.h"
#include "vgpu/kernel.h"

namespace fdet::analyze {
namespace {

using vgpu::Dim3;
using vgpu::KernelConfig;
using vgpu::LaneCtx;
using vgpu::SharedMem;
using vgpu::ThreadCoord;

const vgpu::DeviceSpec kSpec;

/// Captures a single launch of `phase` under both default seeds.
template <typename Phase>
KernelIR capture_one(const KernelConfig& config, Phase&& phase) {
  const std::vector<KernelIR> irs =
      capture_kernels([&config, &phase](std::uint64_t /*seed*/) {
        vgpu::execute_kernel(kSpec, config, phase);
      });
  EXPECT_EQ(irs.size(), 1u);
  return irs.front();
}

TEST(AnalyzeCapture, RecoversExactAffineFormAcrossBlockAndThreadAxes) {
  // addr = 4*tx + 512*ty + 64*bx + 8192*by + 12: every coefficient sits on
  // a different axis, so the fit must pin all of them from the sampled
  // corner blocks/warps and verification must hold on every observation.
  const KernelConfig config{.name = "affine",
                            .grid = {5, 4, 1},
                            .block = {16, 8, 1}};
  const KernelIR ir = capture_one(
      config, [](const ThreadCoord& t, LaneCtx& ctx, SharedMem&) {
        const std::uint64_t addr = 4ull * static_cast<unsigned>(t.thread.x) +
                                   512ull * static_cast<unsigned>(t.thread.y) +
                                   64ull * static_cast<unsigned>(t.block_id.x) +
                                   8192ull * static_cast<unsigned>(t.block_id.y) +
                                   12;
        ctx.global_load(addr, 4);
      });

  ASSERT_EQ(ir.phases.size(), 1u);
  ASSERT_EQ(ir.phases[0].global_slots.size(), 1u);
  const AccessPattern& p = ir.phases[0].global_slots[0];
  EXPECT_TRUE(p.affine);
  EXPECT_FALSE(p.data_dependent);
  EXPECT_EQ(p.participation, Participation::kFull);
  EXPECT_EQ(p.form.c0, 12);
  EXPECT_EQ(p.form.tx, 4);
  EXPECT_EQ(p.form.ty, 512);
  EXPECT_EQ(p.form.tz, 0);
  EXPECT_EQ(p.form.bx, 64);
  EXPECT_EQ(p.form.by, 8192);
  EXPECT_EQ(p.form.bz, 0);
  EXPECT_EQ(p.bytes, 4u);
  EXPECT_TRUE(p.load);
  EXPECT_FALSE(p.store);
}

TEST(AnalyzeCapture, NonAffineIndexIsFlaggedNotMiscompiled) {
  // |tx - 8|*4 is geometry-determined but not affine. The contract is that
  // the fit FAILS (affine=false) rather than producing a wrong form that
  // downstream analyses would extrapolate; the observed range must still
  // be exact so bound analyses stay sound.
  const KernelConfig config{.name = "vee",
                            .grid = {1, 1, 1},
                            .block = {32, 1, 1}};
  const KernelIR ir = capture_one(
      config, [](const ThreadCoord& t, LaneCtx& ctx, SharedMem&) {
        ctx.global_load(
            4ull * static_cast<unsigned>(std::abs(t.thread.x - 8)), 4);
      });

  ASSERT_EQ(ir.phases[0].global_slots.size(), 1u);
  const AccessPattern& p = ir.phases[0].global_slots[0];
  EXPECT_FALSE(p.affine);
  EXPECT_FALSE(p.data_dependent);  // same values under both seeds
  EXPECT_EQ(p.participation, Participation::kFull);
  EXPECT_EQ(p.min_seen, 0u);                 // tx == 8
  EXPECT_EQ(p.max_seen, 4u * (31 - 8));      // tx == 31
}

TEST(AnalyzeCapture, MultiPhaseKernelKeepsBarrierStructure) {
  // The production scan kernel: 12 phases = load, chunk scan, 8 tree
  // steps, propagate, store — 11 implicit barriers. The IR must preserve
  // that structure phase by phase, with the global traffic confined to the
  // first and last phases (everything between works in shared memory).
  img::ImageI32 input(64, 2, 1);
  img::ImageI32 output(64, 2, 0);
  const std::vector<KernelIR> irs =
      capture_kernels([&input, &output](std::uint64_t seed) {
        core::Rng rng(seed);
        for (auto& p : input.pixels()) {
          p = rng.uniform_int(0, 255);
        }
        integral::scan_rows_gpu(kSpec, input, output);
      });

  ASSERT_EQ(irs.size(), 1u);
  const KernelIR& ir = irs.front();
  EXPECT_EQ(ir.config.name, "scan_rows");
  ASSERT_EQ(ir.phases.size(), 12u);
  EXPECT_EQ(ir.barrier_count(), 11);
  EXPECT_FALSE(ir.phases.front().global_slots.empty());
  EXPECT_FALSE(ir.phases.back().global_slots.empty());
  for (std::size_t i = 1; i + 1 < ir.phases.size(); ++i) {
    EXPECT_TRUE(ir.phases[i].global_slots.empty())
        << "phase " << i << " should only touch shared memory";
  }
  // The tree phases load and store shared words.
  EXPECT_FALSE(ir.phases[2].shared_slots.empty());
}

TEST(AnalyzeCapture, ForcesBranchTrackingWhenConfigHasItOff) {
  // Production configs mostly leave track_branches off (tracing costs).
  // The capture engine's wants_branch_tracking() must force lane traces on
  // for the capture run so divergence is observable anyway — and the IR
  // must record that it did.
  const KernelConfig config{.name = "untracked",
                            .grid = {1, 1, 1},
                            .block = {32, 1, 1},
                            .track_branches = false};
  const KernelIR ir = capture_one(
      config, [](const ThreadCoord& t, LaneCtx& ctx, SharedMem&) {
        ctx.branch(t.thread.x < 16);  // half the warp: divergent
      });

  EXPECT_TRUE(ir.branch_tracking_forced);
  ASSERT_EQ(ir.phases[0].branches.size(), 1u);
  const BranchPattern& b = ir.phases[0].branches[0];
  EXPECT_TRUE(b.divergent_observed);
  EXPECT_FALSE(b.data_dependent);  // the split is geometry, not data
  EXPECT_EQ(b.taken, 16);
}

TEST(AnalyzeCapture, CrossSeedValueChangeIsFlaggedDataDependent) {
  // The address is the seed itself: a perfectly affine form exists within
  // EACH capture (constant per run), but the two runs disagree — exactly
  // the indirect-addressing shape the merge must refuse to extrapolate.
  const KernelConfig config{.name = "indirect",
                            .grid = {1, 1, 1},
                            .block = {32, 1, 1}};
  const std::vector<KernelIR> irs =
      capture_kernels([&config](std::uint64_t seed) {
        vgpu::execute_kernel(
            kSpec, config,
            [seed](const ThreadCoord&, LaneCtx& ctx, SharedMem&) {
              ctx.global_load((seed % 97) * 128, 4);
            });
      });

  ASSERT_EQ(irs.size(), 1u);
  const AccessPattern& p = irs.front().phases[0].global_slots[0];
  EXPECT_TRUE(p.data_dependent);
  EXPECT_FALSE(p.affine);
  EXPECT_EQ(irs.front().data_seeds, 2);
}

TEST(AnalyzeCapture, DataDependentParticipationIsClassified) {
  // Which lanes issue the access changes with the seed (threshold on
  // seeded data): participation must be kDataDependent, the input the
  // barrier-divergence analysis keys on.
  const KernelConfig config{.name = "gated",
                            .grid = {1, 1, 1},
                            .block = {32, 1, 1},
                            .shared_bytes = 32 * 4};
  const std::vector<KernelIR> irs =
      capture_kernels([&config](std::uint64_t seed) {
        core::Rng rng(seed);
        std::vector<int> data(32);
        for (int& v : data) {
          v = rng.uniform_int(0, 255);
        }
        vgpu::execute_kernel(
            kSpec, config,
            [&data](const ThreadCoord& t, LaneCtx& ctx, SharedMem&) {
              if (data[static_cast<std::size_t>(t.thread.x)] > 127) {
                ctx.shared_store(static_cast<std::size_t>(t.thread.x) * 4, 4);
              }
            });
      });

  ASSERT_EQ(irs.size(), 1u);
  ASSERT_EQ(irs.front().phases[0].shared_slots.size(), 1u);
  EXPECT_EQ(irs.front().phases[0].shared_slots[0].participation,
            Participation::kDataDependent);
}

TEST(AnalyzeCapture, GeometryStableGuardIsPartialParticipation) {
  // tx < 20 of 32: stable across seeds, so kPartial — analyses may use the
  // observed range but must not assume every lane issues the slot.
  const KernelConfig config{.name = "guarded",
                            .grid = {1, 1, 1},
                            .block = {32, 1, 1}};
  const KernelIR ir = capture_one(
      config, [](const ThreadCoord& t, LaneCtx& ctx, SharedMem&) {
        if (t.thread.x < 20) {
          ctx.global_load(static_cast<std::uint64_t>(t.thread.x) * 4, 4);
        }
      });

  ASSERT_EQ(ir.phases[0].global_slots.size(), 1u);
  const AccessPattern& p = ir.phases[0].global_slots[0];
  EXPECT_EQ(p.participation, Participation::kPartial);
  EXPECT_FALSE(p.data_dependent);
  EXPECT_TRUE(p.affine);  // affine over the lanes that do participate
  EXPECT_EQ(p.form.tx, 4);
}

TEST(AnalyzeCapture, MergeRejectsStructurallyDifferentCaptures) {
  // Drivers must be geometry-deterministic: a driver that changes its
  // launch geometry with the seed cannot be merged.
  EXPECT_THROW(
      capture_kernels([](std::uint64_t seed) {
        const KernelConfig config{
            .name = "unstable",
            .grid = {1, 1, 1},
            .block = {seed % 2 == 0 ? 32 : 64, 1, 1}};
        vgpu::execute_kernel(kSpec, config,
                             [](const ThreadCoord&, LaneCtx& ctx, SharedMem&) {
                               ctx.global_load(0, 4);
                             });
      }),
      core::CheckError);
}

TEST(AnalyzeCapture, CarveLayoutIsRecorded) {
  const KernelConfig config{.name = "carved",
                            .grid = {1, 1, 1},
                            .block = {32, 1, 1},
                            .shared_bytes = 64 * 4};
  const KernelIR ir = capture_one(
      config, [](const ThreadCoord& t, LaneCtx& ctx, SharedMem& shared) {
        auto tile = shared.array<std::int32_t>(64);
        tile[static_cast<std::size_t>(t.thread.x)] = t.thread.x;
        ctx.shared_store_at(shared, tile[static_cast<std::size_t>(t.thread.x)]);
      });

  ASSERT_EQ(ir.carves.size(), 1u);
  EXPECT_EQ(ir.carves[0].bytes, 64u * 4u);
  EXPECT_FALSE(ir.carve_divergence);
  // Words 0..31 written, 32..63 never touched.
  ASSERT_GE(ir.shared_words_written.size(), 32u);
  EXPECT_TRUE(ir.shared_words_written[0]);
  EXPECT_TRUE(ir.shared_words_written[31]);
  if (ir.shared_words_written.size() > 32) {
    EXPECT_FALSE(ir.shared_words_written[32]);
  }
}

}  // namespace
}  // namespace fdet::analyze
