#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "core/check.h"
#include "core/rng.h"
#include "eval/accuracy.h"
#include "eval/hungarian.h"

namespace fdet::eval {
namespace {

// --- Hungarian ---------------------------------------------------------

double brute_force_best(const std::vector<std::vector<double>>& cost) {
  const int rows = static_cast<int>(cost.size());
  const int cols = static_cast<int>(cost[0].size());
  std::vector<int> perm(static_cast<std::size_t>(cols));
  std::iota(perm.begin(), perm.end(), 0);
  double best = 1e30;
  do {
    double total = 0.0;
    for (int i = 0; i < std::min(rows, cols); ++i) {
      total += cost[static_cast<std::size_t>(i)][static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])];
    }
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  // For rows > cols, iterate row subsets via transposition (not needed for
  // our test sizes where rows <= cols after transpose).
  return best;
}

TEST(Hungarian, SolvesKnownSquareInstance) {
  const std::vector<std::vector<double>> cost{
      {4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  const auto assignment = solve_assignment(cost);
  EXPECT_DOUBLE_EQ(assignment_cost(cost, assignment), 5.0);  // 1 + 2 + 2
  // Must be a permutation.
  std::set<int> used(assignment.begin(), assignment.end());
  EXPECT_EQ(used.size(), 3u);
}

TEST(Hungarian, MatchesBruteForceOnRandomSquares) {
  core::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = rng.uniform_int(1, 6);
    std::vector<std::vector<double>> cost(static_cast<std::size_t>(n));
    for (auto& row : cost) {
      row.resize(static_cast<std::size_t>(n));
      for (auto& c : row) {
        c = rng.uniform(0.0, 10.0);
      }
    }
    const auto assignment = solve_assignment(cost);
    EXPECT_NEAR(assignment_cost(cost, assignment), brute_force_best(cost),
                1e-9)
        << "n=" << n << " trial=" << trial;
  }
}

TEST(Hungarian, RectangularWideAssignsEveryRow) {
  // 2 rows, 4 columns: every row gets its cheapest feasible column.
  const std::vector<std::vector<double>> cost{{9, 1, 9, 9}, {9, 9, 1, 9}};
  const auto assignment = solve_assignment(cost);
  EXPECT_EQ(assignment[0], 1);
  EXPECT_EQ(assignment[1], 2);
}

TEST(Hungarian, RectangularTallLeavesRowsUnassigned) {
  // 3 rows, 1 column: only one row can win it (the cheapest).
  const std::vector<std::vector<double>> cost{{5}, {1}, {3}};
  const auto assignment = solve_assignment(cost);
  EXPECT_EQ(assignment[1], 0);
  EXPECT_EQ(assignment[0], -1);
  EXPECT_EQ(assignment[2], -1);
  EXPECT_DOUBLE_EQ(assignment_cost(cost, assignment), 1.0);
}

TEST(Hungarian, HandlesEmptyAndDegenerateInputs) {
  EXPECT_TRUE(solve_assignment({}).empty());
  const auto one = solve_assignment({{7.0}});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0);
}

TEST(Hungarian, RejectsRaggedMatrix) {
  EXPECT_THROW(solve_assignment({{1.0, 2.0}, {3.0}}), core::CheckError);
}

// --- Association -------------------------------------------------------

detect::Detection det_at(int x, int y, int size, float score) {
  return {{x, y, size, size}, score, 1, 0};
}

GroundTruthFace gt_for(const detect::Detection& d) {
  return {d.predicted_eyes()};
}

TEST(Associate, PerfectDetectionMatches) {
  const auto d = det_at(100, 100, 48, 3.0f);
  const auto scored = associate({d}, {gt_for(d)});
  ASSERT_EQ(scored.size(), 1u);
  EXPECT_TRUE(scored[0].matched);
  EXPECT_FLOAT_EQ(scored[0].score, 3.0f);
}

TEST(Associate, FarDetectionDoesNotMatch) {
  const auto d = det_at(100, 100, 48, 3.0f);
  const auto far = det_at(400, 400, 48, 1.0f);
  const auto scored = associate({far}, {gt_for(d)});
  EXPECT_FALSE(scored[0].matched);
}

TEST(Associate, OneGtMatchesAtMostOneDetection) {
  const auto d = det_at(100, 100, 48, 3.0f);
  const auto near = det_at(102, 100, 48, 1.0f);
  const auto scored = associate({d, near}, {gt_for(d)});
  const int matches = scored[0].matched + scored[1].matched;
  EXPECT_EQ(matches, 1);
}

TEST(Associate, HungarianPicksGloballyBestPairs) {
  // d1 is close to g1 and g2; d2 only to g1. Greedy (d1 -> g1) would leave
  // d2 unmatched; the Hungarian assignment matches both.
  const auto g1 = det_at(100, 100, 48, 0.0f);
  const auto g2 = det_at(104, 100, 48, 0.0f);
  const auto d1 = det_at(102, 100, 48, 1.0f);  // between both
  const auto d2 = det_at(99, 100, 48, 1.0f);   // near g1 only
  const auto scored = associate({d1, d2}, {gt_for(g1), gt_for(g2)});
  EXPECT_TRUE(scored[0].matched);
  EXPECT_TRUE(scored[1].matched);
}

TEST(Associate, EmptyInputsAreHandled) {
  EXPECT_TRUE(associate({}, {}).empty());
  const auto d = det_at(0, 0, 48, 1.0f);
  const auto scored = associate({d}, {});
  ASSERT_EQ(scored.size(), 1u);
  EXPECT_FALSE(scored[0].matched);
}

// --- ROC curve ---------------------------------------------------------

TEST(RocCurve, PerfectDetectorReachesFullTprAtZeroFp) {
  std::vector<ScoredDetection> scored{{5.0f, true}, {4.0f, true}};
  const auto curve = roc_curve(scored, 2);
  ASSERT_FALSE(curve.empty());
  EXPECT_EQ(curve.back().false_positives, 0);
  EXPECT_DOUBLE_EQ(curve.back().true_positive_rate, 1.0);
}

TEST(RocCurve, TprAndFpAreMonotoneAlongTheSweep) {
  core::Rng rng(9);
  std::vector<ScoredDetection> scored;
  for (int i = 0; i < 200; ++i) {
    scored.push_back({static_cast<float>(rng.uniform(0.0, 10.0)),
                      rng.bernoulli(0.5)});
  }
  const auto curve = roc_curve(scored, 120);
  double prev_tpr = 0.0;
  int prev_fp = 0;
  double prev_thr = 1e30;
  for (const auto& p : curve) {
    EXPECT_GE(p.true_positive_rate, prev_tpr);
    EXPECT_GE(p.false_positives, prev_fp);
    EXPECT_LT(p.threshold, prev_thr);
    prev_tpr = p.true_positive_rate;
    prev_fp = p.false_positives;
    prev_thr = p.threshold;
  }
}

TEST(RocCurve, HigherScoredMatchesDominateTheCurve) {
  // Detector A scores matches above FPs; detector B the reverse.
  std::vector<ScoredDetection> good{{5.0f, true}, {4.0f, true}, {1.0f, false}};
  std::vector<ScoredDetection> bad{{5.0f, false}, {4.0f, true}, {1.0f, true}};
  EXPECT_GT(mean_tpr(roc_curve(good, 2)), mean_tpr(roc_curve(bad, 2)));
}

TEST(RocCurve, RejectsZeroFaces) {
  EXPECT_THROW(roc_curve({}, 0), core::CheckError);
}

}  // namespace
}  // namespace fdet::eval
