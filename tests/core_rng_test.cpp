#include "core/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <set>

namespace fdet::core {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    equal += (a() == b());
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 10000; ++i) {
    const int v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, BernoulliFrequencyMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    hits += rng.bernoulli(0.3);
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    equal += (parent() == child());
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, HashCombineIsOrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_EQ(hash_combine(1, 2), hash_combine(1, 2));
}

TEST(Rng, SplitMixSequenceIsStable) {
  // Pin the first outputs so serialized artifacts (cascades, datasets)
  // remain reproducible across refactors.
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  const std::uint64_t second = splitmix64(s);
  EXPECT_EQ(first, 0xe220a8397b1dcdafULL);
  EXPECT_NE(first, second);
}

}  // namespace
}  // namespace fdet::core
