// Trace exporter: Chrome trace-event JSON structure, stream/SM track
// mapping against the scheduler's LaunchRecords, and the TraceSession
// host-span / ambient-session machinery.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "obs/json.h"
#include "vgpu/scheduler.h"

namespace fdet::obs {
namespace {

vgpu::Launch make_launch(const vgpu::DeviceSpec& spec, const char* name,
                         int blocks, int alu, int stream) {
  vgpu::KernelConfig config{
      .name = name, .grid = {blocks, 1, 1}, .block = {64, 1, 1}};
  vgpu::LaunchCost cost = execute_kernel(
      spec, config,
      [alu](const vgpu::ThreadCoord&, vgpu::LaneCtx& ctx, vgpu::SharedMem&) {
        ctx.alu(alu);
      });
  return vgpu::Launch{std::move(cost), stream};
}

vgpu::Timeline small_timeline(vgpu::ExecMode mode) {
  vgpu::DeviceSpec spec;
  std::vector<vgpu::Launch> launches;
  launches.push_back(make_launch(spec, "scan", 4, 300, 0));
  launches.push_back(make_launch(spec, "cascade_s0", 2, 500, 1));
  launches.push_back(make_launch(spec, "cascade_s1", 2, 400, 2));
  return schedule(spec, launches, mode);
}

TEST(TraceExporter, JsonParsesWithExpectedTopLevelShape) {
  const auto events =
      timeline_trace_events(small_timeline(vgpu::ExecMode::kConcurrent),
                            /*pid=*/1, "frame");
  const json::Value doc = json::parse(chrome_trace_json(events));
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const auto& trace_events = doc.at("traceEvents").as_array();
  ASSERT_FALSE(trace_events.empty());
  for (const json::Value& event : trace_events) {
    const std::string& ph = event.at("ph").as_string();
    EXPECT_TRUE(ph == "X" || ph == "C" || ph == "M");
    if (ph != "M") {
      EXPECT_GE(event.at("ts").as_number(), 0.0);
    }
    if (ph == "X") {
      EXPECT_GE(event.at("dur").as_number(), 0.0);
    }
  }
}

TEST(TraceExporter, StreamTrackTidMatchesLaunchRecordStream) {
  const vgpu::Timeline tl = small_timeline(vgpu::ExecMode::kConcurrent);
  const auto events = timeline_trace_events(tl, /*pid=*/1, "frame");

  // Count the kernels the schedule put on each stream...
  std::map<int, int> expected;
  for (const vgpu::LaunchRecord& record : tl.records) {
    ++expected[record.stream];
  }
  // ...and the complete events the exporter put on each stream track.
  std::map<int, int> actual;
  std::map<int, std::string> kernel_name;
  for (const TraceEvent& event : events) {
    if (event.phase == 'X' && event.tid < kSmTrackBase) {
      ++actual[event.tid];
      kernel_name[event.tid] = event.name;
    }
  }
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(kernel_name[1], "cascade_s0");
  EXPECT_EQ(kernel_name[2], "cascade_s1");
}

TEST(TraceExporter, TimestampsMonotonicPerTrack) {
  for (const auto mode :
       {vgpu::ExecMode::kSerial, vgpu::ExecMode::kConcurrent}) {
    const auto events =
        timeline_trace_events(small_timeline(mode), /*pid=*/1, "frame");
    std::map<std::pair<int, int>, double> last_end;
    for (const TraceEvent& event : events) {
      if (event.phase != 'X') {
        continue;
      }
      const std::pair<int, int> track{event.pid, event.tid};
      const auto it = last_end.find(track);
      if (it != last_end.end()) {
        EXPECT_GE(event.ts_us, it->second)
            << "track (" << track.first << "," << track.second
            << ") overlaps itself";
      }
      last_end[track] = event.ts_us + event.dur_us;
    }
  }
}

TEST(TraceExporter, SerialAndConcurrentEmitIdenticalKernelEventCounts) {
  const auto count_kernels = [](const std::vector<TraceEvent>& events) {
    int n = 0;
    for (const TraceEvent& event : events) {
      n += (event.phase == 'X' && event.tid < kSmTrackBase);
    }
    return n;
  };
  const auto serial = timeline_trace_events(
      small_timeline(vgpu::ExecMode::kSerial), 1, "serial");
  const auto concurrent = timeline_trace_events(
      small_timeline(vgpu::ExecMode::kConcurrent), 1, "concurrent");
  EXPECT_EQ(count_kernels(serial), count_kernels(concurrent));
  EXPECT_EQ(count_kernels(serial), 3);
}

TEST(TraceExporter, SmSpansCoverEveryRecordedBusySecond) {
  const vgpu::Timeline tl = small_timeline(vgpu::ExecMode::kConcurrent);
  double span_busy = 0.0;
  for (const auto& spans : tl.sm_spans) {
    for (const vgpu::SmSpan& span : spans) {
      span_busy += span.end_s - span.start_s;
    }
  }
  EXPECT_NEAR(span_busy, tl.sm_busy_s, 1e-12);
}

TEST(TraceExporter, BusySmCounterReturnsToZero) {
  const auto events =
      timeline_trace_events(small_timeline(vgpu::ExecMode::kConcurrent), 1,
                            "frame");
  double last = -1.0;
  bool saw_any = false;
  for (const TraceEvent& event : events) {
    if (event.phase == 'C' && event.name == "busy_sms") {
      saw_any = true;
      ASSERT_EQ(event.num_args.size(), 1u);
      last = event.num_args[0].second;
      EXPECT_GE(last, 0.0);
    }
  }
  ASSERT_TRUE(saw_any);
  EXPECT_DOUBLE_EQ(last, 0.0);  // all SMs idle after the makespan
}

TEST(TraceSessionTest, SpansRecordCompleteEventsOnHostTrack) {
  TraceSession session;
  const std::size_t base = session.event_count();  // process_name metadata
  {
    auto outer = session.span("outer");
    session.instant("marker");
  }
  const auto events = session.events();
  ASSERT_EQ(events.size(), base + 2);
  EXPECT_EQ(events[base].phase, 'i');
  EXPECT_EQ(events[base].name, "marker");
  EXPECT_EQ(events[base + 1].phase, 'X');
  EXPECT_EQ(events[base + 1].name, "outer");
  EXPECT_EQ(events[base + 1].pid, 0);
  EXPECT_GE(events[base + 1].dur_us, 0.0);
}

TEST(TraceSessionTest, ScopedSpanIsNoopWithoutAmbientSession) {
  ASSERT_EQ(TraceSession::current(), nullptr);
  { ScopedSpan span("ignored"); }  // must not crash or record anywhere

  TraceSession session;
  session.install();
  EXPECT_EQ(TraceSession::current(), &session);
  const std::size_t before = session.event_count();
  { ScopedSpan span("captured"); }
  EXPECT_EQ(session.event_count(), before + 1);
  session.uninstall();
  EXPECT_EQ(TraceSession::current(), nullptr);
}

TEST(TraceSessionTest, AddTimelineAssignsFreshPids) {
  TraceSession session;
  const int first =
      session.add_timeline("a", small_timeline(vgpu::ExecMode::kSerial));
  const int second =
      session.add_timeline("b", small_timeline(vgpu::ExecMode::kConcurrent));
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 2);
  // The full document still parses as valid trace-event JSON.
  const json::Value doc = json::parse(session.to_json());
  EXPECT_GT(doc.at("traceEvents").as_array().size(), 6u);
}

TEST(TraceSessionTest, EmptySessionSerializesAValidPerfettoDocument) {
  const TraceSession session;
  const json::Value doc = json::parse(session.to_json());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  // Process metadata only — ui.perfetto.dev loads it without complaint.
  for (const json::Value& event : doc.at("traceEvents").as_array()) {
    EXPECT_EQ(event.at("ph").as_string(), "M");
  }
}

TEST(TraceSessionTest, UnclosedSpansFlushWithIncompleteFlag) {
  TraceSession session;
  auto open = session.span("in-flight");
  {
    auto closed = session.span("done");
  }
  // event_count() counts only closed events...
  const std::size_t closed_count = session.event_count();
  // ...but the snapshot synthesizes the open span, flagged incomplete.
  const auto events = session.events();
  ASSERT_EQ(events.size(), closed_count + 1);
  const TraceEvent& flushed = events.back();
  EXPECT_EQ(flushed.name, "in-flight");
  EXPECT_EQ(flushed.phase, 'X');
  EXPECT_GE(flushed.dur_us, 0.0);
  bool flagged = false;
  for (const auto& [key, value] : flushed.str_args) {
    flagged |= key == "incomplete" && value == "true";
  }
  EXPECT_TRUE(flagged) << "open span missing the incomplete=\"true\" arg";
  // The closed span must NOT carry the flag.
  for (const TraceEvent& event : events) {
    if (event.name == "done") {
      for (const auto& [key, value] : event.str_args) {
        EXPECT_NE(key, "incomplete");
      }
    }
  }
  // The flushed document still parses as trace-event JSON.
  EXPECT_FALSE(
      json::parse(session.to_json()).at("traceEvents").as_array().empty());
}

TEST(TraceContextTest, FrameContextsAreDeterministicAndDistinct) {
  const TraceContext a = make_frame_context(42, 7);
  const TraceContext b = make_frame_context(42, 7);
  EXPECT_EQ(a.trace_id, b.trace_id);
  EXPECT_EQ(a.span_id, b.span_id);
  EXPECT_TRUE(a.valid());
  EXPECT_NE(make_frame_context(42, 8).trace_id, a.trace_id);
  EXPECT_NE(make_frame_context(43, 7).trace_id, a.trace_id);

  const TraceContext child = child_context(a, "decode");
  EXPECT_EQ(child.trace_id, a.trace_id);
  EXPECT_EQ(child.parent_span_id, a.span_id);
  EXPECT_NE(child.span_id, a.span_id);
  EXPECT_EQ(child_context(a, "decode").span_id, child.span_id);
  EXPECT_NE(child_context(a, "detect").span_id, child.span_id);
}

TEST(TraceContextTest, HexIdIsSixteenLowercaseDigits) {
  EXPECT_EQ(hex_id(0), "0000000000000000");
  EXPECT_EQ(hex_id(0xabcdef), "0000000000abcdef");
  EXPECT_EQ(hex_id(~0ull), "ffffffffffffffff");
}

TEST(TraceContextTest, ScopedContextNestsAndUnwinds) {
  EXPECT_EQ(current_trace_context(), nullptr);
  const TraceContext frame = make_frame_context(1, 0);
  {
    ScopedTraceContext outer(frame);
    ASSERT_NE(current_trace_context(), nullptr);
    EXPECT_EQ(current_trace_context()->trace_id, frame.trace_id);
    {
      ScopedTraceContext inner(child_context(frame, "stage"));
      EXPECT_EQ(current_trace_context()->parent_span_id, frame.span_id);
    }
    EXPECT_EQ(current_trace_context()->span_id, frame.span_id);
  }
  EXPECT_EQ(current_trace_context(), nullptr);
}

TEST(TraceContextTest, SpansCaptureTheAmbientContext) {
  TraceSession session;
  const std::size_t base = session.event_count();
  const TraceContext frame = make_frame_context(99, 3);
  {
    ScopedTraceContext scope(frame);
    auto span = session.span("traced-stage");
  }
  const auto events = session.events();
  ASSERT_EQ(events.size(), base + 1);
  const TraceEvent& traced = events.back();
  bool has_trace_id = false;
  bool has_parent = false;
  for (const auto& [key, value] : traced.str_args) {
    has_trace_id |= key == "trace_id" && value == hex_id(frame.trace_id);
    has_parent |=
        key == "parent_span_id" && value == hex_id(frame.span_id);
  }
  EXPECT_TRUE(has_trace_id);
  EXPECT_TRUE(has_parent);
}

TEST(TraceExporter, RootExtrasLandAtTheDocumentRoot) {
  const std::string text = chrome_trace_json(
      {}, {{"anomaly", "{\"kind\":\"deadline-miss\",\"frame\":7}"},
           {"note", "\"hello\""}});
  const json::Value doc = json::parse(text);
  EXPECT_TRUE(doc.at("traceEvents").as_array().empty());
  EXPECT_EQ(doc.at("anomaly").at("kind").as_string(), "deadline-miss");
  EXPECT_DOUBLE_EQ(doc.at("anomaly").at("frame").as_number(), 7.0);
  EXPECT_EQ(doc.at("note").as_string(), "hello");
}

TEST(TracePublish, TimelineMetricsLandInRegistry) {
  Registry registry;
  publish_timeline(registry, small_timeline(vgpu::ExecMode::kConcurrent),
                   {{"mode", "concurrent"}});
  const Labels labels = {{"mode", "concurrent"}};
  EXPECT_GT(registry.gauge("vgpu.makespan_ms", labels).value(), 0.0);
  EXPECT_GT(registry.gauge("vgpu.sm_utilization", labels).value(), 0.0);
  EXPECT_DOUBLE_EQ(registry.counter("vgpu.kernel_launches", labels).value(),
                   3.0);
  EXPECT_DOUBLE_EQ(
      registry
          .histogram("vgpu.kernel_duration_ms",
                     {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0,
                      20.0, 50.0},
                     labels)
          .count(),
      3.0);
}

}  // namespace
}  // namespace fdet::obs
