// Crash-consistent trainer checkpoints: digest semantics, bit-exact
// (de)serialization, rotation, corrupt-fallback/quarantine, the resume
// identity invariant, and trainer determinism across thread counts (the
// precondition that lets a checkpoint taken at N threads resume at 1).
#include "train/checkpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/artifact.h"
#include "facegen/dataset.h"
#include "haar/profile.h"
#include "obs/metrics.h"
#include "train/boost.h"

namespace fdet::train {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
  const std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TrainOptions small_options() {
  TrainOptions options;
  options.stage_sizes = {2, 3};
  options.feature_pool = 80;
  options.negatives_per_stage = 60;
  options.stage_hit_target = 0.99;
  options.seed = 7;
  return options;
}

TEST(TrainOptionsDigest, StableForIdenticalOptions) {
  EXPECT_EQ(train_options_digest(small_options(), "a"),
            train_options_digest(small_options(), "a"));
}

TEST(TrainOptionsDigest, ChangesWithTrainingShapingFields) {
  const TrainOptions base = small_options();
  const std::string base_digest = train_options_digest(base, "a");

  TrainOptions variant = base;
  variant.seed += 1;
  EXPECT_NE(train_options_digest(variant, "a"), base_digest);

  variant = base;
  variant.algorithm = BoostAlgorithm::kAdaBoost;
  EXPECT_NE(train_options_digest(variant, "a"), base_digest);

  variant = base;
  variant.stage_sizes.push_back(4);
  EXPECT_NE(train_options_digest(variant, "a"), base_digest);

  variant = base;
  variant.feature_pool += 1;
  EXPECT_NE(train_options_digest(variant, "a"), base_digest);

  variant = base;
  variant.negatives_per_stage += 1;
  EXPECT_NE(train_options_digest(variant, "a"), base_digest);

  variant = base;
  variant.stage_hit_target += 0.001;
  EXPECT_NE(train_options_digest(variant, "a"), base_digest);

  EXPECT_NE(train_options_digest(base, "other-name"), base_digest);
}

TEST(TrainOptionsDigest, IgnoresExecutionOnlyFields) {
  // Thread count must not shape the digest: the trainer is deterministic
  // across thread counts (pinned below), so a checkpoint written by an
  // 8-thread run resumes under 1 thread.
  const TrainOptions base = small_options();
  TrainOptions variant = base;
  variant.threads = 8;
  variant.checkpoint_dir = "/somewhere/else";
  variant.checkpoint_keep = 99;
  variant.resume = false;
  EXPECT_EQ(train_options_digest(variant, "a"),
            train_options_digest(base, "a"));
}

TrainCheckpoint sample_checkpoint(int stages) {
  TrainCheckpoint checkpoint;
  checkpoint.options_digest = "deadbeefcafef00d";
  checkpoint.name = "roundtrip";
  checkpoint.rng_state = {0x0123456789abcdefULL, 0xfedcba9876543210ULL, 1ULL,
                          0x8000000000000000ULL};
  checkpoint.total_stages = 25;
  checkpoint.cascade = haar::build_profile_cascade(
      "roundtrip", std::vector<int>(static_cast<std::size_t>(stages), 2), 3);
  for (int s = 0; s < stages; ++s) {
    StageStats stats;
    stats.classifiers = 2;
    stats.hit_rate = 0.1 + s;  // 0.1 is not exactly representable: a
                               // decimal-formatting round trip would drift
    stats.false_positive_rate = 1.0 / 3.0;
    stats.negatives_mined = 60 + s;
    stats.seconds = 1e-9;
    checkpoint.stats.push_back(stats);
  }
  checkpoint.weights = {1.0 / 3.0, 0.1, 1e-300, 2.5e300, 0.0};
  return checkpoint;
}

TEST(Checkpoint, SerializationRoundTripsBitExactly) {
  const TrainCheckpoint original = sample_checkpoint(3);
  const std::string payload = serialize_checkpoint(original);
  const TrainCheckpoint parsed = parse_checkpoint("mem", payload);

  EXPECT_EQ(parsed.options_digest, original.options_digest);
  EXPECT_EQ(parsed.name, original.name);
  EXPECT_EQ(parsed.rng_state, original.rng_state);
  EXPECT_EQ(parsed.total_stages, original.total_stages);
  EXPECT_EQ(parsed.stages_done(), 3);
  EXPECT_EQ(haar::cascade_to_string(parsed.cascade),
            haar::cascade_to_string(original.cascade));
  ASSERT_EQ(parsed.stats.size(), original.stats.size());
  for (std::size_t s = 0; s < original.stats.size(); ++s) {
    EXPECT_EQ(parsed.stats[s].classifiers, original.stats[s].classifiers);
    // Doubles travel as hex bit patterns: exact equality is the contract.
    EXPECT_EQ(parsed.stats[s].hit_rate, original.stats[s].hit_rate);
    EXPECT_EQ(parsed.stats[s].false_positive_rate,
              original.stats[s].false_positive_rate);
    EXPECT_EQ(parsed.stats[s].negatives_mined,
              original.stats[s].negatives_mined);
    EXPECT_EQ(parsed.stats[s].seconds, original.stats[s].seconds);
  }
  EXPECT_EQ(parsed.weights, original.weights);

  // And the round trip is stable: re-serializing reproduces the bytes.
  EXPECT_EQ(serialize_checkpoint(parsed), payload);
}

TEST(Checkpoint, ParserRejectsCorruptPayloads) {
  const std::string payload = serialize_checkpoint(sample_checkpoint(2));
  EXPECT_THROW(parse_checkpoint("mem", ""), core::ArtifactError);
  EXPECT_THROW(parse_checkpoint("mem", payload.substr(0, payload.size() / 2)),
               core::ArtifactError);
  EXPECT_THROW(parse_checkpoint("mem", payload + "trailing garbage\n"),
               core::ArtifactError);
}

TEST(CheckpointStore, RotationKeepsNewestK) {
  const std::string dir = temp_dir("fdet_ckpt_rotation");
  CheckpointStore store(dir, /*keep=*/2);
  for (int stages = 1; stages <= 4; ++stages) {
    store.save(sample_checkpoint(stages));
  }
  EXPECT_EQ(store.stages_on_disk(), (std::vector<int>{3, 4}));
  fs::remove_all(dir);
}

TEST(CheckpointStore, CorruptNewestQuarantinedAndFallsBack) {
  const std::string dir = temp_dir("fdet_ckpt_corrupt");
  obs::Registry metrics;
  CheckpointStore store(dir, /*keep=*/3, &metrics);
  store.save(sample_checkpoint(1));
  store.save(sample_checkpoint(2));

  // Flip a payload byte in the newest checkpoint, bypassing the artifact
  // layer the way bit rot would.
  const std::string victim = store.path_for(2);
  std::string bytes;
  {
    std::ifstream in(victim, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = std::move(buffer).str();
  }
  ASSERT_GT(bytes.size(), 16u);
  bytes[bytes.size() - 10] ^= 0x40;
  {
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  const auto resumed = store.load_latest("deadbeefcafef00d");
  ASSERT_TRUE(resumed.has_value());
  EXPECT_EQ(resumed->stages_done(), 1);  // fell back past the corrupt one
  EXPECT_FALSE(fs::exists(victim));
  EXPECT_TRUE(fs::exists(victim + ".corrupt"));
  EXPECT_EQ(metrics.counter("train.checkpoint.corrupt_quarantined").value(),
            1.0);
  fs::remove_all(dir);
}

TEST(CheckpointStore, StaleDigestSkippedWithoutQuarantine) {
  const std::string dir = temp_dir("fdet_ckpt_stale");
  obs::Registry metrics;
  CheckpointStore store(dir, /*keep=*/3, &metrics);
  store.save(sample_checkpoint(1));

  EXPECT_FALSE(store.load_latest("a-different-digest").has_value());
  // The file is intact — just for another run — so it is skipped, not
  // quarantined: the run that owns it may still want it.
  EXPECT_TRUE(fs::exists(store.path_for(1)));
  EXPECT_EQ(metrics.counter("train.checkpoint.stale_skipped").value(), 1.0);
  fs::remove_all(dir);
}

TEST(CheckpointStore, EmptyOrMissingDirectoryYieldsNothing) {
  CheckpointStore store((fs::temp_directory_path() / "fdet_ckpt_never_made")
                            .string());
  EXPECT_FALSE(store.load_latest("any").has_value());
  EXPECT_TRUE(store.stages_on_disk().empty());
}

// ---------------------------------------------------------------------------
// End-to-end invariants on a deliberately tiny training run.

struct SimulatedCrash : std::runtime_error {
  SimulatedCrash() : std::runtime_error("simulated crash") {}
};

TEST(TrainResume, KilledRunResumesBitIdentically) {
  const facegen::TrainingSet set = facegen::build_training_set(60, 10, 48, 7);
  const std::string dir = temp_dir("fdet_ckpt_resume");

  TrainOptions reference_options = small_options();
  const std::string reference =
      haar::cascade_to_string(train_cascade(set, reference_options, "tiny")
                                  .cascade);

  TrainOptions killed = small_options();
  killed.checkpoint_dir = dir;
  killed.after_stage = [](int stage) {
    if (stage == 0) {
      throw SimulatedCrash();
    }
  };
  EXPECT_THROW(train_cascade(set, killed, "tiny"), SimulatedCrash);

  obs::Registry metrics;
  TrainOptions resumed = small_options();
  resumed.checkpoint_dir = dir;
  resumed.metrics = &metrics;
  const TrainResult result = train_cascade(set, resumed, "tiny");
  EXPECT_EQ(haar::cascade_to_string(result.cascade), reference);
  EXPECT_EQ(metrics.gauge("train.checkpoint.resumed_stage").value(), 1.0);
  fs::remove_all(dir);
}

TEST(TrainDeterminism, ThreadCountDoesNotChangeTheCascade) {
  // The satellite invariant behind excluding `threads` from the digest:
  // the OpenMP feature argmin reduces deterministically (loss, then
  // feature index), so any thread count reproduces the same cascade.
  const facegen::TrainingSet set = facegen::build_training_set(60, 10, 48, 7);

  std::string baseline;
  for (const int threads : {1, 3}) {
    TrainOptions options = small_options();
    options.threads = threads;
    const std::string text =
        haar::cascade_to_string(train_cascade(set, options, "tiny").cascade);
    if (baseline.empty()) {
      baseline = text;
    } else {
      EXPECT_EQ(text, baseline)
          << "cascade diverged between 1 and " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace fdet::train
