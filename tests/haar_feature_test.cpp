#include "haar/feature.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "haar/enumerate.h"

namespace fdet::haar {
namespace {

img::ImageU8 random_window(std::uint64_t seed) {
  core::Rng rng(seed);
  img::ImageU8 im(kWindowSize, kWindowSize);
  for (auto& p : im.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return im;
}

std::int64_t brute_response(const img::ImageU8& im, const HaarFeature& f) {
  const auto d = f.decompose();
  std::int64_t acc = 0;
  for (int i = 0; i < d.count; ++i) {
    const RectTerm& r = d.rects[static_cast<std::size_t>(i)];
    for (int y = r.y; y < r.y + r.h; ++y) {
      for (int x = r.x; x < r.x + r.w; ++x) {
        acc += static_cast<std::int64_t>(r.weight) * im(x, y);
      }
    }
  }
  return acc;
}

TEST(HaarFeature, DecompositionWeightsSumToZero) {
  // Zero total weight <=> zero response on constant images, for every
  // feature in the full enumeration of every family.
  for (const HaarType type :
       {HaarType::kEdge, HaarType::kLine, HaarType::kCenterSurround,
        HaarType::kDiagonal}) {
    for_each_feature(type, EnumerationGrid{.cell_step = 3}, [](const HaarFeature& f) {
      const auto d = f.decompose();
      std::int64_t weighted_area = 0;
      for (int i = 0; i < d.count; ++i) {
        const RectTerm& r = d.rects[static_cast<std::size_t>(i)];
        weighted_area += static_cast<std::int64_t>(r.weight) * r.w * r.h;
      }
      ASSERT_EQ(weighted_area, 0) << to_string(f.type) << " at ("
                                  << static_cast<int>(f.x) << ","
                                  << static_cast<int>(f.y) << ")";
    });
  }
}

TEST(HaarFeature, ZeroResponseOnConstantImage) {
  img::ImageU8 flat(kWindowSize, kWindowSize);
  flat.fill(137);
  const auto ii = integral::integral_cpu(flat);
  const HaarFeature features[] = {
      {HaarType::kEdge, false, 2, 3, 4, 5},
      {HaarType::kEdge, true, 1, 1, 6, 7},
      {HaarType::kLine, false, 0, 0, 8, 10},
      {HaarType::kLine, true, 5, 0, 3, 8},
      {HaarType::kCenterSurround, false, 3, 3, 5, 5},
      {HaarType::kDiagonal, false, 4, 4, 9, 9},
  };
  for (const auto& f : features) {
    ASSERT_TRUE(f.valid());
    EXPECT_EQ(f.response(ii, 0, 0), 0) << to_string(f.type);
  }
}

TEST(HaarFeature, ResponseMatchesBruteForce) {
  const img::ImageU8 window = random_window(11);
  const auto ii = integral::integral_cpu(window);
  core::Rng rng(12);
  for (int trial = 0; trial < 500; ++trial) {
    HaarFeature f;
    f.type = static_cast<HaarType>(rng.uniform_int(0, 3));
    f.vertical = rng.bernoulli(0.5);
    f.cw = static_cast<std::uint8_t>(rng.uniform_int(1, 8));
    f.ch = static_cast<std::uint8_t>(rng.uniform_int(1, 8));
    if (f.extent_w() > kWindowSize || f.extent_h() > kWindowSize) {
      continue;
    }
    f.x = static_cast<std::uint8_t>(
        rng.uniform_int(0, kWindowSize - f.extent_w()));
    f.y = static_cast<std::uint8_t>(
        rng.uniform_int(0, kWindowSize - f.extent_h()));
    ASSERT_EQ(f.response(ii, 0, 0), brute_response(window, f))
        << to_string(f.type);
  }
}

TEST(HaarFeature, ResponseAtOffsetUsesShiftedWindow) {
  // Embed the window in a larger image and verify that (wx, wy) anchors it.
  core::Rng rng(13);
  img::ImageU8 big(60, 50);
  for (auto& p : big.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  const auto ii = integral::integral_cpu(big);

  img::ImageU8 crop(kWindowSize, kWindowSize);
  const int wx = 17;
  const int wy = 9;
  for (int y = 0; y < kWindowSize; ++y) {
    for (int x = 0; x < kWindowSize; ++x) {
      crop(x, y) = big(wx + x, wy + y);
    }
  }
  const HaarFeature f{HaarType::kLine, false, 2, 4, 5, 6};
  EXPECT_EQ(f.response(ii, wx, wy), brute_response(crop, f));
}

TEST(HaarFeature, ValidityDetectsOverflowingExtents) {
  EXPECT_TRUE((HaarFeature{HaarType::kEdge, false, 0, 0, 12, 24}).valid());
  EXPECT_FALSE((HaarFeature{HaarType::kEdge, false, 1, 0, 12, 24}).valid());
  EXPECT_TRUE((HaarFeature{HaarType::kCenterSurround, false, 0, 0, 8, 8}).valid());
  EXPECT_FALSE(
      (HaarFeature{HaarType::kCenterSurround, false, 1, 0, 8, 8}).valid());
  EXPECT_FALSE((HaarFeature{HaarType::kEdge, false, 0, 0, 0, 1}).valid());
}

TEST(HaarFeature, ExtentsFollowOrientation) {
  const HaarFeature horizontal{HaarType::kLine, false, 0, 0, 4, 6};
  EXPECT_EQ(horizontal.extent_w(), 12);
  EXPECT_EQ(horizontal.extent_h(), 6);
  const HaarFeature vertical{HaarType::kLine, true, 0, 0, 4, 6};
  EXPECT_EQ(vertical.extent_w(), 4);
  EXPECT_EQ(vertical.extent_h(), 18);
}

TEST(HaarFeature, EdgeRespondsToStepPattern) {
  // Left half bright, right half dark: a horizontal edge feature spanning
  // the boundary must respond strongly positive.
  img::ImageU8 step(kWindowSize, kWindowSize);
  for (int y = 0; y < kWindowSize; ++y) {
    for (int x = 0; x < kWindowSize; ++x) {
      step(x, y) = (x < 12) ? 200 : 20;
    }
  }
  const auto ii = integral::integral_cpu(step);
  const HaarFeature f{HaarType::kEdge, false, 4, 4, 8, 16};  // spans x=4..20
  EXPECT_GT(f.response(ii, 0, 0), 0);
  // The mirrored pattern flips the sign.
  img::ImageU8 mirrored(kWindowSize, kWindowSize);
  for (int y = 0; y < kWindowSize; ++y) {
    for (int x = 0; x < kWindowSize; ++x) {
      mirrored(x, y) = (x < 12) ? 20 : 200;
    }
  }
  const auto ii2 = integral::integral_cpu(mirrored);
  EXPECT_LT(f.response(ii2, 0, 0), 0);
}

TEST(HaarFeature, CenterSurroundRespondsToBlob) {
  img::ImageU8 blob(kWindowSize, kWindowSize);
  blob.fill(200);
  for (int y = 9; y < 15; ++y) {
    for (int x = 9; x < 15; ++x) {
      blob(x, y) = 10;  // dark center
    }
  }
  const auto ii = integral::integral_cpu(blob);
  const HaarFeature f{HaarType::kCenterSurround, false, 3, 3, 6, 6};
  // Whole(+1) is bright, center(-9) is dark: response strongly positive.
  EXPECT_GT(f.response(ii, 0, 0), 0);
}

TEST(ToString, CoversAllFamilies) {
  EXPECT_EQ(to_string(HaarType::kEdge), "edge");
  EXPECT_EQ(to_string(HaarType::kLine), "line");
  EXPECT_EQ(to_string(HaarType::kCenterSurround), "center-surround");
  EXPECT_EQ(to_string(HaarType::kDiagonal), "diagonal");
}

}  // namespace
}  // namespace fdet::haar
