#include "haar/enumerate.h"

#include <gtest/gtest.h>

#include <set>

namespace fdet::haar {
namespace {

TEST(Enumerate, FullGridCountsMatchClosedForms) {
  // Edge (2 cells): per orientation Σ_cw (25-2cw) * Σ_ch (25-ch)
  //   = 144 * 300 = 43200; both orientations = 86400.
  EXPECT_EQ(count_features(HaarType::kEdge), 2 * 144 * 300);
  // Line (3 cells): Σ_cw (25-3cw) = 92 -> 92 * 300 per orientation.
  EXPECT_EQ(count_features(HaarType::kLine), 2 * 92 * 300);
  // Center-surround (3x3 cells): 92 * 92.
  EXPECT_EQ(count_features(HaarType::kCenterSurround), 92 * 92);
  // Diagonal (2x2 cells): 144 * 144.
  EXPECT_EQ(count_features(HaarType::kDiagonal), 144 * 144);
}

TEST(Enumerate, EveryFeatureIsValidAndUnique) {
  for (const HaarType type :
       {HaarType::kEdge, HaarType::kLine, HaarType::kCenterSurround,
        HaarType::kDiagonal}) {
    std::set<std::tuple<bool, int, int, int, int>> seen;
    for_each_feature(type, EnumerationGrid{.position_step = 2, .cell_step = 2},
                     [&](const HaarFeature& f) {
                       ASSERT_TRUE(f.valid());
                       ASSERT_EQ(f.type, type);
                       ASSERT_TRUE(seen.insert({f.vertical, f.x, f.y, f.cw, f.ch}).second);
                     });
    EXPECT_FALSE(seen.empty());
  }
}

TEST(Enumerate, CoarserGridsShrinkTheCount) {
  const auto full = count_features(HaarType::kEdge, EnumerationGrid{});
  const auto strided =
      count_features(HaarType::kEdge, EnumerationGrid{.position_step = 2});
  const auto coarse_cells =
      count_features(HaarType::kEdge, EnumerationGrid{.cell_step = 2});
  EXPECT_LT(strided, full);
  EXPECT_LT(coarse_cells, full);
  EXPECT_GT(strided, full / 5);  // step 2 in two axes ~ /4
}

TEST(Enumerate, MinCellFiltersSmallFeatures) {
  for_each_feature(HaarType::kDiagonal, EnumerationGrid{.min_cell = 3},
                   [](const HaarFeature& f) {
                     ASSERT_GE(f.cw, 3);
                     ASSERT_GE(f.ch, 3);
                   });
}

TEST(Enumerate, MaterializedMatchesCount) {
  const EnumerationGrid grid{.position_step = 3, .cell_step = 3};
  const auto vec = enumerate_features(HaarType::kLine, grid);
  EXPECT_EQ(static_cast<std::int64_t>(vec.size()),
            count_features(HaarType::kLine, grid));
}

TEST(Enumerate, SampleHitsRequestedOrderOfMagnitude) {
  const auto sample = sample_features(HaarType::kEdge, 500, 42);
  EXPECT_GT(sample.size(), 250u);
  EXPECT_LT(sample.size(), 4000u);
  for (const auto& f : sample) {
    EXPECT_TRUE(f.valid());
  }
}

TEST(Enumerate, SampleIsDeterministic) {
  const auto a = sample_features(HaarType::kLine, 300, 7);
  const auto b = sample_features(HaarType::kLine, 300, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
  const auto c = sample_features(HaarType::kLine, 300, 8);
  EXPECT_NE(a.size(), c.size());  // different seed, different subset (whp)
}

TEST(Enumerate, PaperTotalsAreRecorded) {
  EXPECT_EQ(kPaperCombinations.edge, 55660);
  EXPECT_EQ(kPaperCombinations.line, 31878);
  EXPECT_EQ(kPaperCombinations.center_surround, 3969);
  EXPECT_EQ(kPaperCombinations.diagonal, 12100);
  EXPECT_EQ(kPaperCombinations.total(), 103607);
}

}  // namespace
}  // namespace fdet::haar
