// Corrupt-cascade corpus: programmatically derived malformed inputs that
// the validating parser must reject with a diagnostic naming the exact
// line — never crash, never return a half-parsed cascade. Runs under the
// ASan/UBSan CI job like every other test, so "never crashes on hostile
// input" is checked with sanitizers armed.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "haar/cascade.h"
#include "haar/profile.h"

namespace fdet::haar {
namespace {

Cascade parse(const std::string& text) {
  std::istringstream in(text);
  return read_cascade(in);
}

/// Rejection with the line number the diagnostic must carry (0 = any).
void expect_reject(const std::string& text, const std::string& note,
                   int expect_line = 0,
                   const std::string& expect_in_what = "") {
  try {
    parse(text);
    FAIL() << "parser accepted corrupt input: " << note;
  } catch (const CascadeParseError& error) {
    EXPECT_GE(error.line(), 1) << note;
    if (expect_line > 0) {
      EXPECT_EQ(error.line(), expect_line) << note;
    }
    EXPECT_FALSE(error.field().empty()) << note;
    if (!expect_in_what.empty()) {
      EXPECT_NE(std::string(error.what()).find(expect_in_what),
                std::string::npos)
          << note << " — got: " << error.what();
    }
  }
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

/// Base corpus text: a real (profile-built) cascade rendered through the
/// canonical writer. Layout: line 1 magic, 2 name, 3 stages, 4 stage
/// header, 5.. classifier records.
std::string base_text() {
  return cascade_to_string(
      build_profile_cascade("corpus", std::vector<int>{2, 3}, 1));
}

/// Replaces one whitespace token on one 1-based line.
std::string mutate_token(const std::string& text, int line_number,
                         int token_index, const std::string& replacement) {
  std::vector<std::string> lines = split_lines(text);
  std::istringstream split(lines[static_cast<std::size_t>(line_number - 1)]);
  std::vector<std::string> tokens;
  std::string token;
  while (split >> token) {
    tokens.push_back(token);
  }
  tokens[static_cast<std::size_t>(token_index)] = replacement;
  std::string rebuilt;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i != 0) {
      rebuilt += ' ';
    }
    rebuilt += tokens[i];
  }
  lines[static_cast<std::size_t>(line_number - 1)] = rebuilt;
  return join_lines(lines);
}

TEST(CascadeCorpus, BaseTextRoundTripsByteExactly) {
  const std::string text = base_text();
  EXPECT_EQ(cascade_to_string(parse(text)), text);
}

TEST(CascadeCorpus, EveryLineTruncationIsRejected) {
  const std::vector<std::string> lines = split_lines(base_text());
  ASSERT_GE(lines.size(), 5u);
  // Dropping any suffix of lines leaves declared counts unsatisfied.
  for (std::size_t keep = 0; keep + 1 < lines.size(); ++keep) {
    const std::vector<std::string> prefix(lines.begin(),
                                          lines.begin() + static_cast<long>(keep));
    expect_reject(join_lines(prefix),
                  "truncated after " + std::to_string(keep) + " lines");
  }
}

TEST(CascadeCorpus, MidLineTruncationIsRejected) {
  const std::string text = base_text();
  // Cut in the middle of the final classifier record.
  expect_reject(text.substr(0, text.size() - 4), "mid-record byte cut");
}

TEST(CascadeCorpus, HeaderMutations) {
  const std::string text = base_text();
  expect_reject("", "empty input", 1);
  expect_reject("garbage\n", "bad magic", 1);
  expect_reject(mutate_token(text, 1, 1, "2"), "future format version", 1,
                "unsupported format version");
  expect_reject(mutate_token(text, 3, 1, "-1"), "negative stage count", 3);
  expect_reject(mutate_token(text, 3, 1, "99999"), "implausible stage count",
                3, "implausible stage count");
  expect_reject(mutate_token(text, 3, 1, "two"), "non-numeric stage count", 3,
                "not an integer");
}

TEST(CascadeCorpus, StageHeaderMutations) {
  const std::string text = base_text();
  expect_reject(mutate_token(text, 4, 1, "-3"), "negative classifier count",
                4);
  expect_reject(mutate_token(text, 4, 1, "9999999"),
                "implausible classifier count", 4, "implausible");
  expect_reject(mutate_token(text, 4, 2, "nan"), "NaN stage threshold", 4,
                "non-finite");
  expect_reject(mutate_token(text, 4, 2, "inf"), "Inf stage threshold", 4,
                "non-finite");
}

TEST(CascadeCorpus, ClassifierFieldMutations) {
  const std::string text = base_text();
  const int line = 5;  // first classifier record
  expect_reject(mutate_token(text, line, 0, "7"), "feature type out of range",
                line, "feature type must be 0..3");
  expect_reject(mutate_token(text, line, 1, "2"), "bad orientation flag",
                line, "orientation must be 0 or 1");
  expect_reject(mutate_token(text, line, 2, "30"), "anchor x out of window",
                line, "detection window");
  expect_reject(mutate_token(text, line, 3, "-1"), "negative anchor y", line,
                "detection window");
  expect_reject(mutate_token(text, line, 4, "0"), "zero cell width", line,
                "cell size");
  expect_reject(mutate_token(text, line, 5, "25"), "cell height over window",
                line);
  expect_reject(mutate_token(text, line, 6, "nan"), "NaN stump threshold",
                line, "non-finite");
  expect_reject(mutate_token(text, line, 7, "-inf"), "-Inf left vote", line,
                "non-finite");
  expect_reject(mutate_token(text, line, 8, "0.5extra"),
                "trailing junk inside a float token", line);
  expect_reject(mutate_token(text, line, 0, "1.5"), "float where int expected",
                line, "not an integer");
}

TEST(CascadeCorpus, RectangleExtendingOutsideWindowIsRejected) {
  // Anchor in-window but cells so large the multi-cell rectangle runs past
  // the 24x24 boundary — the feature-geometry check, not the anchor check.
  const std::string text = base_text();
  std::string mutated = mutate_token(text, 5, 2, "20");  // x = 20
  mutated = mutate_token(mutated, 5, 4, "20");           // cw = 20
  expect_reject(mutated, "rectangle extends outside window", 5, "window");
}

TEST(CascadeCorpus, WrongFieldCountsAreRejected) {
  const std::vector<std::string> lines = split_lines(base_text());
  // Drop one token from the first classifier record.
  std::vector<std::string> missing = lines;
  missing[4] = missing[4].substr(0, missing[4].rfind(' '));
  expect_reject(join_lines(missing), "8-token classifier record", 5,
                "expected 9 fields");
  // Add one token.
  std::vector<std::string> extra = lines;
  extra[4] += " 0.25";
  expect_reject(join_lines(extra), "10-token classifier record", 5,
                "expected 9 fields");
}

TEST(CascadeCorpus, TrailingGarbageIsRejected) {
  expect_reject(base_text() + "one more line\n", "appended garbage");
  expect_reject(base_text() + base_text(), "concatenated second cascade");
}

TEST(CascadeCorpus, BlankPaddingAfterPayloadIsTolerated) {
  // Pure whitespace after the last record is not corruption.
  EXPECT_NO_THROW(parse(base_text() + "\n  \n"));
}

}  // namespace
}  // namespace fdet::haar
