#include <gtest/gtest.h>

#include "core/check.h"
#include "vgpu/device.h"

namespace fdet::vgpu {
namespace {

TEST(Occupancy, LimitedByMaxBlocksForTinyKernels) {
  DeviceSpec spec;
  const Occupancy occ = compute_occupancy(spec, 32, 0, 0);
  EXPECT_EQ(occ.blocks_per_sm, spec.max_blocks_per_sm);
  EXPECT_EQ(occ.warps_per_block, 1);
  EXPECT_EQ(occ.resident_warps, spec.max_blocks_per_sm);
}

TEST(Occupancy, LimitedByWarpsForLargeBlocks) {
  DeviceSpec spec;
  // 1024 threads = 32 warps; 48 warps per SM allows only one block.
  const Occupancy occ = compute_occupancy(spec, 1024, 0, 0);
  EXPECT_EQ(occ.blocks_per_sm, 1);
  EXPECT_EQ(occ.resident_warps, 32);
  EXPECT_NEAR(occ.ratio, 32.0 / 48.0, 1e-12);
}

TEST(Occupancy, LimitedBySharedMemory) {
  DeviceSpec spec;
  // 20 KiB per block: only two blocks fit in 48 KiB.
  const Occupancy occ = compute_occupancy(spec, 128, 20 * 1024, 0);
  EXPECT_EQ(occ.blocks_per_sm, 2);
}

TEST(Occupancy, LimitedByRegisters) {
  DeviceSpec spec;
  // 63 regs * 256 threads = 16128 regs per block; 32K regs -> 2 blocks.
  const Occupancy occ = compute_occupancy(spec, 256, 0, 63);
  EXPECT_EQ(occ.blocks_per_sm, 2);
}

TEST(Occupancy, FullOccupancyReachesRatioOne) {
  DeviceSpec spec;
  // 192 threads = 6 warps; 8 blocks = 48 warps = max.
  const Occupancy occ = compute_occupancy(spec, 192, 0, 0);
  EXPECT_EQ(occ.blocks_per_sm, 8);
  EXPECT_DOUBLE_EQ(occ.ratio, 1.0);
}

TEST(Occupancy, SharedMemoryBoundaries) {
  DeviceSpec spec;
  // Exactly the SM capacity: one resident block, not zero.
  EXPECT_EQ(compute_occupancy(spec, 128, spec.shared_mem_per_sm, 0)
                .blocks_per_sm,
            1);
  // Exactly half: two blocks; one byte more drops to one.
  EXPECT_EQ(
      compute_occupancy(spec, 128, spec.shared_mem_per_sm / 2, 0).blocks_per_sm,
      2);
  EXPECT_EQ(compute_occupancy(spec, 128, spec.shared_mem_per_sm / 2 + 1, 0)
                .blocks_per_sm,
            1);
  // An eighth: the shared limit exactly matches the max-blocks limit.
  EXPECT_EQ(compute_occupancy(spec, 128, spec.shared_mem_per_sm / 8, 0)
                .blocks_per_sm,
            spec.max_blocks_per_sm);
}

TEST(Occupancy, RegisterFileBoundaries) {
  DeviceSpec spec;
  // 32 regs x 1024 threads consume the register file exactly: one block.
  EXPECT_EQ(compute_occupancy(spec, 1024, 0, 32).blocks_per_sm, 1);
  // One more register per thread and nothing fits (the executor rejects
  // such launches as non-resident).
  EXPECT_EQ(compute_occupancy(spec, 1024, 0, 33).blocks_per_sm, 0);
}

TEST(Occupancy, ThreadCountBoundaries) {
  DeviceSpec spec;
  EXPECT_EQ(compute_occupancy(spec, spec.max_threads_per_block, 0, 0)
                .blocks_per_sm,
            1);
  EXPECT_THROW(compute_occupancy(spec, spec.max_threads_per_block + 1, 0, 0),
               core::CheckError);
  // A single-thread block still occupies one warp slot.
  const Occupancy tiny = compute_occupancy(spec, 1, 0, 0);
  EXPECT_EQ(tiny.warps_per_block, 1);
  EXPECT_EQ(tiny.blocks_per_sm, spec.max_blocks_per_sm);
}

TEST(Occupancy, RejectsOversizedBlocks) {
  DeviceSpec spec;
  EXPECT_THROW(compute_occupancy(spec, 2048, 0, 0), core::CheckError);
  EXPECT_THROW(compute_occupancy(spec, 0, 0, 0), core::CheckError);
  EXPECT_THROW(compute_occupancy(spec, 128, spec.shared_mem_per_sm + 1, 0),
               core::CheckError);
}

TEST(Occupancy, HugeRegisterUsageYieldsZeroBlocks) {
  DeviceSpec spec;
  const Occupancy occ = compute_occupancy(spec, 1024, 0, 64);
  EXPECT_EQ(occ.blocks_per_sm, 0);
}

TEST(DeviceSpec, CyclesToSecondsUsesShaderClock) {
  DeviceSpec spec;
  spec.clock_ghz = 2.0;
  EXPECT_DOUBLE_EQ(spec.cycles_to_seconds(2e9), 1.0);
}

}  // namespace
}  // namespace fdet::vgpu
