#include "serve/fleet.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/check.h"
#include "facegen/dataset.h"
#include "obs/metrics.h"
#include "train/boost.h"
#include "video/decoder.h"

namespace fdet::serve {
namespace {

/// Small trained cascade shared by the fleet tests (trained once).
const haar::Cascade& fleet_cascade() {
  static const haar::Cascade cascade = [] {
    const auto set = facegen::build_training_set(200, 30, 64, 2024);
    train::TrainOptions options;
    options.stage_sizes = {6, 10, 14};
    options.feature_pool = 300;
    options.negatives_per_stage = 250;
    options.stage_hit_target = 0.99;
    options.seed = 11;
    return train::train_cascade(set, options, "fleet-test").cascade;
  }();
  return cascade;
}

const ingest::H264FrameSource& fleet_source() {
  static const video::SyntheticTrailer trailer = [] {
    video::TrailerSpec spec;
    spec.title = "fleet-test";
    spec.width = 96;
    spec.height = 72;
    spec.frames = 12;
    spec.shot_frames = 6;
    spec.seed = 9;
    return video::SyntheticTrailer(spec);
  }();
  static const video::MockH264Decoder decoder(trailer);
  static const ingest::H264FrameSource source(decoder);
  return source;
}

FleetOptions generous_options() {
  FleetOptions options;
  options.devices = 2;
  options.deadline_ms = 500.0;  // far above the tiny-frame envelope
  return options;
}

/// Builds the standard test fleet: gold + best-effort tenants, three
/// streams each, all over the shared source at 20 fps.
void add_test_streams(FleetScheduler& fleet, int per_tenant = 3,
                      int frames = 10) {
  const int gold = fleet.add_tenant({"gold", QosClass::kGold, {}});
  const int effort =
      fleet.add_tenant({"best-effort", QosClass::kBestEffort, {}});
  for (int i = 0; i < per_tenant; ++i) {
    fleet.add_stream(gold, fleet_source(), 20.0, frames);
    fleet.add_stream(effort, fleet_source(), 20.0, frames);
  }
}

TEST(FleetScheduler, CleanRunServesEveryFrameDeterministically) {
  FleetScheduler fleet(vgpu::DeviceSpec{}, fleet_cascade(), {},
                       generous_options());
  add_test_streams(fleet);
  const FleetReport a = fleet.run();
  const FleetReport b = fleet.run();

  ASSERT_EQ(a.frames.size(), 60u);
  EXPECT_EQ(a.served, 60);
  EXPECT_EQ(a.dropped + a.failed + a.admission_rejected, 0);
  EXPECT_EQ(a.stranded, 0);
  EXPECT_EQ(a.failovers, 0);
  EXPECT_EQ(a.device_faults, 0);
  EXPECT_EQ(a.deadline_misses, 0);
  // Same-phase streams on the same device fuse into batches.
  EXPECT_GT(a.batches, 0);
  ASSERT_EQ(b.frames.size(), a.frames.size());
  for (std::size_t i = 0; i < a.frames.size(); ++i) {
    EXPECT_EQ(a.frames[i].status, b.frames[i].status);
    EXPECT_DOUBLE_EQ(a.frames[i].latency_ms, b.frames[i].latency_ms);
    ASSERT_EQ(a.frames[i].detections.size(), b.frames[i].detections.size());
  }
  // The (stream, index) lookup works and frames carry their identity.
  const FleetFrame* frame = a.frame(2, 5);
  ASSERT_NE(frame, nullptr);
  EXPECT_EQ(frame->stream, 2);
  EXPECT_EQ(frame->index, 5);
  EXPECT_EQ(a.frame(99, 0), nullptr);
}

TEST(FleetScheduler, FrameOrderIsPreservedPerStream) {
  FleetScheduler fleet(vgpu::DeviceSpec{}, fleet_cascade(), {},
                       generous_options());
  add_test_streams(fleet);
  const FleetReport report = fleet.run();

  std::map<int, double> last_completion;
  for (const FleetFrame& frame : report.frames) {
    if (frame.status != FrameStatus::kOk &&
        frame.status != FrameStatus::kDegraded) {
      continue;
    }
    const auto it = last_completion.find(frame.stream);
    if (it != last_completion.end()) {
      EXPECT_GE(frame.completion_s, it->second)
          << "stream " << frame.stream << " frame " << frame.index
          << " completed before its predecessor";
    }
    last_completion[frame.stream] = frame.completion_s;
  }
}

TEST(FleetScheduler, AdmissionControlRejectsWithTypedError) {
  obs::Registry registry;
  FleetScheduler fleet(vgpu::DeviceSpec{}, fleet_cascade(), {},
                       generous_options(), &registry);
  TenantSpec throttled{"throttled", QosClass::kSilver, {}};
  throttled.admission.rate_per_s = 2.0;  // stream runs at 20 fps
  throttled.admission.burst = 1.0;
  const int tenant = fleet.add_tenant(throttled);
  fleet.add_stream(tenant, fleet_source(), 20.0, 10);
  const FleetReport report = fleet.run();

  EXPECT_GT(report.admission_rejected, 0);
  EXPECT_EQ(report.admitted + report.admission_rejected, 10);
  EXPECT_EQ(report.stranded, 0);
  const TenantReport& tr = report.tenants[0];
  EXPECT_EQ(tr.admission_rejected, report.admission_rejected);
  int typed = 0;
  for (const FleetFrame& frame : report.frames) {
    if (frame.status != FrameStatus::kAdmissionRejected) {
      continue;
    }
    ++typed;
    ASSERT_TRUE(frame.error.has_value());
    EXPECT_EQ(frame.error->cls, ErrorClass::kRejected);
    EXPECT_EQ(frame.error->stage, "admission");
    EXPECT_TRUE(frame.detections.empty());
  }
  EXPECT_EQ(typed, report.admission_rejected);
  // The rejection reaches the metrics registry, labeled by tenant.
  bool exported = false;
  for (const auto& sample : registry.samples()) {
    if (sample.name != "serve.fleet.admission_rejects") {
      continue;
    }
    exported = true;
    EXPECT_DOUBLE_EQ(sample.value,
                     static_cast<double>(report.admission_rejected));
  }
  EXPECT_TRUE(exported);
}

TEST(FleetScheduler, DeviceLossFailsOverWithIdenticalDetections) {
  FleetScheduler fleet(vgpu::DeviceSpec{}, fleet_cascade(), {},
                       generous_options());
  add_test_streams(fleet);
  const FleetReport clean = fleet.run();
  // Drop device 0 mid-service of a known dispatch: both runs are
  // identical up to the loss instant, so the midpoint of a clean frame's
  // (arrival, completion) is guaranteed to tear in-flight work.
  const FleetFrame* victim = nullptr;
  for (const FleetFrame& f : clean.frames) {
    if (f.device == 0 && f.status == FrameStatus::kOk && f.index >= 3) {
      victim = &f;
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  DeviceFaultSpec spec;
  spec.kind = DeviceFaultKind::kDeviceLost;
  spec.device = 0;
  spec.start_s = 0.5 * (victim->arrival_s + victim->completion_s);
  spec.duration_s = 0.15;
  const DeviceFaultPlan plan(7, {spec});
  const FleetReport faulted = fleet.run(&plan);

  EXPECT_EQ(faulted.device_faults, 1);
  EXPECT_GT(faulted.failovers, 0);
  EXPECT_EQ(faulted.stranded, 0);
  EXPECT_EQ(faulted.failed, 0);
  EXPECT_EQ(clean.failovers, 0);
  ASSERT_EQ(faulted.frames.size(), clean.frames.size());
  int failed_over = 0;
  for (std::size_t i = 0; i < faulted.frames.size(); ++i) {
    const FleetFrame& f = faulted.frames[i];
    const FleetFrame& c = clean.frames[i];
    if (f.failed_over) {
      ++failed_over;
      // Failover re-dispatches solo: never batched across streams.
      EXPECT_EQ(f.batch_size, 1);
    }
    // Detection identity survives failover: both runs served everything
    // at full quality, so every frame must match byte for byte.
    if (f.status != FrameStatus::kOk || c.status != FrameStatus::kOk) {
      continue;
    }
    ASSERT_EQ(f.detections.size(), c.detections.size());
    for (std::size_t d = 0; d < f.detections.size(); ++d) {
      EXPECT_EQ(f.detections[d].box, c.detections[d].box);
      EXPECT_EQ(f.detections[d].score, c.detections[d].score);
      EXPECT_EQ(f.detections[d].neighbors, c.detections[d].neighbors);
      EXPECT_EQ(f.detections[d].scale_index, c.detections[d].scale_index);
    }
  }
  EXPECT_GT(failed_over, 0);
  // The lost device ends in probation or healthy, never stuck lost.
  EXPECT_NE(faulted.devices[0].final_state, DeviceState::kLost);
}

TEST(FleetScheduler, HangIsDeclaredLostByTheWatchdog) {
  FleetOptions options = generous_options();
  options.hang_watchdog_ms = 20.0;
  FleetScheduler fleet(vgpu::DeviceSpec{}, fleet_cascade(), {}, options);
  add_test_streams(fleet);
  // Hang long enough that the watchdog must fire first.
  const DeviceFaultPlan plan =
      DeviceFaultPlan::parse("device-hang@0:0.1+0.25", 7);
  const FleetReport report = fleet.run(&plan);

  EXPECT_EQ(report.device_faults, 1);
  EXPECT_EQ(report.watchdog_fires, 1);
  EXPECT_EQ(report.stranded, 0);
  EXPECT_NE(report.devices[0].final_state, DeviceState::kLost);
}

TEST(FleetScheduler, DeviceSlowInflatesServiceTime) {
  FleetScheduler fleet(vgpu::DeviceSpec{}, fleet_cascade(), {},
                       generous_options());
  add_test_streams(fleet);
  const FleetReport clean = fleet.run();
  const DeviceFaultPlan plan =
      DeviceFaultPlan::parse("device-slow@0:0+10*8", 7);
  const FleetReport slowed = fleet.run(&plan);

  EXPECT_EQ(slowed.stranded, 0);
  int slow_frames = 0;
  double clean_max = 0.0;
  double slowed_max = 0.0;
  for (std::size_t i = 0; i < slowed.frames.size(); ++i) {
    slow_frames += slowed.frames[i].fault_injected ? 1 : 0;
    clean_max = std::max(clean_max, clean.frames[i].latency_ms);
    slowed_max = std::max(slowed_max, slowed.frames[i].latency_ms);
  }
  EXPECT_GT(slow_frames, 0);
  EXPECT_GT(slowed_max, clean_max);
}

TEST(FleetScheduler, SheddingDrainsBestEffortBeforeGold) {
  FleetOptions options = generous_options();
  options.deadline_ms = 0.5;  // everything misses: sustained overload
  options.shed_cooldown_s = 0.0;
  FleetScheduler fleet(vgpu::DeviceSpec{}, fleet_cascade(), {}, options);
  const int gold = fleet.add_tenant({"gold", QosClass::kGold, {}});
  const int silver = fleet.add_tenant({"silver", QosClass::kSilver, {}});
  const int effort =
      fleet.add_tenant({"best-effort", QosClass::kBestEffort, {}});
  for (int i = 0; i < 2; ++i) {
    fleet.add_stream(gold, fleet_source(), 20.0, 8);
    fleet.add_stream(silver, fleet_source(), 20.0, 8);
    fleet.add_stream(effort, fleet_source(), 20.0, 8);
  }
  const FleetReport report = fleet.run();

  EXPECT_GT(report.shed_steps, 0);
  EXPECT_EQ(report.stranded, 0);
  // Shed ordering: lower classes always at least as degraded as higher.
  EXPECT_GE(report.tenants[2].max_shed_level,
            report.tenants[1].max_shed_level);
  EXPECT_GE(report.tenants[1].max_shed_level,
            report.tenants[0].max_shed_level);
  EXPECT_GT(report.tenants[2].max_shed_level, 0);
}

TEST(TokenBucketTest, RefillsAtRateAndCapsAtBurst) {
  AdmissionOptions options;
  options.rate_per_s = 2.0;
  options.burst = 2.0;
  TokenBucket bucket(options);
  EXPECT_TRUE(bucket.try_admit(0.0));   // burst token 1
  EXPECT_TRUE(bucket.try_admit(0.0));   // burst token 2
  EXPECT_FALSE(bucket.try_admit(0.0));  // empty
  EXPECT_FALSE(bucket.try_admit(0.25)); // refilled 0.5, below one token
  EXPECT_TRUE(bucket.try_admit(0.5));   // refilled to 1.0
  // Idle refill caps at burst: two tokens, not twenty.
  EXPECT_TRUE(bucket.try_admit(100.0));
  EXPECT_TRUE(bucket.try_admit(100.0));
  EXPECT_FALSE(bucket.try_admit(100.0));
  // Time never runs backwards for the bucket.
  EXPECT_FALSE(bucket.try_admit(99.0));
}

TEST(FleetParsing, TenantMixRoundTripsAndRejectsGarbage) {
  const auto mix = parse_tenant_mix("gold:2,silver:1,best-effort:5");
  ASSERT_EQ(mix.size(), 3u);
  EXPECT_EQ(mix[0].spec.cls, QosClass::kGold);
  EXPECT_EQ(mix[0].streams, 2);
  EXPECT_EQ(mix[1].spec.cls, QosClass::kSilver);
  EXPECT_EQ(mix[2].spec.cls, QosClass::kBestEffort);
  EXPECT_EQ(mix[2].streams, 5);
  for (const auto& entry : mix) {
    EXPECT_EQ(parse_qos_class(qos_class_name(entry.spec.cls)),
              entry.spec.cls);
  }
  EXPECT_THROW(parse_tenant_mix(""), core::CheckError);
  EXPECT_THROW(parse_tenant_mix("gold"), core::CheckError);
  EXPECT_THROW(parse_tenant_mix("platinum:2"), core::CheckError);
  EXPECT_THROW(parse_tenant_mix("gold:0"), core::CheckError);
  EXPECT_THROW(parse_tenant_mix("gold:x"), core::CheckError);
}

TEST(FleetScheduler, RejectsUnusableConfiguration) {
  FleetOptions no_devices = generous_options();
  no_devices.devices = 0;
  EXPECT_THROW(FleetScheduler(vgpu::DeviceSpec{}, fleet_cascade(), {},
                              no_devices),
               core::CheckError);
  FleetOptions no_deadline = generous_options();
  no_deadline.deadline_ms = 0.0;
  EXPECT_THROW(FleetScheduler(vgpu::DeviceSpec{}, fleet_cascade(), {},
                              no_deadline),
               core::CheckError);

  FleetScheduler fleet(vgpu::DeviceSpec{}, fleet_cascade(), {},
                       generous_options());
  EXPECT_THROW(fleet.add_stream(0, fleet_source(), 20.0, 4),
               core::CheckError);  // no such tenant
  const int tenant = fleet.add_tenant({"t", QosClass::kGold, {}});
  EXPECT_THROW(fleet.add_stream(tenant, fleet_source(), 0.0, 4),
               core::CheckError);  // fps
  EXPECT_THROW(fleet.add_stream(tenant, fleet_source(), 20.0, 99),
               core::CheckError);  // more frames than the source has
  EXPECT_THROW(fleet.run(), core::CheckError);  // no streams
  fleet.add_stream(tenant, fleet_source(), 20.0, 4);
  const DeviceFaultPlan plan =
      DeviceFaultPlan::parse("device-lost@7:1+1", 3);
  EXPECT_THROW(fleet.run(&plan), core::CheckError);  // no device 7
}

}  // namespace
}  // namespace fdet::serve
