#include "haar/encoding.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "haar/enumerate.h"
#include "haar/profile.h"

namespace fdet::haar {
namespace {

TEST(Encoding, RectRoundTripsEveryFeatureInTheEnumeration) {
  // Property: encode/decode is exact for every rectangle of every feature
  // of every family on a representative grid.
  for (const HaarType type :
       {HaarType::kEdge, HaarType::kLine, HaarType::kCenterSurround,
        HaarType::kDiagonal}) {
    for_each_feature(
        type, EnumerationGrid{.position_step = 2, .cell_step = 2},
        [](const HaarFeature& f) {
          const auto d = f.decompose();
          for (int i = 0; i < d.count; ++i) {
            const RectTerm& r = d.rects[static_cast<std::size_t>(i)];
            const RectTerm back = decode_rect(encode_rect(r));
            ASSERT_EQ(back.x, r.x);
            ASSERT_EQ(back.y, r.y);
            ASSERT_EQ(back.w, r.w);
            ASSERT_EQ(back.h, r.h);
            ASSERT_EQ(back.weight, r.weight);
          }
        });
  }
}

TEST(Encoding, RectUsesExactlyTwo16BitWords) {
  static_assert(sizeof(EncodedRect) == 4);
  const RectTerm r{23, 17, 8, 4, -9};
  const EncodedRect e = encode_rect(r);
  // Both halves carry payload for this rect.
  EXPECT_NE(e.lo, 0);
  EXPECT_NE(e.hi, 0);
}

TEST(Encoding, RejectsOutOfRangeRects) {
  EXPECT_THROW(encode_rect(RectTerm{32, 0, 1, 1, 1}), core::CheckError);
  EXPECT_THROW(encode_rect(RectTerm{0, 0, 0, 1, 1}), core::CheckError);
  EXPECT_THROW(encode_rect(RectTerm{0, 0, 1, 1, 5}), core::CheckError);
}

TEST(Encoding, ThresholdQuantizationErrorIsBounded) {
  core::Rng rng(21);
  for (int i = 0; i < 1000; ++i) {
    WeakClassifier wc;
    wc.feature = {HaarType::kEdge, false, 0, 0, 4, 4};
    wc.threshold = static_cast<float>(rng.uniform(-4e5, 4e5));
    wc.left_vote = static_cast<float>(rng.uniform(-2.0, 2.0));
    wc.right_vote = static_cast<float>(rng.uniform(-2.0, 2.0));
    const WeakClassifier back = decode_classifier(encode_classifier(wc));
    EXPECT_NEAR(back.threshold, wc.threshold, kThresholdScale / 2.0f + 1e-3f);
    EXPECT_NEAR(back.left_vote, wc.left_vote, 0.5f / kVoteScale + 1e-5f);
    EXPECT_NEAR(back.right_vote, wc.right_vote, 0.5f / kVoteScale + 1e-5f);
  }
}

TEST(Encoding, ConstantBankPreservesStructure) {
  const Cascade cascade =
      build_profile_cascade("bank", std::vector<int>{4, 7, 11}, 3);
  const ConstantBank bank = ConstantBank::build(cascade);
  ASSERT_EQ(bank.stages().size(), 3u);
  EXPECT_EQ(bank.stages()[0].first, 0u);
  EXPECT_EQ(bank.stages()[0].count, 4u);
  EXPECT_EQ(bank.stages()[1].first, 4u);
  EXPECT_EQ(bank.stages()[1].count, 7u);
  EXPECT_EQ(bank.stages()[2].first, 11u);
  EXPECT_EQ(bank.classifiers().size(), 22u);
}

TEST(Encoding, CompressionShrinksFootprintSubstantially) {
  const Cascade cascade =
      build_profile_cascade("size", opencv_frontal_profile(), 5);
  const ConstantBank bank = ConstantBank::build(cascade);
  EXPECT_LT(bank.bytes_compressed(), bank.bytes_raw() / 2);
}

TEST(Encoding, PaperCascadesFitConstantMemoryOnlyCompressed) {
  // The full OpenCV-profile cascade (2913 stumps) must fit the 64 KiB
  // constant memory in compressed form — the point of the re-encoding.
  const Cascade big =
      build_profile_cascade("opencv", opencv_frontal_profile(), 7);
  const ConstantBank bank = ConstantBank::build(big);
  EXPECT_TRUE(bank.fits_constant_memory(64 * 1024));
  EXPECT_FALSE(bank.bytes_raw() <= 64 * 1024);

  const Cascade compact =
      build_profile_cascade("ours", compact_profile(), 7);
  EXPECT_TRUE(
      ConstantBank::build(compact).fits_constant_memory(64 * 1024));
}

TEST(Encoding, DecodedCascadeKeepsStageGeometry) {
  const Cascade cascade =
      build_profile_cascade("geo", std::vector<int>{2, 3}, 9);
  const Cascade decoded = ConstantBank::build(cascade).decode();
  ASSERT_EQ(decoded.stage_count(), 2);
  EXPECT_EQ(decoded.stages()[0].classifiers.size(), 2u);
  EXPECT_EQ(decoded.stages()[1].classifiers.size(), 3u);
}

}  // namespace
}  // namespace fdet::haar
