// Cross-validation of the static traffic predictions (analyze/analyses.h)
// against the executor's measured PerfCounters. The prediction replicates
// the executor's slot-aligned dedup/bank/segment arithmetic from affine
// forms, so:
//   - when every slot is predictable (full participation, affine, data
//     independent) the prediction must EQUAL the measured counter;
//   - otherwise it must be a lower bound (skipped slots only add traffic).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analyze/analyses.h"
#include "analyze/capture.h"
#include "core/rng.h"
#include "detect/kernels.h"
#include "haar/encoding.h"
#include "haar/profile.h"
#include "img/image.h"
#include "integral/gpu.h"
#include "integral/integral.h"
#include "vgpu/kernel.h"

namespace fdet::analyze {
namespace {

const vgpu::DeviceSpec kSpec;

img::ImageU8 random_u8(int w, int h, std::uint64_t seed) {
  core::Rng rng(seed);
  img::ImageU8 im(w, h);
  for (auto& p : im.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return im;
}

img::ImageI32 random_i32(int w, int h, std::uint64_t seed) {
  core::Rng rng(seed);
  img::ImageI32 im(w, h);
  for (auto& p : im.pixels()) {
    p = rng.uniform_int(0, 255);
  }
  return im;
}

TEST(AnalyzeCrossval, TransposePredictionEqualsMeasuredCounters) {
  // 128x64 is a multiple of the 32x32 tile on both axes: every guard
  // passes, every slot has full participation and affine indices, so both
  // predictions are complete and must match the executor exactly —
  // including zero bank conflicts from the stride-33 tile padding.
  constexpr int kW = 128;
  constexpr int kH = 64;
  const img::ImageI32 input = random_i32(kW, kH, 7);
  img::ImageI32 output(kH, kW);
  const vgpu::LaunchCost measured =
      integral::transpose_gpu(kSpec, input, output);

  const std::vector<KernelIR> irs =
      capture_kernels([](std::uint64_t seed) {
        const img::ImageI32 in = random_i32(kW, kH, seed);
        img::ImageI32 out(kH, kW);
        integral::transpose_gpu(kSpec, in, out);
      });
  ASSERT_EQ(irs.size(), 1u);

  const PredictedTraffic traffic = predict_traffic(irs.front());
  EXPECT_TRUE(traffic.shared_complete);
  EXPECT_TRUE(traffic.global_complete);
  EXPECT_EQ(traffic.skipped_slots, 0);
  EXPECT_EQ(traffic.bank_conflicts, measured.counters.bank_conflicts);
  EXPECT_EQ(traffic.bank_conflicts, 0u);  // the padding idiom works
  EXPECT_EQ(traffic.global_transactions,
            measured.counters.global_transactions);
  EXPECT_GT(traffic.global_transactions, 0u);
}

TEST(AnalyzeCrossval, ScanRowsGlobalPredictionExactSharedLowerBound) {
  // Width 1024 = 256 threads x chunk 4: every load/store guard passes, so
  // the two global phases are fully predictable — transaction equality.
  // The Hillis-Steele tree phases are guarded (lane >= offset), partial
  // participation, so the conflict prediction is an incomplete lower
  // bound; the phase-1 chunk scan alone (full participation, words
  // 4*tid+i) already contributes degree-4 conflicts, making the bound
  // provably nonzero.
  constexpr int kW = 1024;
  constexpr int kH = 4;
  const img::ImageI32 input = random_i32(kW, kH, 11);
  img::ImageI32 output(kW, kH);
  const vgpu::LaunchCost measured =
      integral::scan_rows_gpu(kSpec, input, output);

  const std::vector<KernelIR> irs =
      capture_kernels([](std::uint64_t seed) {
        const img::ImageI32 in = random_i32(kW, kH, seed);
        img::ImageI32 out(kW, kH);
        integral::scan_rows_gpu(kSpec, in, out);
      });
  ASSERT_EQ(irs.size(), 1u);

  const PredictedTraffic traffic = predict_traffic(irs.front());
  EXPECT_TRUE(traffic.global_complete);
  EXPECT_EQ(traffic.global_transactions,
            measured.counters.global_transactions);
  EXPECT_GT(traffic.global_transactions, 0u);

  EXPECT_FALSE(traffic.shared_complete);
  EXPECT_GT(traffic.bank_conflicts, 0u);  // chunk-scan degree-4 conflicts
  EXPECT_LE(traffic.bank_conflicts, measured.counters.bank_conflicts);
}

TEST(AnalyzeCrossval, CascadePredictionsAreLowerBounds) {
  // The cascade kernel mixes border-guarded tile loads with data-dependent
  // feature fetches: predictions cannot be complete, but they must stay
  // at or below the measured counters.
  constexpr int kW = 64;
  constexpr int kH = 48;
  const haar::Cascade cascade = haar::build_profile_cascade(
      "crossval", std::vector<int>{6, 8}, /*seed=*/42);
  const haar::ConstantBank bank = haar::ConstantBank::build(cascade);

  const auto ii = integral::integral_cpu(random_u8(kW, kH, 13));
  detect::CascadeKernelOutput out;
  const vgpu::LaunchCost measured = detect::cascade_kernel(
      kSpec, bank, ii, out, detect::CascadeKernelOptions{}, "cascade");

  const std::vector<KernelIR> irs =
      capture_kernels([&bank](std::uint64_t seed) {
        const auto integral = integral::integral_cpu(random_u8(kW, kH, seed));
        detect::CascadeKernelOutput o;
        detect::cascade_kernel(kSpec, bank, integral,
                               o, detect::CascadeKernelOptions{}, "cascade");
      });
  ASSERT_EQ(irs.size(), 1u);

  const PredictedTraffic traffic = predict_traffic(irs.front());
  EXPECT_GT(traffic.skipped_slots, 0);
  EXPECT_LE(traffic.bank_conflicts, measured.counters.bank_conflicts);
  EXPECT_LE(traffic.global_transactions,
            measured.counters.global_transactions);
}

TEST(AnalyzeCrossval, SyntheticConflictKernelPredictsExactDegree) {
  // Stride-8 shared reads over one warp: lanes 0..31 hit words {0, 8, ...,
  // 248}; words map onto banks {0, 8, 16, 24}, eight distinct words each,
  // so the issue serializes at degree 8 = 7 extra passes (the executor
  // charges max-degree per slot issue). Fully predictable, so equality.
  const vgpu::KernelConfig config{.name = "stride8",
                                  .grid = {1, 1, 1},
                                  .block = {32, 1, 1},
                                  .shared_bytes = 32 * 8 * 4};
  const auto phase = [](const vgpu::ThreadCoord& t, vgpu::LaneCtx& ctx,
                        vgpu::SharedMem&) {
    ctx.shared_load(static_cast<std::size_t>(t.thread.x) * 8 * 4, 4);
  };
  const vgpu::LaunchCost measured = vgpu::execute_kernel(kSpec, config, phase);

  const std::vector<KernelIR> irs =
      capture_kernels([&config, &phase](std::uint64_t /*seed*/) {
        vgpu::execute_kernel(kSpec, config, phase);
      });
  ASSERT_EQ(irs.size(), 1u);

  const PredictedTraffic traffic = predict_traffic(irs.front());
  EXPECT_TRUE(traffic.shared_complete);
  EXPECT_EQ(traffic.bank_conflicts, measured.counters.bank_conflicts);
  EXPECT_EQ(traffic.bank_conflicts, 7u);
}

}  // namespace
}  // namespace fdet::analyze
