#include "detect/soft_cascade.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "facegen/dataset.h"
#include "integral/integral.h"
#include "train/boost.h"

namespace fdet::detect {
namespace {

struct SoftFixture {
  haar::Cascade staged;
  std::vector<integral::IntegralImage> face_iis;
  std::vector<const integral::IntegralImage*> face_ptrs;
};

const SoftFixture& fixture() {
  static const SoftFixture fx = [] {
    SoftFixture f;
    const auto set = facegen::build_training_set(200, 35, 64, 555);
    train::TrainOptions options;
    options.stage_sizes = {6, 10, 14};
    options.feature_pool = 300;
    options.negatives_per_stage = 250;
    options.stage_hit_target = 0.99;
    options.seed = 3;
    f.staged = train::train_cascade(set, options, "soft-base").cascade;
    core::Rng rng(777);
    for (int i = 0; i < 150; ++i) {
      const auto face = facegen::random_training_face(rng);
      f.face_iis.push_back(integral::integral_cpu(face.image));
    }
    for (const auto& ii : f.face_iis) {
      f.face_ptrs.push_back(&ii);
    }
    return f;
  }();
  return fx;
}

TEST(SoftCascade, FlattensEveryWeakClassifierInOrder) {
  const auto soft = build_soft_cascade(fixture().staged, fixture().face_ptrs);
  EXPECT_EQ(soft.classifier_count(), fixture().staged.classifier_count());
  // Order preserved: first entry equals the staged cascade's first stump.
  const auto& first_staged = fixture().staged.stages()[0].classifiers[0];
  EXPECT_EQ(soft.entries[0].classifier.feature, first_staged.feature);
}

TEST(SoftCascade, CalibrationFacesMostlySurvive) {
  const SoftCascadeOptions options{.hit_target = 0.95};
  const auto soft =
      build_soft_cascade(fixture().staged, fixture().face_ptrs, options);
  int accepted = 0;
  for (const auto* ii : fixture().face_ptrs) {
    accepted += soft.evaluate(*ii, 0, 0).accepted;
  }
  // At least the protected quantile survives (thresholds are exactly their
  // running minima minus a margin).
  EXPECT_GE(accepted,
            static_cast<int>(0.95 * fixture().face_ptrs.size()) - 1);
}

TEST(SoftCascade, RejectionThresholdsAreFiniteAfterCalibration) {
  const auto soft = build_soft_cascade(fixture().staged, fixture().face_ptrs);
  for (const auto& entry : soft.entries) {
    EXPECT_TRUE(std::isfinite(entry.rejection_threshold));
  }
}

TEST(SoftCascade, EarlyExitNeverAcceptsWhatFinalGateRejects) {
  const auto soft = build_soft_cascade(fixture().staged, fixture().face_ptrs);
  core::Rng rng(31);
  for (int i = 0; i < 60; ++i) {
    const auto bg = facegen::render_background(24, 24, rng);
    const auto ii = integral::integral_cpu(bg);
    const auto result = soft.evaluate(ii, 0, 0);
    if (result.accepted) {
      // Accepted by the soft cascade => its full score clears the staged
      // cascade's final stage threshold (enforced at build time).
      EXPECT_GE(result.score,
                fixture().staged.stages().back().threshold - 1e-4f);
    }
  }
}

TEST(SoftCascade, ReducesAverageEvaluationDepthOnBackgrounds) {
  const auto soft = build_soft_cascade(fixture().staged, fixture().face_ptrs);
  core::Rng rng(41);
  const auto scene = facegen::render_background(160, 120, rng);
  const auto ii = integral::integral_cpu(scene);
  const double soft_depth = average_depth(soft, ii, 2);
  const double staged_depth = average_depth(fixture().staged, ii, 2);
  EXPECT_LT(soft_depth, staged_depth);
  EXPECT_GE(soft_depth, 1.0);
}

TEST(SoftCascade, DepthIsBoundedByClassifierCount) {
  const auto soft = build_soft_cascade(fixture().staged, fixture().face_ptrs);
  core::Rng rng(43);
  const auto scene = facegen::render_background(64, 64, rng);
  const auto ii = integral::integral_cpu(scene);
  for (int y = 0; y + haar::kWindowSize <= 64; y += 8) {
    for (int x = 0; x + haar::kWindowSize <= 64; x += 8) {
      const auto r = soft.evaluate(ii, x, y);
      EXPECT_GE(r.depth, 1);
      EXPECT_LE(r.depth, soft.classifier_count());
      EXPECT_EQ(r.accepted, r.depth == soft.classifier_count() &&
                                r.score >= soft.entries.back().rejection_threshold);
    }
  }
}

TEST(SoftCascade, RejectsDegenerateInputs) {
  EXPECT_THROW(build_soft_cascade(haar::Cascade("empty"),
                                  fixture().face_ptrs),
               core::CheckError);
  EXPECT_THROW(build_soft_cascade(fixture().staged, {}), core::CheckError);
}

}  // namespace
}  // namespace fdet::detect
