#include "train/boost.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "facegen/background.h"
#include "integral/integral.h"
#include "train/smp_model.h"

namespace fdet::train {
namespace {

facegen::TrainingSet tiny_set() {
  return facegen::build_training_set(/*faces=*/200, /*backgrounds=*/30,
                                     /*background_size=*/64, /*seed=*/77);
}

TrainOptions tiny_options(BoostAlgorithm algorithm) {
  TrainOptions o;
  o.stage_sizes = {8, 12};
  o.algorithm = algorithm;
  o.feature_pool = 300;
  o.negatives_per_stage = 200;
  o.stage_hit_target = 0.98;
  o.seed = 5;
  return o;
}

TEST(TrainCascade, GentleBoostMeetsStageTargets) {
  const auto set = tiny_set();
  const TrainResult result =
      train_cascade(set, tiny_options(BoostAlgorithm::kGentleBoost), "tiny");
  ASSERT_EQ(result.cascade.stage_count(), 2);
  EXPECT_EQ(result.cascade.classifier_count(), 20);
  for (const StageStats& s : result.stages) {
    EXPECT_GE(s.hit_rate, 0.97);       // >= target minus quantile slack
    EXPECT_LT(s.false_positive_rate, 0.98);
    EXPECT_GT(s.negatives_mined, 0);
  }
}

TEST(TrainCascade, FpFloorPreventsOverTightStages) {
  const auto set = tiny_set();
  TrainOptions with_floor = tiny_options(BoostAlgorithm::kGentleBoost);
  with_floor.stage_fp_floor = 0.5;
  TrainOptions without_floor = with_floor;
  without_floor.stage_fp_floor = 0.0;
  const TrainResult floored = train_cascade(set, with_floor, "floored");
  const TrainResult tight = train_cascade(set, without_floor, "tight");
  // The floor keeps a substantial share of the stage's negatives alive
  // (tie-aware selection picks the realizable pass fraction closest to the
  // floor, so coarse score granularity can land below it); without the
  // floor the stage tightens to its hit target.
  EXPECT_GE(floored.stages[0].false_positive_rate, 0.25);
  EXPECT_LE(tight.stages[0].false_positive_rate,
            floored.stages[0].false_positive_rate + 1e-9);
}

TEST(TrainCascade, TrainedCascadeSeparatesHeldOutData) {
  const auto set = tiny_set();
  const TrainResult result =
      train_cascade(set, tiny_options(BoostAlgorithm::kGentleBoost), "sep");

  // Held-out faces and backgrounds (different seed).
  core::Rng rng(909);
  int face_accepts = 0;
  constexpr int kFaces = 60;
  for (int i = 0; i < kFaces; ++i) {
    const auto face = facegen::random_training_face(rng);
    const auto ii = integral::integral_cpu(face.image);
    face_accepts += result.cascade.evaluate(ii, 0, 0).accepted;
  }
  int bg_accepts = 0;
  constexpr int kBg = 200;
  for (int i = 0; i < kBg; ++i) {
    const auto bg = facegen::render_background(24, 24, rng);
    const auto ii = integral::integral_cpu(bg);
    bg_accepts += result.cascade.evaluate(ii, 0, 0).accepted;
  }
  // With per-stage fp floors (default 0.55) a 2-stage cascade is a coarse
  // filter: bg acceptance lands near floor^2..floor, and the separation
  // claim is relative.
  EXPECT_GT(face_accepts, kFaces * 7 / 10);
  EXPECT_LT(bg_accepts, kBg * 2 / 3);
  EXPECT_GT(face_accepts / static_cast<double>(kFaces),
            bg_accepts / static_cast<double>(kBg));
}

TEST(TrainCascade, AdaBoostAlsoTrains) {
  const auto set = tiny_set();
  const TrainResult result =
      train_cascade(set, tiny_options(BoostAlgorithm::kAdaBoost), "ada");
  ASSERT_EQ(result.cascade.stage_count(), 2);
  for (const StageStats& s : result.stages) {
    EXPECT_GE(s.hit_rate, 0.97);
  }
  // AdaBoost stumps carry symmetric ±alpha votes.
  const auto& wc = result.cascade.stages()[0].classifiers[0];
  EXPECT_NEAR(wc.left_vote, -wc.right_vote, 1e-5f);
}

TEST(TrainCascade, DeterministicForSameSeed) {
  const auto set = tiny_set();
  const auto opts = tiny_options(BoostAlgorithm::kGentleBoost);
  const TrainResult a = train_cascade(set, opts, "a");
  const TrainResult b = train_cascade(set, opts, "b");
  for (int s = 0; s < 2; ++s) {
    const auto& sa = a.cascade.stages()[static_cast<std::size_t>(s)];
    const auto& sb = b.cascade.stages()[static_cast<std::size_t>(s)];
    ASSERT_EQ(sa.classifiers.size(), sb.classifiers.size());
    EXPECT_FLOAT_EQ(sa.threshold, sb.threshold);
    for (std::size_t c = 0; c < sa.classifiers.size(); ++c) {
      EXPECT_EQ(sa.classifiers[c].feature, sb.classifiers[c].feature);
      EXPECT_FLOAT_EQ(sa.classifiers[c].threshold, sb.classifiers[c].threshold);
    }
  }
}

TEST(TrainCascade, RejectsEmptyConfigurations) {
  const auto set = tiny_set();
  TrainOptions o = tiny_options(BoostAlgorithm::kGentleBoost);
  o.stage_sizes.clear();
  EXPECT_THROW(train_cascade(set, o, "bad"), core::CheckError);
}

TEST(BoostingIteration, MeasuresPositiveTime) {
  const auto set = facegen::build_training_set(60, 10, 48, 3);
  const double seconds = boosting_iteration_seconds(set, 200, 1, 7);
  EXPECT_GT(seconds, 0.0);
  EXPECT_LT(seconds, 60.0);
}

TEST(SmpModel, ReproducesFig8Shape) {
  const SmpPlatform xeon = dual_xeon_e5472();
  const SmpPlatform i7 = core_i7_2600k();

  // ~3.5x speedup at 8 threads on both platforms (paper Sec. VI-A).
  EXPECT_NEAR(xeon.speedup(8), 3.5, 0.35);
  EXPECT_NEAR(i7.speedup(8), 3.5, 0.35);

  // The i7 is ~2x faster single-threaded.
  EXPECT_NEAR(xeon.iteration_seconds(1) / i7.iteration_seconds(1), 2.0, 0.2);

  // Monotone non-increasing time with threads.
  for (const SmpPlatform& p : {xeon, i7}) {
    double prev = 1e18;
    for (int t = 1; t <= 8; ++t) {
      const double s = p.iteration_seconds(t);
      EXPECT_LE(s, prev + 1e-12) << p.name << " threads " << t;
      prev = s;
    }
  }

  // Saturation: going 4 -> 8 threads helps less than 1 -> 2.
  const double early = xeon.speedup(2) / xeon.speedup(1);
  const double late = xeon.speedup(8) / xeon.speedup(4);
  EXPECT_GT(early, late);
}

TEST(SmpModel, RejectsZeroThreads) {
  EXPECT_THROW(dual_xeon_e5472().iteration_seconds(0), core::CheckError);
}

}  // namespace
}  // namespace fdet::train
