// I/O and conversion edge cases.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "img/io.h"
#include "img/nv12.h"

namespace fdet::img {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(IoEdge, ReadRejectsWrongMagic) {
  const std::string path = temp_path("fdet_bad_magic.pgm");
  std::ofstream(path) << "P2\n2 2\n255\nxxxx";
  EXPECT_THROW(read_pgm(path), core::CheckError);
  std::filesystem::remove(path);
}

TEST(IoEdge, ReadRejectsTruncatedPixels) {
  const std::string path = temp_path("fdet_truncated.pgm");
  std::ofstream(path, std::ios::binary) << "P5\n4 4\n255\nab";
  EXPECT_THROW(read_pgm(path), core::CheckError);
  std::filesystem::remove(path);
}

TEST(IoEdge, ReadRejectsMissingFile) {
  EXPECT_THROW(read_pgm("/nonexistent/dir/x.pgm"), core::CheckError);
}

TEST(IoEdge, WriteRejectsMismatchedPpmPlanes) {
  ImageU8 a(4, 4);
  ImageU8 b(5, 4);
  EXPECT_THROW(write_ppm(temp_path("fdet_mismatch.ppm"), a, a, b),
               core::CheckError);
}

TEST(Nv12Edge, ColoredChromaShiftsRgbChannels) {
  Nv12Frame frame(4, 4);
  frame.luma().fill(128);
  // Strong Cr (red difference) on every chroma sample.
  for (int y = 0; y < 2; ++y) {
    for (int x = 0; x < 4; x += 2) {
      frame.chroma()(x, y) = 128;      // Cb neutral
      frame.chroma()(x + 1, y) = 255;  // Cr max
    }
  }
  ImageU8 r;
  ImageU8 g;
  ImageU8 b;
  frame.to_rgb(r, g, b);
  EXPECT_GT(static_cast<int>(r(0, 0)), static_cast<int>(b(0, 0)) + 50);
  EXPECT_GT(static_cast<int>(r(0, 0)), static_cast<int>(g(0, 0)) + 50);
}

TEST(ImageEdge, EqualityComparesPixelsAndShape) {
  ImageU8 a(3, 2);
  ImageU8 b(3, 2);
  EXPECT_EQ(a, b);
  b(1, 1) = 9;
  EXPECT_NE(a, b);
  ImageU8 c(2, 3);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace fdet::img
