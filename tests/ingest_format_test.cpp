// Validating container parsers (ingest/raw.h, mjpeg.h, gif.h) plus the
// registry and quarantine: every IngestErrorKind each format can raise is
// provoked here by a handcrafted byte-level patch, and the split between
// eager structural validation (at open) and lazy payload validation (at
// decode) is pinned down — the serving layer relies on it to see
// mid-stream malformed bursts rather than a failed open.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "ingest/error.h"
#include "ingest/gif.h"
#include "ingest/mjpeg.h"
#include "ingest/quarantine.h"
#include "ingest/raw.h"
#include "ingest/registry.h"
#include "video/trailer.h"

namespace fdet::ingest {
namespace {

// Small synthetic footage shared by every case; geometry matches the
// fuzz harness so the wire offsets below are the same ones the committed
// corpus patches (tools/fdet_fuzz.cpp --write-corpus).
video::SyntheticTrailer test_trailer() {
  video::TrailerSpec spec;
  spec.title = "format-test";
  spec.width = 64;
  spec.height = 48;
  spec.frames = 4;
  spec.fps = 24.0;
  spec.shot_frames = 2;
  spec.seed = 0xf00d;
  return video::SyntheticTrailer(spec);
}

std::string stream_of(Format format) {
  return encode_stream(format, test_trailer());
}

std::string patch(std::string bytes, std::size_t offset, char value) {
  bytes.at(offset) = value;
  return bytes;
}

std::string patch_u32(std::string bytes, std::size_t offset,
                      std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    bytes.at(offset + static_cast<std::size_t>(i)) =
        static_cast<char>((value >> (8 * i)) & 0xff);
  }
  return bytes;
}

IngestErrorKind open_rejects(std::string bytes) {
  try {
    open_stream(std::move(bytes));
  } catch (const IngestError& error) {
    return error.kind();
  }
  ADD_FAILURE() << "stream unexpectedly opened clean";
  return IngestErrorKind::kUnsupported;
}

// ---- shared header validation (same 20-byte layout in all formats) ----

class SharedHeader : public ::testing::TestWithParam<Format> {};

TEST_P(SharedHeader, CorruptMagicIsBadMagic) {
  EXPECT_EQ(open_rejects(patch(stream_of(GetParam()), 0, 'Z')),
            IngestErrorKind::kBadMagic);
}

TEST_P(SharedHeader, UnknownVersionIsBadVersion) {
  EXPECT_EQ(open_rejects(patch(stream_of(GetParam()), 3, '9')),
            IngestErrorKind::kBadVersion);
}

TEST_P(SharedHeader, OddWidthIsDimensionOverflow) {
  EXPECT_EQ(open_rejects(patch_u32(stream_of(GetParam()), 4, 63)),
            IngestErrorKind::kDimensionOverflow);
}

TEST_P(SharedHeader, AboveCapWidthIsDimensionOverflowBeforeAllocation) {
  // 2^30 pixels wide: a parser that allocated from the header would try
  // to reserve gigabytes here. The cap check must come first.
  EXPECT_EQ(open_rejects(patch_u32(stream_of(GetParam()), 4, 1u << 30)),
            IngestErrorKind::kDimensionOverflow);
}

TEST_P(SharedHeader, AbsurdFrameCountIsTyped) {
  EXPECT_EQ(open_rejects(patch_u32(stream_of(GetParam()), 12, 1u << 30)),
            IngestErrorKind::kAbsurdMetadata);
}

TEST_P(SharedHeader, TruncatedTailIsTyped) {
  std::string bytes = stream_of(GetParam());
  bytes.resize(bytes.size() - 7);
  EXPECT_EQ(open_rejects(std::move(bytes)), IngestErrorKind::kTruncated);
}

TEST_P(SharedHeader, TrailingGarbageIsTyped) {
  EXPECT_EQ(open_rejects(stream_of(GetParam()) + "EXTRA"),
            IngestErrorKind::kTrailingGarbage);
}

INSTANTIATE_TEST_SUITE_P(AllFormats, SharedHeader,
                         ::testing::ValuesIn(kAllFormats),
                         [](const auto& info) {
                           return std::string(format_name(info.param));
                         });

// ---- per-format payload validation (lazy, at decode) ----

TEST(RawFormat, FlippedPayloadByteOpensCleanThenFailsChecksumAtDecode) {
  // Frame 0 payload starts at 24 (20-byte header + u32 crc). Structural
  // validation cannot see the flip; the per-frame CRC at decode must.
  std::string bytes = stream_of(Format::kRaw);
  bytes[24 + 100] = static_cast<char>(bytes[24 + 100] ^ 0x5a);
  const auto source = open_stream(std::move(bytes));  // eager checks all pass
  try {
    source->decode(0);
    FAIL() << "expected IngestError";
  } catch (const IngestError& error) {
    EXPECT_EQ(error.kind(), IngestErrorKind::kChecksumMismatch);
    EXPECT_EQ(error.format(), "raw");
  }
  // Other frames are untouched and still decode.
  EXPECT_NO_THROW(source->decode(1));
}

TEST(MjpegFormat, ZeroRleCountOpensCleanThenFailsPlaneSizeAtDecode) {
  // Frame 0 RLE starts at 26 (header + SOI + u32 rle_len); a zero count
  // byte can never expand to the declared plane sizes.
  const auto source =
      open_stream(patch(stream_of(Format::kMjpeg), 26, '\0'));
  try {
    source->decode(0);
    FAIL() << "expected IngestError";
  } catch (const IngestError& error) {
    EXPECT_EQ(error.kind(), IngestErrorKind::kPlaneSizeMismatch);
    EXPECT_EQ(error.format(), "mjpeg");
  }
  EXPECT_NO_THROW(source->decode(1));
}

TEST(MjpegFormat, RleLengthBeyondWorstCaseBoundIsAbsurdMetadata) {
  // rle_len is capped at 2x the plane total (the worst-case RLE size);
  // a declared length past that is rejected before any buffer work.
  EXPECT_EQ(open_rejects(patch_u32(stream_of(Format::kMjpeg), 22, 1u << 28)),
            IngestErrorKind::kAbsurdMetadata);
}

TEST(GifFormat, OutOfPaletteIndexOpensCleanThenFailsAtDecode) {
  // Keyframe pixels start at 89 (header + u8 palette_size + 64-entry
  // palette + u32 count); the encoder's palette has 64 levels, so 0xff
  // indexes far past it.
  const auto source =
      open_stream(patch(stream_of(Format::kGif), 89 + 5, '\xff'));
  try {
    source->decode(0);
    FAIL() << "expected IngestError";
  } catch (const IngestError& error) {
    EXPECT_EQ(error.kind(), IngestErrorKind::kPaletteOverflow);
    EXPECT_EQ(error.format(), "gif");
  }
}

TEST(GifFormat, DeltaRectEscapingCanvasIsRejectedAtOpen) {
  // The first delta frame's sub-rect header follows the keyframe's
  // 64x48 indices; forcing its x coordinate far right pushes the rect
  // outside the canvas.
  EXPECT_EQ(open_rejects(patch(stream_of(Format::kGif), 89 + 64 * 48,
                               '\xff')),
            IngestErrorKind::kBadSubRect);
}

TEST(GifFormat, EmptyPaletteIsAbsurdMetadata) {
  EXPECT_EQ(open_rejects(patch(stream_of(Format::kGif), 20, '\0')),
            IngestErrorKind::kAbsurdMetadata);
}

// ---- registry ----

TEST(Registry, FormatNamesRoundTrip) {
  for (const Format format : kAllFormats) {
    EXPECT_EQ(parse_format(format_name(format)), format);
  }
}

TEST(Registry, UnknownFormatNameListsTheKnownOnes) {
  try {
    parse_format("avi");
    FAIL() << "expected IngestError";
  } catch (const IngestError& error) {
    EXPECT_EQ(error.kind(), IngestErrorKind::kUnsupported);
    const std::string what = error.what();
    EXPECT_NE(what.find("raw"), std::string::npos) << what;
    EXPECT_NE(what.find("mjpeg"), std::string::npos) << what;
    EXPECT_NE(what.find("gif"), std::string::npos) << what;
  }
}

TEST(Registry, SniffingRejectsUnclaimedMagic) {
  EXPECT_EQ(open_rejects("RIFFxxxxWAVE"), IngestErrorKind::kBadMagic);
  EXPECT_EQ(open_rejects(""), IngestErrorKind::kBadMagic);
}

TEST(Registry, SniffingDispatchesEachFormatToItsParser) {
  for (const Format format : kAllFormats) {
    const auto source = open_stream(stream_of(format));
    EXPECT_EQ(source->info().format, format_name(format));
    EXPECT_EQ(source->frame_count(), 4);
  }
}

// ---- quarantine ----

TEST(Quarantine, RecordsRejectionAndRethrowsTyped) {
  StreamQuarantine quarantine;
  EXPECT_THROW(
      quarantine.open_or_quarantine(patch(stream_of(Format::kRaw), 0, 'Z'),
                                    "cam-3"),
      IngestError);
  ASSERT_EQ(quarantine.records().size(), 1u);
  const QuarantineRecord& record = quarantine.records().front();
  EXPECT_EQ(record.name, "cam-3");
  EXPECT_EQ(record.kind, IngestErrorKind::kBadMagic);
  EXPECT_GT(record.byte_count, 0u);
  EXPECT_TRUE(record.dump_path.empty());  // no dump dir configured
  EXPECT_EQ(quarantine.total_rejected(), 1u);
}

TEST(Quarantine, CleanStreamPassesThroughUnrecorded) {
  StreamQuarantine quarantine;
  const auto source =
      quarantine.open_or_quarantine(stream_of(Format::kMjpeg), "ok");
  EXPECT_EQ(source->info().format, "mjpeg");
  EXPECT_TRUE(quarantine.records().empty());
}

TEST(Quarantine, DumpsRejectedBytesForTriage) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "fdet_ingest_quarantine").string();
  fs::remove_all(dir);
  fs::create_directories(dir);

  StreamQuarantine quarantine(dir);
  const std::string bytes = patch(stream_of(Format::kGif), 3, '9');
  EXPECT_THROW(quarantine.open_or_quarantine(bytes, "feed/7"), IngestError);
  ASSERT_EQ(quarantine.records().size(), 1u);
  const std::string& dump = quarantine.records().front().dump_path;
  ASSERT_FALSE(dump.empty());
  EXPECT_TRUE(fs::exists(dump)) << dump;
  EXPECT_EQ(fs::file_size(dump), bytes.size());
  fs::remove_all(dir);
}

TEST(Quarantine, StoreStaysBoundedUnderFlood) {
  StreamQuarantine quarantine("", /*max_records=*/3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_THROW(
        quarantine.open_or_quarantine(patch(stream_of(Format::kRaw), 0, 'Z'),
                                      "flood-" + std::to_string(i)),
        IngestError);
  }
  EXPECT_EQ(quarantine.records().size(), 3u);
  EXPECT_EQ(quarantine.total_rejected(), 10u);
  // Oldest dropped first: the survivors are the three newest.
  EXPECT_EQ(quarantine.records().front().name, "flood-7");
  EXPECT_EQ(quarantine.records().back().name, "flood-9");
}

}  // namespace
}  // namespace fdet::ingest
