#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <vector>

#include "core/check.h"
#include "core/cli.h"
#include "core/stopwatch.h"
#include "core/table.h"
#include "core/thread_pool.h"

namespace fdet::core {
namespace {

TEST(Check, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(FDET_CHECK(1 + 1 == 2) << "never evaluated");
}

TEST(Check, FailingConditionThrowsWithMessage) {
  try {
    FDET_CHECK(false) << "context " << 42;
    FAIL() << "expected CheckError";
  } catch (const CheckError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("context 42"), std::string::npos);
    EXPECT_NE(what.find("false"), std::string::npos);
  }
}

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1);
    }
  });
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(10,
                        [](std::size_t begin, std::size_t) {
                          if (begin == 0) {
                            throw std::runtime_error("boom");
                          }
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelForHandlesEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Stopwatch, MeasuresNonNegativeMonotonicTime) {
  Stopwatch sw;
  const double t0 = sw.elapsed_seconds();
  const double t1 = sw.elapsed_seconds();
  EXPECT_GE(t0, 0.0);
  EXPECT_GE(t1, t0);
}

TEST(Stopwatch, IsBackedByASteadyClock) {
  // Recorded bench samples feed the regression gate; a wall-clock-backed
  // stopwatch would corrupt them on NTP steps. The static_assert in
  // stopwatch.h enforces this at compile time — here we pin the runtime
  // behavior: reset() restarts from zero and time never runs backwards
  // across many rapid readings.
  Stopwatch sw;
  double last = sw.elapsed_seconds();
  for (int i = 0; i < 1000; ++i) {
    const double now = sw.elapsed_seconds();
    ASSERT_GE(now, last);
    last = now;
  }
  sw.reset();
  EXPECT_LE(sw.elapsed_seconds(), last + 1.0);
}

TEST(Cli, ParsesTypedFlagsInBothForms) {
  Cli cli("test");
  int frames = 8;
  double scale = 1.25;
  bool verbose = false;
  std::string name = "default";
  cli.flag("frames", frames, "");
  cli.flag("scale", scale, "");
  cli.flag("verbose", verbose, "");
  cli.flag("name", name, "");

  const char* argv[] = {"test", "--frames=16", "--scale", "2.5",
                        "--verbose", "--name=abc"};
  ASSERT_TRUE(cli.parse(6, const_cast<char**>(argv)));
  EXPECT_EQ(frames, 16);
  EXPECT_DOUBLE_EQ(scale, 2.5);
  EXPECT_TRUE(verbose);
  EXPECT_EQ(name, "abc");
}

TEST(Cli, RejectsUnknownFlag) {
  Cli cli("test");
  const char* argv[] = {"test", "--nope=1"};
  EXPECT_FALSE(cli.parse(2, const_cast<char**>(argv)));
}

TEST(Cli, RejectsMalformedValue) {
  Cli cli("test");
  int frames = 8;
  cli.flag("frames", frames, "");
  const char* argv[] = {"test", "--frames=abc"};
  EXPECT_FALSE(cli.parse(2, const_cast<char**>(argv)));
}

TEST(Cli, IgnoresBenchmarkFlags) {
  Cli cli("test");
  const char* argv[] = {"test", "--benchmark_filter=all"};
  EXPECT_TRUE(cli.parse(2, const_cast<char**>(argv)));
}

TEST(Cli, UnknownFlagDiagnosticNamesTokenAndSuggestsClosest) {
  Cli cli("test");
  int frames = 8;
  double scale = 1.25;
  cli.flag("frames", frames, "");
  cli.flag("scale", scale, "");
  const char* argv[] = {"test", "--frmaes=16"};
  ASSERT_FALSE(cli.parse(2, const_cast<char**>(argv)));
  EXPECT_NE(cli.last_error().find("--frmaes"), std::string::npos);
  EXPECT_NE(cli.last_error().find("did you mean '--frames'"),
            std::string::npos);
}

TEST(Cli, UnknownFlagWithoutACloseMatchOffersNoSuggestion) {
  Cli cli("test");
  int frames = 8;
  cli.flag("frames", frames, "");
  const char* argv[] = {"test", "--quux=1"};
  ASSERT_FALSE(cli.parse(2, const_cast<char**>(argv)));
  EXPECT_NE(cli.last_error().find("--quux"), std::string::npos);
  EXPECT_EQ(cli.last_error().find("did you mean"), std::string::npos);
}

TEST(Cli, BadValueDiagnosticNamesTokenAndExpectedType) {
  Cli cli("test");
  int frames = 8;
  cli.flag("frames", frames, "");
  const char* argv[] = {"test", "--frames=abc"};
  ASSERT_FALSE(cli.parse(2, const_cast<char**>(argv)));
  EXPECT_NE(cli.last_error().find("'abc'"), std::string::npos);
  EXPECT_NE(cli.last_error().find("expected int"), std::string::npos);
  EXPECT_EQ(frames, 8);  // value untouched on failure
}

TEST(Cli, MissingValueDiagnosticShowsBothAcceptedForms) {
  Cli cli("test");
  double scale = 1.25;
  cli.flag("scale", scale, "");
  const char* argv[] = {"test", "--scale"};
  ASSERT_FALSE(cli.parse(2, const_cast<char**>(argv)));
  EXPECT_NE(cli.last_error().find("needs a double value"), std::string::npos);
  EXPECT_NE(cli.last_error().find("--scale=<double>"), std::string::npos);
  // A flag followed by another flag is also a missing value, not a value.
  const char* argv2[] = {"test", "--scale", "--other"};
  ASSERT_FALSE(cli.parse(3, const_cast<char**>(argv2)));
  EXPECT_NE(cli.last_error().find("needs a double value"), std::string::npos);
}

TEST(Cli, LastErrorClearsOnASubsequentSuccessfulParse) {
  Cli cli("test");
  int frames = 8;
  cli.flag("frames", frames, "");
  const char* bad[] = {"test", "--frames=abc"};
  ASSERT_FALSE(cli.parse(2, const_cast<char**>(bad)));
  EXPECT_FALSE(cli.last_error().empty());
  const char* good[] = {"test", "--frames=12"};
  ASSERT_TRUE(cli.parse(2, const_cast<char**>(good)));
  EXPECT_TRUE(cli.last_error().empty());
  EXPECT_EQ(frames, 12);
}

TEST(Cli, PositionalArgumentDiagnosticNamesTheToken) {
  Cli cli("test");
  const char* argv[] = {"test", "stray"};
  ASSERT_FALSE(cli.parse(2, const_cast<char**>(argv)));
  EXPECT_NE(cli.last_error().find("'stray'"), std::string::npos);
}

TEST(Table, PrintsAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1.00"});
  table.add_row({"b", "22.50"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22.50"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), CheckError);
}

TEST(Table, MarkdownRenderingEscapesPipes) {
  Table table({"metric", "value"});
  table.add_row({"a|b", "1.5"});
  std::ostringstream out;
  table.print_markdown(out);
  EXPECT_EQ(out.str(), "| metric | value |\n|---|---|\n| a\\|b | 1.5 |\n");
}

TEST(Table, NumFormatsFixedDigits) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

}  // namespace
}  // namespace fdet::core
