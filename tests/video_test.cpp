#include <gtest/gtest.h>

#include <set>

#include "core/check.h"
#include "video/decoder.h"
#include "video/trailer.h"

namespace fdet::video {
namespace {

TrailerSpec small_spec(double density = 2.0) {
  TrailerSpec spec;
  spec.title = "test";
  spec.width = 320;
  spec.height = 240;
  spec.frames = 48;
  spec.shot_frames = 16;
  spec.face_density = density;
  spec.seed = 99;
  return spec;
}

TEST(Trailer, Table2PresetsMatchThePaper) {
  const auto specs = table2_trailers(120);
  ASSERT_EQ(specs.size(), 10u);
  std::set<std::string> titles;
  for (const auto& spec : specs) {
    titles.insert(spec.title);
    EXPECT_EQ(spec.width, 1920);
    EXPECT_EQ(spec.height, 1080);
    EXPECT_EQ(spec.frames, 120);
    EXPECT_DOUBLE_EQ(spec.fps, 24.0);
  }
  EXPECT_EQ(titles.size(), 10u);  // distinct titles
  EXPECT_TRUE(titles.count("50/50"));
  EXPECT_TRUE(titles.count("What To Expect When You're Expecting"));
}

TEST(Trailer, RendersDeterministically) {
  const SyntheticTrailer a(small_spec());
  const SyntheticTrailer b(small_spec());
  EXPECT_EQ(a.render_luma(7), b.render_luma(7));
  EXPECT_EQ(a.render_luma(30), b.render_luma(30));
}

TEST(Trailer, ShotsPartitionTheFrames) {
  const SyntheticTrailer trailer(small_spec());
  EXPECT_EQ(trailer.shot_count(), 3);
  EXPECT_EQ(trailer.shot_of(0), 0);
  EXPECT_EQ(trailer.shot_of(15), 0);
  EXPECT_EQ(trailer.shot_of(16), 1);
  EXPECT_EQ(trailer.shot_of(47), 2);
  EXPECT_THROW(trailer.shot_of(48), core::CheckError);
  EXPECT_THROW(trailer.shot_of(-1), core::CheckError);
}

TEST(Trailer, BackgroundChangesAcrossShotsNotWithin) {
  TrailerSpec spec = small_spec(0.0);  // no faces: pure background
  const SyntheticTrailer trailer(spec);
  EXPECT_EQ(trailer.render_luma(0), trailer.render_luma(10));
  EXPECT_NE(trailer.render_luma(0), trailer.render_luma(20));
}

TEST(Trailer, GroundTruthBoxesStayInsideFrame) {
  const SyntheticTrailer trailer(small_spec(4.0));
  for (int f = 0; f < 48; f += 5) {
    for (const FaceGt& face : trailer.ground_truth(f)) {
      EXPECT_GE(face.box.x, 0);
      EXPECT_GE(face.box.y, 0);
      EXPECT_LE(face.box.right(), 320);
      EXPECT_LE(face.box.bottom(), 240);
      EXPECT_GE(face.box.w, 36);
      // Eyes inside the box.
      EXPECT_GE(face.left_eye_x, face.box.x);
      EXPECT_LE(face.right_eye_x, face.box.right());
    }
  }
}

TEST(Trailer, FacesActuallyAppearInPixels) {
  // A face's eye pixel should be darker than its cheek pixel in the frame.
  const SyntheticTrailer trailer(small_spec(3.0));
  int checked = 0;
  for (int f = 0; f < 48 && checked < 3; f += 3) {
    const img::ImageU8 frame = trailer.render_luma(f);
    for (const FaceGt& face : trailer.ground_truth(f)) {
      const int ex = static_cast<int>(face.left_eye_x);
      const int ey = static_cast<int>(face.left_eye_y);
      const int cheek_y = ey + face.box.h / 4;
      if (!frame.contains(ex, cheek_y)) {
        continue;
      }
      // Averaged 3x3 to be robust to noise.
      const auto avg = [&frame](int cx, int cy) {
        int acc = 0;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            acc += frame(cx + dx, cy + dy);
          }
        }
        return acc / 9;
      };
      EXPECT_LT(avg(ex, ey), avg(ex, cheek_y) + 40);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(Trailer, TracksMoveBetweenFrames) {
  const SyntheticTrailer trailer(small_spec(3.0));
  const auto gt0 = trailer.ground_truth(0);
  const auto gt10 = trailer.ground_truth(10);
  ASSERT_EQ(gt0.size(), gt10.size());
  bool moved = false;
  for (std::size_t i = 0; i < gt0.size(); ++i) {
    EXPECT_EQ(gt0[i].track_id, gt10[i].track_id);
    moved |= (gt0[i].box.x != gt10[i].box.x || gt0[i].box.y != gt10[i].box.y);
  }
  if (!gt0.empty()) {
    EXPECT_TRUE(moved);
  }
}

TEST(Trailer, DensityControlsFaceCount) {
  const SyntheticTrailer sparse(small_spec(0.5));
  const SyntheticTrailer dense(small_spec(4.5));
  int sparse_faces = 0;
  int dense_faces = 0;
  for (int f = 0; f < 48; f += 16) {
    sparse_faces += static_cast<int>(sparse.ground_truth(f).size());
    dense_faces += static_cast<int>(dense.ground_truth(f).size());
  }
  EXPECT_GT(dense_faces, sparse_faces);
}

TEST(Decoder, EmitsNv12WithMatchingLuma) {
  const SyntheticTrailer trailer(small_spec());
  const MockH264Decoder decoder(trailer);
  const DecodedFrame frame = decoder.decode(5);
  EXPECT_EQ(frame.index, 5);
  EXPECT_EQ(frame.frame.luma(), trailer.render_luma(5));
  EXPECT_EQ(frame.frame.width(), 320);
  EXPECT_EQ(frame.ground_truth.size(), trailer.ground_truth(5).size());
}

TEST(Decoder, LatencyMatchesPaperEnvelopeAt1080p) {
  TrailerSpec spec = small_spec();
  spec.width = 1920;
  spec.height = 1080;
  spec.frames = 64;
  spec.face_density = 0.0;
  const SyntheticTrailer trailer(spec);
  const MockH264Decoder decoder(trailer);
  for (int f = 0; f < 64; ++f) {
    const double ms = decoder.decode_latency_ms(f);
    EXPECT_GE(ms, 8.0);
    EXPECT_LE(ms, 10.0);
  }
}

TEST(Decoder, LatencyScalesWithResolution) {
  const SyntheticTrailer small(small_spec(0.0));
  const MockH264Decoder decoder(small);
  // 320x240 is ~27x fewer pixels than 1080p.
  EXPECT_LT(decoder.decode_latency_ms(0), 1.0);
}

TEST(Decoder, RejectsOutOfRangeFrames) {
  const SyntheticTrailer trailer(small_spec());
  const MockH264Decoder decoder(trailer);
  EXPECT_THROW(decoder.decode(48), core::CheckError);
  EXPECT_THROW(decoder.decode(-1), core::CheckError);
}

}  // namespace
}  // namespace fdet::video
