#include "integral/integral.h"

#include <gtest/gtest.h>

#include "core/check.h"
#include "core/rng.h"
#include "integral/cpu_model.h"
#include "integral/gpu.h"

namespace fdet::integral {
namespace {

img::ImageU8 random_image(int w, int h, std::uint64_t seed) {
  core::Rng rng(seed);
  img::ImageU8 im(w, h);
  for (auto& p : im.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return im;
}

std::int64_t brute_sum(const img::ImageU8& im, int x0, int y0, int x1, int y1) {
  std::int64_t acc = 0;
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      acc += im(x, y);
    }
  }
  return acc;
}

TEST(IntegralNaive, MatchesBruteForceRectangles) {
  const img::ImageU8 im = random_image(17, 13, 1);
  const IntegralImage ii = integral_naive(im);
  core::Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    const int x0 = rng.uniform_int(0, 16);
    const int x1 = rng.uniform_int(x0, 17);
    const int y0 = rng.uniform_int(0, 12);
    const int y1 = rng.uniform_int(y0, 13);
    EXPECT_EQ(ii.sum(x0, y0, x1, y1), brute_sum(im, x0, y0, x1, y1));
  }
}

TEST(IntegralNaive, FullImageSumAndEmptyRect) {
  const img::ImageU8 im = random_image(9, 9, 3);
  const IntegralImage ii = integral_naive(im);
  EXPECT_EQ(ii.sum(0, 0, 9, 9), brute_sum(im, 0, 0, 9, 9));
  EXPECT_EQ(ii.sum(4, 4, 4, 4), 0);
  EXPECT_EQ(ii.sum(0, 3, 9, 3), 0);
}

TEST(IntegralCpu, MatchesNaiveOnRandomImages) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const int w = 5 + static_cast<int>(seed) * 13;
    const int h = 7 + static_cast<int>(seed) * 9;
    const img::ImageU8 im = random_image(w, h, seed);
    EXPECT_EQ(integral_cpu(im).table(), integral_naive(im).table())
        << "seed " << seed;
  }
}

TEST(IntegralCpu, HandlesSinglePixelAndSingleRow) {
  img::ImageU8 one(1, 1);
  one(0, 0) = 77;
  EXPECT_EQ(integral_cpu(one).sum(0, 0, 1, 1), 77);

  img::ImageU8 row(5, 1);
  for (int x = 0; x < 5; ++x) {
    row(x, 0) = static_cast<std::uint8_t>(x + 1);
  }
  const IntegralImage ii = integral_cpu(row);
  EXPECT_EQ(ii.sum(0, 0, 5, 1), 15);
  EXPECT_EQ(ii.sum(2, 0, 4, 1), 3 + 4);
}

TEST(IntegralRange, RejectsOversizedImages) {
  // 4000 x 4000 x 255 overflows int32.
  img::ImageU8 big(4000, 4000);
  EXPECT_THROW(check_integral_range(big), core::CheckError);
  img::ImageU8 hd(1920, 1080);
  EXPECT_NO_THROW(check_integral_range(hd));
}

TEST(RectSumApi, MatchesCoordinateApi) {
  const img::ImageU8 im = random_image(12, 12, 4);
  const IntegralImage ii = integral_naive(im);
  const img::Rect r{2, 3, 5, 4};
  EXPECT_EQ(ii.sum(r), ii.sum(2, 3, 7, 7));
}

class GpuScanParam : public ::testing::TestWithParam<int> {};

TEST_P(GpuScanParam, MatchesSerialPrefixSumAtAnyWidth) {
  const int w = GetParam();
  const int h = 3;
  const vgpu::DeviceSpec spec;
  core::Rng rng(static_cast<std::uint64_t>(w));
  img::ImageI32 in(w, h);
  for (auto& p : in.pixels()) {
    p = rng.uniform_int(-50, 50);
  }
  img::ImageI32 out(w, h);
  scan_rows_gpu(spec, in, out);
  for (int y = 0; y < h; ++y) {
    std::int32_t acc = 0;
    for (int x = 0; x < w; ++x) {
      acc += in(x, y);
      ASSERT_EQ(out(x, y), acc) << "x=" << x << " y=" << y << " w=" << w;
    }
  }
}

// Widths around the 256-thread / chunking boundaries.
INSTANTIATE_TEST_SUITE_P(Widths, GpuScanParam,
                         ::testing::Values(1, 7, 255, 256, 257, 511, 512, 513,
                                           1000, 1920));

class GpuTransposeParam
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GpuTransposeParam, TransposesExactly) {
  const auto [w, h] = GetParam();
  const vgpu::DeviceSpec spec;
  core::Rng rng(7);
  img::ImageI32 in(w, h);
  for (auto& p : in.pixels()) {
    p = rng.uniform_int(-1000, 1000);
  }
  img::ImageI32 out(h, w);
  transpose_gpu(spec, in, out);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      ASSERT_EQ(out(y, x), in(x, y));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GpuTransposeParam,
    ::testing::Values(std::pair{1, 1}, std::pair{32, 32}, std::pair{33, 31},
                      std::pair{64, 48}, std::pair{100, 7}, std::pair{7, 100},
                      std::pair{129, 65}));

TEST(GpuTranspose, DoubleTransposeIsIdentity) {
  const vgpu::DeviceSpec spec;
  const img::ImageU8 src = random_image(75, 43, 9);
  const img::ImageI32 in = src.cast<std::int32_t>();
  img::ImageI32 once(43, 75);
  img::ImageI32 twice(75, 43);
  transpose_gpu(spec, in, once);
  transpose_gpu(spec, once, twice);
  EXPECT_EQ(twice, in);
}

TEST(GpuIntegral, MatchesNaiveOnRandomImages) {
  const vgpu::DeviceSpec spec;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const int w = 30 + static_cast<int>(seed) * 41;
    const int h = 25 + static_cast<int>(seed) * 17;
    const img::ImageU8 im = random_image(w, h, seed + 100);
    const GpuIntegralResult gpu = integral_gpu(spec, im);
    EXPECT_EQ(gpu.integral.table(), integral_naive(im).table())
        << "seed " << seed;
    EXPECT_EQ(gpu.launches.size(), 4u);
    EXPECT_GT(gpu.total_service_cycles(), 0.0);
  }
}

TEST(GpuIntegral, ScanIsCoalesced) {
  const vgpu::DeviceSpec spec;
  img::ImageI32 in(1024, 4, 1);
  img::ImageI32 out(1024, 4);
  const vgpu::LaunchCost cost = scan_rows_gpu(spec, in, out);
  // Cooperative loads: 32 lanes touch 32 consecutive int32 = one 128-byte
  // transaction per warp access slot (two when the row base is unaligned).
  // 1024 elements / 32 lanes = 32 slots per warp, 8 warps, 4 rows,
  // load+store. An uncoalesced kernel would need ~8192 transactions.
  // load+store x (chunk=4 slots/warp) x 8 warps/block x 4 row-blocks:
  const std::uint64_t ideal = 2ull * 4 * 8 * 4;
  EXPECT_LE(cost.counters.global_transactions, 2 * ideal);
  EXPECT_GE(cost.counters.global_transactions, ideal);
}

TEST(GpuIntegral, TransposeWritesEveryElementOnce) {
  const vgpu::DeviceSpec spec;
  img::ImageI32 in(96, 64, 5);
  img::ImageI32 out(64, 96);
  const vgpu::LaunchCost cost = transpose_gpu(spec, in, out);
  EXPECT_EQ(cost.counters.global_read_bytes, 96ull * 64 * 4);
  EXPECT_EQ(cost.counters.global_write_bytes, 96ull * 64 * 4);
}

TEST(GpuIntegral, LargerImagesCostMoreCycles) {
  const vgpu::DeviceSpec spec;
  const img::ImageU8 small = random_image(128, 128, 1);
  const img::ImageU8 large = random_image(512, 512, 1);
  const double small_cycles = integral_gpu(spec, small).total_service_cycles();
  const double large_cycles = integral_gpu(spec, large).total_service_cycles();
  EXPECT_GT(large_cycles, small_cycles * 4.0);
}

TEST(CpuModel, HasCacheAndDramRegimes) {
  const CpuModel model;
  // Per-pixel cost jumps once the working set spills out of cache.
  const double small = model.integral_ms(256, 256) / (256.0 * 256.0);
  const double large = model.integral_ms(1920, 1080) / (1920.0 * 1080.0);
  EXPECT_LT(small, large);
}

TEST(CpuModel, HdFrameCostIsMilliseconds) {
  const CpuModel model;
  const double ms = model.integral_ms(1920, 1080);
  EXPECT_GT(ms, 0.5);
  EXPECT_LT(ms, 30.0);
}

}  // namespace
}  // namespace fdet::integral
