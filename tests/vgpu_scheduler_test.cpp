#include "vgpu/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/check.h"

namespace fdet::vgpu {
namespace {

/// Builds an executed launch with `blocks` blocks of `alu_per_thread` work.
Launch make_launch(const DeviceSpec& spec, const char* name, int blocks,
                   int alu_per_thread, int stream) {
  KernelConfig config{.name = name, .grid = {blocks, 1, 1}, .block = {64, 1, 1}};
  LaunchCost cost = execute_kernel(
      spec, config, [alu_per_thread](const ThreadCoord&, LaneCtx& ctx,
                                     SharedMem&) { ctx.alu(alu_per_thread); });
  return Launch{std::move(cost), stream};
}

TEST(Scheduler, SameStreamLaunchesNeverOverlap) {
  DeviceSpec spec;
  std::vector<Launch> launches;
  launches.push_back(make_launch(spec, "a", 4, 100, 0));
  launches.push_back(make_launch(spec, "b", 4, 100, 0));
  const Timeline tl = schedule(spec, launches, ExecMode::kConcurrent);
  ASSERT_EQ(tl.records.size(), 2u);
  EXPECT_GE(tl.records[1].start_s, tl.records[0].end_s);
}

TEST(Scheduler, SerialModeSerializesAcrossStreams) {
  DeviceSpec spec;
  std::vector<Launch> launches;
  launches.push_back(make_launch(spec, "a", 2, 100, 0));
  launches.push_back(make_launch(spec, "b", 2, 100, 1));
  const Timeline tl = schedule(spec, launches, ExecMode::kSerial);
  EXPECT_GE(tl.records[1].start_s, tl.records[0].end_s);
}

TEST(Scheduler, ConcurrentModeOverlapsSmallKernels) {
  DeviceSpec spec;  // 14 SMs
  std::vector<Launch> launches;
  // Four kernels of 2 blocks each: serial leaves 12 SMs idle per kernel.
  for (int s = 0; s < 4; ++s) {
    launches.push_back(make_launch(spec, "k", 2, 2000, s));
  }
  const Timeline serial = schedule(spec, launches, ExecMode::kSerial);
  const Timeline conc = schedule(spec, launches, ExecMode::kConcurrent);
  // All four fit simultaneously: concurrent should approach 4x.
  EXPECT_LT(conc.makespan_s, serial.makespan_s * 0.35);
  EXPECT_GT(conc.utilization(), serial.utilization());
}

TEST(Scheduler, LargeKernelSaturatesDeviceEitherWay) {
  DeviceSpec spec;
  std::vector<Launch> launches;
  // Heavy blocks so compute dwarfs the one-time launch overhead.
  launches.push_back(make_launch(spec, "big", 280, 500000, 0));
  const Timeline serial = schedule(spec, launches, ExecMode::kSerial);
  const Timeline conc = schedule(spec, launches, ExecMode::kConcurrent);
  EXPECT_NEAR(serial.makespan_s, conc.makespan_s, 1e-12);
  EXPECT_GT(serial.utilization(), 0.95);
}

TEST(Scheduler, LaunchOverheadIsExposedOnlyInSerialMode) {
  DeviceSpec spec;
  // Many dependent-chain streams of tiny kernels: serial pays the launch
  // overhead per kernel; concurrent hides it behind other streams.
  std::vector<Launch> launches;
  for (int s = 0; s < 8; ++s) {
    for (int k = 0; k < 4; ++k) {
      launches.push_back(make_launch(spec, "tiny", 14, 20000, s));
    }
  }
  const Timeline serial = schedule(spec, launches, ExecMode::kSerial);
  const Timeline conc = schedule(spec, launches, ExecMode::kConcurrent);
  const double overhead_total = 32 * spec.launch_overhead_s;
  EXPECT_GT(serial.makespan_s, conc.makespan_s + overhead_total * 0.5);
}

TEST(Scheduler, MakespanCoversAllRecords) {
  DeviceSpec spec;
  std::vector<Launch> launches;
  launches.push_back(make_launch(spec, "a", 3, 50, 0));
  launches.push_back(make_launch(spec, "b", 30, 75, 1));
  const Timeline tl = schedule(spec, launches, ExecMode::kConcurrent);
  double max_end = 0.0;
  for (const auto& record : tl.records) {
    EXPECT_LE(record.start_s, record.end_s);
    max_end = std::max(max_end, record.end_s);
  }
  EXPECT_DOUBLE_EQ(tl.makespan_s, max_end);
  EXPECT_LE(tl.utilization(), 1.0 + 1e-12);
}

TEST(Scheduler, CountersAggregateOverLaunches) {
  DeviceSpec spec;
  std::vector<Launch> launches;
  launches.push_back(make_launch(spec, "a", 2, 5, 0));
  launches.push_back(make_launch(spec, "b", 2, 5, 1));
  const Timeline tl = schedule(spec, launches, ExecMode::kConcurrent);
  const PerfCounters total = tl.total_counters();
  EXPECT_EQ(total.threads, 2u * 2 * 64);
  EXPECT_EQ(total.alu_ops, 2u * 2 * 64 * 5);
}

TEST(Scheduler, TraceRendersOneRowPerStream) {
  DeviceSpec spec;
  std::vector<Launch> launches;
  launches.push_back(make_launch(spec, "a", 2, 100, 0));
  launches.push_back(make_launch(spec, "b", 2, 100, 3));
  const Timeline tl = schedule(spec, launches, ExecMode::kConcurrent);
  const std::string trace = tl.render_trace(60);
  EXPECT_NE(trace.find("stream 0"), std::string::npos);
  EXPECT_NE(trace.find("stream 3"), std::string::npos);
  EXPECT_NE(trace.find('#'), std::string::npos);
}

TEST(Scheduler, EmptyTimelineRendersGracefully) {
  Timeline tl;
  EXPECT_NE(tl.render_trace().find("empty"), std::string::npos);
}

TEST(Scheduler, ReadyStreamsDispatchBeforeLaterDependentWork) {
  // Stream 0: long kernel then a dependent successor. Stream 1: a short
  // kernel issued later. Breadth-first dispatch must start stream 1's
  // kernel alongside stream 0's first kernel, not behind its successor.
  DeviceSpec spec;
  std::vector<Launch> launches;
  launches.push_back(make_launch(spec, "long_a", 14, 2000000, 0));
  launches.push_back(make_launch(spec, "long_b", 14, 2000000, 0));
  launches.push_back(make_launch(spec, "short", 2, 1000, 1));
  const Timeline tl = schedule(spec, launches, ExecMode::kConcurrent);
  const auto& long_b = tl.records[1];
  const auto& short_k = tl.records[2];
  EXPECT_LT(short_k.start_s, long_b.start_s);
}

TEST(Scheduler, SerialModeFollowsIssueOrderExactly) {
  DeviceSpec spec;
  std::vector<Launch> launches;
  launches.push_back(make_launch(spec, "a", 2, 100, 3));
  launches.push_back(make_launch(spec, "b", 2, 100, 1));
  launches.push_back(make_launch(spec, "c", 2, 100, 2));
  const Timeline tl = schedule(spec, launches, ExecMode::kSerial);
  EXPECT_LE(tl.records[0].end_s, tl.records[1].start_s);
  EXPECT_LE(tl.records[1].end_s, tl.records[2].start_s);
}

TEST(Scheduler, RecordsKeepIssueOrderRegardlessOfDispatch) {
  DeviceSpec spec;
  std::vector<Launch> launches;
  launches.push_back(make_launch(spec, "first", 14, 500000, 0));
  launches.push_back(make_launch(spec, "second", 1, 10, 1));
  const Timeline tl = schedule(spec, launches, ExecMode::kConcurrent);
  ASSERT_EQ(tl.records.size(), 2u);
  EXPECT_EQ(tl.records[0].name, "first");
  EXPECT_EQ(tl.records[1].name, "second");
}

TEST(MultiDevice, PartitionsStreamsRoundRobin) {
  DeviceSpec spec;
  std::vector<Launch> launches;
  for (int s = 0; s < 4; ++s) {
    launches.push_back(make_launch(spec, "k", 4, 10000, s));
  }
  const MultiDeviceTimeline multi =
      schedule_multi(spec, 2, launches, ExecMode::kConcurrent);
  ASSERT_EQ(multi.devices.size(), 2u);
  EXPECT_EQ(multi.devices[0].records.size(), 2u);  // streams 0, 2
  EXPECT_EQ(multi.devices[1].records.size(), 2u);  // streams 1, 3
  for (const auto& record : multi.devices[0].records) {
    EXPECT_EQ(record.stream % 2, 0);
  }
}

TEST(MultiDevice, TwoGpusBeatOneOnSaturatingWork) {
  DeviceSpec spec;
  std::vector<Launch> launches;
  for (int s = 0; s < 4; ++s) {
    launches.push_back(make_launch(spec, "big", 140, 100000, s));
  }
  const Timeline single = schedule(spec, launches, ExecMode::kConcurrent);
  const MultiDeviceTimeline dual =
      schedule_multi(spec, 2, launches, ExecMode::kConcurrent);
  EXPECT_GT(dual.speedup_vs(single), 1.6);
  EXPECT_LE(dual.speedup_vs(single), 2.0 + 1e-9);
}

TEST(MultiDevice, SingleDeviceMatchesPlainSchedule) {
  DeviceSpec spec;
  std::vector<Launch> launches;
  launches.push_back(make_launch(spec, "a", 5, 500, 0));
  launches.push_back(make_launch(spec, "b", 5, 500, 1));
  const Timeline single = schedule(spec, launches, ExecMode::kConcurrent);
  const MultiDeviceTimeline multi =
      schedule_multi(spec, 1, launches, ExecMode::kConcurrent);
  EXPECT_DOUBLE_EQ(multi.makespan_s, single.makespan_s);
}

TEST(MultiDevice, MoreDevicesThanStreamsLeavesIdleDevices) {
  DeviceSpec spec;
  std::vector<Launch> launches;
  launches.push_back(make_launch(spec, "only", 4, 1000, 0));
  const MultiDeviceTimeline multi =
      schedule_multi(spec, 3, launches, ExecMode::kConcurrent);
  ASSERT_EQ(multi.devices.size(), 3u);
  EXPECT_FALSE(multi.devices[0].records.empty());
  EXPECT_TRUE(multi.devices[1].records.empty());
  EXPECT_TRUE(multi.devices[2].records.empty());
  EXPECT_THROW(schedule_multi(spec, 0, launches, ExecMode::kSerial),
               core::CheckError);
}

TEST(Scheduler, BusySecondsSumBlockServiceTimes) {
  DeviceSpec spec;
  std::vector<Launch> launches;
  launches.push_back(make_launch(spec, "a", 5, 300, 0));
  const Timeline tl = schedule(spec, launches, ExecMode::kConcurrent);
  double expected = 0.0;
  for (const double c : launches[0].cost.block_service_cycles) {
    expected += spec.cycles_to_seconds(c);
  }
  EXPECT_NEAR(tl.records[0].busy_s, expected, 1e-15);
  EXPECT_NEAR(tl.sm_busy_s, expected, 1e-15);
}

TEST(Scheduler, EmptyLaunchListYieldsDegenerateButFiniteTimeline) {
  DeviceSpec spec;
  const Timeline tl = schedule(spec, {}, ExecMode::kConcurrent);
  EXPECT_TRUE(tl.records.empty());
  EXPECT_DOUBLE_EQ(tl.makespan_s, 0.0);
  EXPECT_DOUBLE_EQ(tl.utilization(), 0.0);  // no 0/0
  EXPECT_TRUE(tl.records_by_stream().empty());
  for (const auto& spans : tl.sm_spans) {
    EXPECT_TRUE(spans.empty());
  }
}

TEST(Scheduler, DefaultTimelineUtilizationIsZero) {
  // A never-scheduled Timeline has sm_count == 0; utilization must not
  // divide by it.
  Timeline tl;
  EXPECT_DOUBLE_EQ(tl.utilization(), 0.0);
}

TEST(Scheduler, SmSpansMatchRecordBounds) {
  DeviceSpec spec;
  std::vector<Launch> launches;
  launches.push_back(make_launch(spec, "a", 6, 500, 0));
  launches.push_back(make_launch(spec, "b", 3, 700, 1));
  const Timeline tl = schedule(spec, launches, ExecMode::kConcurrent);
  ASSERT_EQ(tl.sm_spans.size(), static_cast<std::size_t>(spec.sm_count));
  for (const auto& spans : tl.sm_spans) {
    for (const SmSpan& span : spans) {
      ASSERT_GE(span.launch_index, 0);
      ASSERT_LT(static_cast<std::size_t>(span.launch_index),
                tl.records.size());
      const LaunchRecord& record =
          tl.records[static_cast<std::size_t>(span.launch_index)];
      EXPECT_LT(span.start_s, span.end_s);
      EXPECT_GE(span.start_s, record.start_s);
      EXPECT_LE(span.end_s, record.end_s);
    }
  }
}

TEST(Scheduler, RecordsByStreamIndexesEveryRecordOnce) {
  DeviceSpec spec;
  std::vector<Launch> launches;
  launches.push_back(make_launch(spec, "a", 2, 300, 1));
  launches.push_back(make_launch(spec, "b", 2, 300, 0));
  launches.push_back(make_launch(spec, "c", 2, 300, 1));
  const Timeline tl = schedule(spec, launches, ExecMode::kConcurrent);
  const auto by_stream = tl.records_by_stream();
  std::size_t total = 0;
  for (const auto& [stream, indices] : by_stream) {
    double last_start = -1.0;
    for (const std::size_t i : indices) {
      EXPECT_EQ(tl.records[i].stream, stream);
      EXPECT_GE(tl.records[i].start_s, last_start);  // sorted per stream
      last_start = tl.records[i].start_s;
      ++total;
    }
  }
  EXPECT_EQ(total, tl.records.size());
}

TEST(PerfCountersGuards, RatiosStayFiniteOnDegenerateInputs) {
  PerfCounters zero;
  EXPECT_DOUBLE_EQ(zero.branch_efficiency(), 1.0);  // no branches: efficient
  EXPECT_DOUBLE_EQ(zero.simd_efficiency(), 1.0);    // no issued cycles
  EXPECT_DOUBLE_EQ(zero.dram_read_throughput(0.0), 0.0);
  EXPECT_DOUBLE_EQ(zero.dram_read_throughput(-1.0), 0.0);

  PerfCounters inconsistent;
  inconsistent.warp_branches = 2;
  inconsistent.divergent_branches = 5;  // more divergent than total
  EXPECT_DOUBLE_EQ(inconsistent.branch_efficiency(), 0.0);

  PerfCounters overcounted;
  overcounted.warp_issue_cycles = 1.0;
  overcounted.lane_issue_cycles = 64.0;  // > 32 lanes' worth
  EXPECT_DOUBLE_EQ(overcounted.simd_efficiency(), 1.0);

  PerfCounters reads;
  reads.global_read_bytes = 1000;
  EXPECT_DOUBLE_EQ(reads.dram_read_throughput(0.5), 2000.0);
}

}  // namespace
}  // namespace fdet::vgpu
