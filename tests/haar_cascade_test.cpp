#include "haar/cascade.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/rng.h"
#include "haar/profile.h"

namespace fdet::haar {
namespace {

integral::IntegralImage make_ii(std::uint64_t seed, int w = 64, int h = 64) {
  core::Rng rng(seed);
  img::ImageU8 im(w, h);
  for (auto& p : im.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return integral::integral_cpu(im);
}

Cascade two_stage_cascade() {
  Cascade cascade("test");
  // Stage 1: single always-pass stump (votes 1/1, threshold 0.5).
  {
    Stage s;
    WeakClassifier wc;
    wc.feature = {HaarType::kEdge, false, 0, 0, 4, 4};
    wc.left_vote = 1.0f;
    wc.right_vote = 1.0f;
    s.classifiers.push_back(wc);
    s.threshold = 0.5f;
    cascade.add_stage(std::move(s));
  }
  // Stage 2: never passes (votes -1/-1, threshold 0).
  {
    Stage s;
    WeakClassifier wc;
    wc.feature = {HaarType::kEdge, false, 0, 0, 4, 4};
    wc.left_vote = -1.0f;
    wc.right_vote = -1.0f;
    s.classifiers.push_back(wc);
    s.threshold = 0.0f;
    cascade.add_stage(std::move(s));
  }
  return cascade;
}

TEST(Cascade, EarlyExitStopsAtFailingStage) {
  const auto ii = make_ii(1);
  const Cascade cascade = two_stage_cascade();
  const CascadeResult r = cascade.evaluate(ii, 0, 0);
  EXPECT_EQ(r.depth, 1);   // passed stage 1, failed stage 2
  EXPECT_FALSE(r.accepted);
}

TEST(Cascade, MaxStagesTruncatesEvaluation) {
  const auto ii = make_ii(1);
  const Cascade cascade = two_stage_cascade();
  const CascadeResult r = cascade.evaluate(ii, 0, 0, 1);
  EXPECT_EQ(r.depth, 1);
  EXPECT_TRUE(r.accepted);  // the truncated cascade accepts
}

TEST(Cascade, PrefixKeepsLeadingStages) {
  const Cascade cascade = two_stage_cascade();
  const Cascade one = cascade.prefix(1);
  EXPECT_EQ(one.stage_count(), 1);
  const auto ii = make_ii(2);
  EXPECT_TRUE(one.evaluate(ii, 0, 0).accepted);
  EXPECT_EQ(cascade.prefix(0).stage_count(), 0);
  EXPECT_THROW(cascade.prefix(3), core::CheckError);
}

TEST(Cascade, VoteUsesThresholdAndPolarity) {
  WeakClassifier wc;
  wc.threshold = 100.0f;
  wc.left_vote = -0.5f;
  wc.right_vote = 0.75f;
  EXPECT_FLOAT_EQ(wc.vote(99), -0.5f);
  EXPECT_FLOAT_EQ(wc.vote(100), 0.75f);
  EXPECT_FLOAT_EQ(wc.vote(5000), 0.75f);
}

TEST(Cascade, ClassifierCountSumsStages) {
  const auto profile = opencv_frontal_profile();
  const Cascade cascade = build_profile_cascade("opencv-like", profile, 1);
  EXPECT_EQ(cascade.stage_count(), 25);
  EXPECT_EQ(cascade.classifier_count(), 2913);
}

TEST(Cascade, SerializationRoundTrips) {
  const Cascade original =
      build_profile_cascade("roundtrip", std::vector<int>{3, 5, 2}, 99);
  std::stringstream buffer;
  write_cascade(buffer, original);
  const Cascade loaded = read_cascade(buffer);

  EXPECT_EQ(loaded.name(), "roundtrip");
  ASSERT_EQ(loaded.stage_count(), original.stage_count());
  for (int s = 0; s < original.stage_count(); ++s) {
    const Stage& a = original.stages()[static_cast<std::size_t>(s)];
    const Stage& b = loaded.stages()[static_cast<std::size_t>(s)];
    ASSERT_EQ(a.classifiers.size(), b.classifiers.size());
    EXPECT_FLOAT_EQ(a.threshold, b.threshold);
    for (std::size_t c = 0; c < a.classifiers.size(); ++c) {
      EXPECT_EQ(a.classifiers[c].feature, b.classifiers[c].feature);
      EXPECT_FLOAT_EQ(a.classifiers[c].threshold, b.classifiers[c].threshold);
      EXPECT_FLOAT_EQ(a.classifiers[c].left_vote, b.classifiers[c].left_vote);
      EXPECT_FLOAT_EQ(a.classifiers[c].right_vote, b.classifiers[c].right_vote);
    }
  }

  // Same windows produce identical evaluations.
  const auto ii = make_ii(5);
  for (int x = 0; x < 30; x += 7) {
    const auto ra = original.evaluate(ii, x, x);
    const auto rb = loaded.evaluate(ii, x, x);
    EXPECT_EQ(ra.depth, rb.depth);
    EXPECT_EQ(ra.accepted, rb.accepted);
  }
}

TEST(Cascade, ReadRejectsCorruptHeaders) {
  std::stringstream bad1("not-a-cascade 1\n");
  EXPECT_THROW(read_cascade(bad1), core::CheckError);
  std::stringstream bad2("fdet-cascade 2\n");
  EXPECT_THROW(read_cascade(bad2), core::CheckError);
  std::stringstream truncated("fdet-cascade 1\nname x\nstages 1\nstage 5 0.0\n1 0 0 0");
  EXPECT_THROW(read_cascade(truncated), core::CheckError);
}

TEST(Cascade, EmptyCascadeAcceptsEverything) {
  const Cascade empty("empty");
  const auto ii = make_ii(3);
  const CascadeResult r = empty.evaluate(ii, 0, 0);
  EXPECT_EQ(r.depth, 0);
  EXPECT_TRUE(r.accepted);
}

}  // namespace
}  // namespace fdet::haar
