// FrameSource conformance suite: the contract every implementation —
// the retrofitted mock H.264 decoder and all three validating container
// parsers — must satisfy identically (ingest/frame_source.h). The serving
// layer and detect::Pipeline are written against exactly these
// guarantees, so a new source that passes here can be swapped in without
// touching either.
#include "ingest/frame_source.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ingest/error.h"
#include "ingest/registry.h"
#include "video/decoder.h"
#include "video/trailer.h"

namespace fdet::ingest {
namespace {

video::TrailerSpec conformance_spec() {
  video::TrailerSpec spec;
  spec.title = "conformance";
  spec.width = 64;
  spec.height = 48;
  spec.frames = 5;
  spec.fps = 24.0;
  spec.shot_frames = 2;
  spec.seed = 0xc0f0;
  return spec;
}

/// One fixture instantiation per implementation. The trailer and decoder
/// live in the fixture because H264FrameSource borrows them.
class Conformance : public ::testing::TestWithParam<std::string> {
 protected:
  Conformance()
      : trailer_(conformance_spec()), decoder_(trailer_) {
    if (GetParam() == "h264") {
      source_ = std::make_unique<H264FrameSource>(decoder_);
    } else {
      source_ = open_stream(
          encode_stream(parse_format(GetParam()), trailer_));
    }
  }

  const FrameSource& source() const { return *source_; }

  video::SyntheticTrailer trailer_;
  video::MockH264Decoder decoder_;
  std::unique_ptr<FrameSource> source_;
};

TEST_P(Conformance, InfoMatchesTheEncodedFootage) {
  const SourceInfo& info = source().info();
  EXPECT_EQ(info.format, GetParam());
  EXPECT_EQ(info.width, 64);
  EXPECT_EQ(info.height, 48);
  EXPECT_EQ(info.frames, 5);
  EXPECT_NEAR(info.fps, 24.0, 1e-6);
  EXPECT_FALSE(info.container.empty());
  EXPECT_EQ(source().frame_count(), 5);
}

TEST_P(Conformance, DecodedFramesMatchInfoGeometry) {
  for (int i = 0; i < source().frame_count(); ++i) {
    const video::DecodedFrame decoded = source().decode(i);
    EXPECT_EQ(decoded.index, i);
    EXPECT_EQ(decoded.frame.width(), source().info().width);
    EXPECT_EQ(decoded.frame.height(), source().info().height);
    EXPECT_FALSE(decoded.frame.luma().empty());
  }
}

TEST_P(Conformance, DecodeIsDeterministicAndStateless) {
  // Decode everything backwards first, then forwards, then repeat each
  // index — every combination must produce byte-identical planes, even
  // for inter-coded formats (gif recomposites deltas internally).
  std::vector<video::DecodedFrame> backwards;
  for (int i = source().frame_count() - 1; i >= 0; --i) {
    backwards.push_back(source().decode(i));
  }
  for (int i = 0; i < source().frame_count(); ++i) {
    const video::DecodedFrame again = source().decode(i);
    const video::DecodedFrame& first =
        backwards[static_cast<std::size_t>(source().frame_count() - 1 - i)];
    EXPECT_EQ(again.frame.luma(), first.frame.luma()) << "frame " << i;
    EXPECT_EQ(again.frame.chroma(), first.frame.chroma()) << "frame " << i;
  }
}

TEST_P(Conformance, OutOfRangeIndexIsTypedNeverUb) {
  for (const int bad : {-1, source().frame_count(), 1 << 20}) {
    try {
      source().decode(bad);
      FAIL() << "expected IngestError for index " << bad;
    } catch (const IngestError& error) {
      EXPECT_EQ(error.kind(), IngestErrorKind::kBadFrameIndex);
      EXPECT_EQ(error.format(), GetParam());
    }
    EXPECT_THROW(source().decode_latency_ms(bad), IngestError);
  }
}

TEST_P(Conformance, LatencyModelIsDeterministicAndPositive) {
  for (int i = 0; i < source().frame_count(); ++i) {
    const double latency = source().decode_latency_ms(i);
    EXPECT_GT(latency, 0.0);
    EXPECT_EQ(source().decode_latency_ms(i), latency);
    // decode() charges the same model.
    EXPECT_NEAR(source().decode(i).decode_ms, latency, 1e-12);
  }
}

TEST_P(Conformance, FrameBytesEitherAbsentOrInBounds) {
  // The mock hardware decoder has no byte stream; every container-backed
  // source must expose a non-empty, in-bounds payload extent per frame.
  const bool container_backed = GetParam() != "h264";
  for (int i = 0; i < source().frame_count(); ++i) {
    const auto range = source().frame_bytes(i);
    EXPECT_EQ(range.has_value(), container_backed) << "frame " << i;
    if (range) {
      EXPECT_GT(range->size, 0u);
    }
  }
}

TEST_P(Conformance, CapabilityFlagsMatchTheFormat) {
  const SourceInfo& info = source().info();
  EXPECT_EQ(info.has_ground_truth, GetParam() == "h264");
  EXPECT_EQ(info.intra_only, GetParam() != "gif");
  if (!info.has_ground_truth) {
    // Byte-stream containers cannot carry ground truth; the flag must
    // match what decode() actually returns.
    for (int i = 0; i < source().frame_count(); ++i) {
      EXPECT_TRUE(source().decode(i).ground_truth.empty()) << "frame " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSources, Conformance,
                         ::testing::Values("h264", "raw", "mjpeg", "gif"),
                         [](const auto& info) { return info.param; });

TEST(ConformanceCross, ContainerLumaMatchesTheDecoderOutput) {
  // The byte-stream encoders serialize the same synthetic footage the
  // mock decoder renders; raw is lossless, so the luma plane must come
  // back byte-identical through the whole encode -> parse -> decode path.
  const video::SyntheticTrailer trailer(conformance_spec());
  const video::MockH264Decoder decoder(trailer);
  const auto raw = open_stream(encode_stream(Format::kRaw, trailer));
  for (int i = 0; i < raw->frame_count(); ++i) {
    EXPECT_EQ(raw->decode(i).frame.luma(), decoder.decode(i).frame.luma())
        << "frame " << i;
  }
}

}  // namespace
}  // namespace fdet::ingest
