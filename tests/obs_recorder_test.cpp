// Flight recorder: seqlock ring semantics (wraparound, snapshot order,
// window filtering), concurrent writers, and the Perfetto dump document
// with its anomaly header.
#include "obs/recorder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/check.h"
#include "obs/json.h"

namespace fdet::obs {
namespace {

FlightEvent make_event(int frame, double ts_us, FlightEventKind kind,
                       const char* name) {
  FlightEvent event;
  event.frame = frame;
  event.ts_us = ts_us;
  event.kind = kind;
  event.set_name(name);
  return event;
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(2).capacity(), 2u);
  EXPECT_EQ(FlightRecorder(5).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(8).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(8192).capacity(), 8192u);
  EXPECT_THROW(FlightRecorder(1), core::CheckError);
}

TEST(FlightRecorder, SnapshotPreservesRecordOrderAndFields) {
  FlightRecorder recorder(16);
  for (int i = 0; i < 5; ++i) {
    FlightEvent event = make_event(i, 100.0 * i, FlightEventKind::kStage,
                                   "decode");
    event.dur_us = 7.0;
    event.value = 1.5 * i;
    event.set_detail("stage detail");
    recorder.record(event);
  }
  const std::vector<FlightEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].frame, i);
    EXPECT_DOUBLE_EQ(events[static_cast<std::size_t>(i)].ts_us, 100.0 * i);
    EXPECT_DOUBLE_EQ(events[static_cast<std::size_t>(i)].value, 1.5 * i);
    EXPECT_STREQ(events[static_cast<std::size_t>(i)].name, "decode");
    EXPECT_STREQ(events[static_cast<std::size_t>(i)].detail, "stage detail");
  }
  EXPECT_EQ(recorder.recorded(), 5u);
}

TEST(FlightRecorder, LabelsTruncateInsteadOfOverflowing) {
  FlightRecorder recorder(4);
  FlightEvent event;
  const std::string long_name(200, 'n');
  const std::string long_detail(200, 'd');
  event.set_name(long_name.c_str());
  event.set_detail(long_detail.c_str());
  recorder.record(event);
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].name).size(), sizeof(event.name) - 1);
  EXPECT_EQ(std::string(events[0].detail).size(), sizeof(event.detail) - 1);
}

TEST(FlightRecorder, RingForgetsEventsOlderThanCapacity) {
  FlightRecorder recorder(8);
  for (int i = 0; i < 20; ++i) {
    recorder.record(make_event(i, 10.0 * i, FlightEventKind::kFrame, "frame"));
  }
  EXPECT_EQ(recorder.recorded(), 20u);
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The survivors are exactly the newest capacity() events, in order.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].frame, 12 + i);
  }
}

TEST(FlightRecorder, SnapshotWindowKeepsOnlyRecentHistory) {
  FlightRecorder recorder(32);
  // Events ending at 100, 200, ..., 1000 us (spans count their end).
  for (int i = 1; i <= 10; ++i) {
    FlightEvent event = make_event(i, 100.0 * i - 10.0,
                                   FlightEventKind::kStage, "stage");
    event.dur_us = 10.0;
    recorder.record(event);
  }
  const auto recent = recorder.snapshot_window(250.0);  // newest end = 1000
  ASSERT_EQ(recent.size(), 3u);  // ends 800, 900, 1000
  EXPECT_EQ(recent.front().frame, 8);
  EXPECT_EQ(recent.back().frame, 10);
  // A huge window degenerates to the full snapshot.
  EXPECT_EQ(recorder.snapshot_window(1e12).size(), 10u);
}

TEST(FlightRecorder, ConcurrentWritersLoseNothingWhenRingIsLargeEnough) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  FlightRecorder recorder(16384);  // > kThreads * kPerThread
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.record(make_event(t * kPerThread + i, i,
                                   FlightEventKind::kLaunch, "kernel"));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(recorder.recorded(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  const auto events = recorder.snapshot();
  EXPECT_EQ(events.size(), static_cast<std::size_t>(kThreads * kPerThread));
  // Every recorded frame id appears exactly once.
  std::vector<int> seen(kThreads * kPerThread, 0);
  for (const FlightEvent& event : events) {
    ASSERT_GE(event.frame, 0);
    ASSERT_LT(event.frame, kThreads * kPerThread);
    ++seen[static_cast<std::size_t>(event.frame)];
  }
  for (const int count : seen) {
    EXPECT_EQ(count, 1);
  }
}

TEST(FlightRecorder, AmbientInstallAndEmit) {
  FlightEvent event = make_event(0, 0.0, FlightEventKind::kRetry, "retry");
  FlightRecorder::emit(event);  // no ambient recorder: silent no-op

  FlightRecorder recorder(8);
  recorder.install();
  ASSERT_EQ(FlightRecorder::current(), &recorder);
  FlightRecorder::emit(event);
  recorder.uninstall();
  EXPECT_EQ(FlightRecorder::current(), nullptr);
  FlightRecorder::emit(event);  // after uninstall: no-op again
  EXPECT_EQ(recorder.recorded(), 1u);
}

TEST(FlightDump, TraceEventsMapSpansAndInstants) {
  std::vector<FlightEvent> events;
  FlightEvent frame = make_event(3, 100.0, FlightEventKind::kFrame, "frame3");
  frame.dur_us = 50.0;
  frame.trace_id = 0xabcdef;
  events.push_back(frame);
  events.push_back(make_event(3, 120.0, FlightEventKind::kRetry, "retry"));

  const std::vector<TraceEvent> trace = flight_trace_events(events);
  int complete = 0;
  int instant = 0;
  for (const TraceEvent& event : trace) {
    complete += event.phase == 'X';
    instant += event.phase == 'i';
  }
  EXPECT_EQ(complete, 1);
  EXPECT_EQ(instant, 1);
}

TEST(FlightDump, JsonCarriesAnomalyHeaderAndParses) {
  std::vector<FlightEvent> events;
  FlightEvent event = make_event(7, 10.0, FlightEventKind::kDeadlineMiss,
                                 "deadline");
  event.trace_id = 0x1234;
  event.set_detail("fault:launch -> deadline-miss");
  events.push_back(event);

  AnomalyInfo anomaly;
  anomaly.kind = Anomaly::kDeadlineMiss;
  anomaly.frame = 7;
  anomaly.cause = "fault:launch -> deadline-miss";
  anomaly.trace_id = 0x1234;

  const json::Value doc = json::parse(flight_dump_json(events, anomaly));
  EXPECT_FALSE(doc.at("traceEvents").as_array().empty());
  const json::Value& header = doc.at("anomaly");
  EXPECT_EQ(header.at("kind").as_string(), "deadline-miss");
  EXPECT_DOUBLE_EQ(header.at("frame").as_number(), 7.0);
  EXPECT_EQ(header.at("cause").as_string(), "fault:launch -> deadline-miss");
  EXPECT_EQ(header.at("trace_id").as_string(), hex_id(0x1234));
}

TEST(FlightDump, EmptyRingStillDumpsAValidDocument) {
  const json::Value doc =
      json::parse(flight_dump_json({}, AnomalyInfo{}));
  // Track metadata only ('M' entries) — still a loadable Perfetto file.
  for (const json::Value& event : doc.at("traceEvents").as_array()) {
    EXPECT_EQ(event.at("ph").as_string(), "M");
  }
  EXPECT_EQ(doc.at("anomaly").at("kind").as_string(), "deadline-miss");
  EXPECT_DOUBLE_EQ(doc.at("anomaly").at("events").as_number(), 0.0);
}

TEST(FlightDump, WriteFlightDumpIsAtomicAndReparseable) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "fdet_recorder_test";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "flight_f0001_quarantine.json").string();

  std::vector<FlightEvent> events;
  events.push_back(make_event(1, 5.0, FlightEventKind::kQuarantine, "quar"));
  AnomalyInfo anomaly;
  anomaly.kind = Anomaly::kQuarantine;
  anomaly.frame = 1;
  anomaly.cause = "failed:detect";
  write_flight_dump(path, events, anomaly);

  const json::Value doc = json::parse_file(path);
  EXPECT_EQ(doc.at("anomaly").at("kind").as_string(), "quarantine");
  // 1 payload event + the process/track metadata entries.
  int payload = 0;
  for (const json::Value& event : doc.at("traceEvents").as_array()) {
    payload += event.at("ph").as_string() != "M";
  }
  EXPECT_EQ(payload, 1);
  std::filesystem::remove_all(dir);
}

TEST(FlightEventNames, KindAndAnomalyNamesAreStable) {
  EXPECT_STREQ(flight_event_kind_name(FlightEventKind::kFrame), "frame");
  EXPECT_STREQ(flight_event_kind_name(FlightEventKind::kLadder), "ladder");
  EXPECT_STREQ(anomaly_name(Anomaly::kDeadlineMiss), "deadline-miss");
  EXPECT_STREQ(anomaly_name(Anomaly::kQuarantine), "quarantine");
  EXPECT_STREQ(anomaly_name(Anomaly::kBreakerOpen), "breaker-open");
  EXPECT_STREQ(anomaly_name(Anomaly::kLadderClimb), "ladder-climb");
  EXPECT_STREQ(anomaly_name(Anomaly::kFaultInjected), "fault-injected");
}

}  // namespace
}  // namespace fdet::obs
