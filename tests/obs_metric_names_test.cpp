// Metric-name stability: baseline comparison (obs::compare_runs) matches
// series by exact name, so an accidental rename in publish_timeline() or
// FrameResult::publish_metrics() would silently turn every stored
// BENCH_*.json baseline into "missing" verdicts. This golden list makes
// a rename a test failure instead. When a rename is intentional, update
// the list here, the EXPERIMENTS.md metric table, and regenerate the
// committed BENCH_*.json records.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "detect/pipeline.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "vgpu/kernel.h"
#include "vgpu/scheduler.h"

namespace fdet::obs {
namespace {

vgpu::Timeline tiny_timeline() {
  vgpu::DeviceSpec spec;
  vgpu::KernelConfig config{
      .name = "cascade_s0", .grid = {2, 1, 1}, .block = {64, 1, 1}};
  vgpu::LaunchCost cost = execute_kernel(
      spec, config,
      [](const vgpu::ThreadCoord&, vgpu::LaneCtx& ctx, vgpu::SharedMem&) {
        ctx.alu(100);
      });
  return schedule(spec, {vgpu::Launch{std::move(cost), 0}},
                  vgpu::ExecMode::kConcurrent);
}

std::set<std::string> published_names(const Registry& registry) {
  std::set<std::string> names;
  for (const Registry::Sample& sample : registry.samples()) {
    names.insert(sample.name);
  }
  return names;
}

TEST(MetricNameStability, PublishTimelineGoldenList) {
  Registry registry;
  publish_timeline(registry, tiny_timeline(), {{"mode", "concurrent"}});
  const std::set<std::string> expected = {
      "vgpu.blocks",
      "vgpu.branch_efficiency",
      "vgpu.dram_read_gbps",
      "vgpu.global_read_bytes",
      "vgpu.global_write_bytes",
      "vgpu.kernel_duration_ms",
      "vgpu.kernel_launches",
      "vgpu.makespan_ms",
      "vgpu.simd_efficiency",
      "vgpu.sm_busy_s",
      "vgpu.sm_utilization",
  };
  EXPECT_EQ(published_names(registry), expected)
      << "publish_timeline() metric names changed — renames break stored "
         "BENCH_*.json baselines; update baselines and EXPERIMENTS.md too";
}

TEST(MetricNameStability, FrameResultPublishMetricsGoldenList) {
  detect::FrameResult result;
  result.timeline = tiny_timeline();
  result.detect_ms = 3.0;
  detect::ScaleStats stats;
  stats.scale_index = 0;
  stats.depth_histogram = {5, 2, 1};
  result.scales.push_back(stats);

  Registry registry;
  result.publish_metrics(registry, {{"mode", "concurrent"}});
  const std::set<std::string> expected = {
      // via publish_timeline:
      "vgpu.blocks",
      "vgpu.branch_efficiency",
      "vgpu.dram_read_gbps",
      "vgpu.global_read_bytes",
      "vgpu.global_write_bytes",
      "vgpu.kernel_duration_ms",
      "vgpu.kernel_launches",
      "vgpu.makespan_ms",
      "vgpu.simd_efficiency",
      "vgpu.sm_busy_s",
      "vgpu.sm_utilization",
      // frame-level:
      "detect.busy_share",
      "detect.cascade_branch_efficiency",
      "detect.cascade_simd_efficiency",
      "detect.detections",
      "detect.frame_latency_ms",
      "detect.frames",
      "detect.raw_detections",
      "detect.rejection_depth",
  };
  EXPECT_EQ(published_names(registry), expected)
      << "FrameResult::publish_metrics() metric names changed — renames "
         "break stored BENCH_*.json baselines; update baselines and "
         "EXPERIMENTS.md too";
}

}  // namespace
}  // namespace fdet::obs
