// Run-record store: median/MAD statistics, aggregation of per-repeat
// registry snapshots (histogram flattening included), JSON round-trip,
// and the validating deserializer.
#include "obs/runrecord.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "core/check.h"
#include "obs/json.h"

namespace fdet::obs {
namespace {

TEST(RunRecordStats, MedianOddEvenAndSingle) {
  EXPECT_DOUBLE_EQ(median_of({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median_of({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median_of({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_THROW(median_of({}), core::CheckError);
}

TEST(RunRecordStats, MadIsMedianAbsoluteDeviation) {
  // values {1,2,9}, median 2 -> deviations {1,0,7} -> MAD 1.
  EXPECT_DOUBLE_EQ(mad_of({1.0, 2.0, 9.0}, 2.0), 1.0);
  // Constant series has zero spread.
  EXPECT_DOUBLE_EQ(mad_of({5.0, 5.0, 5.0}, 5.0), 0.0);
}

TEST(RunRecordBuild, CollectsOneSamplePerRepeatWithStats) {
  Registry r0, r1, r2;
  r0.gauge("vgpu.makespan_ms", {{"mode", "concurrent"}}).set(4.0);
  r1.gauge("vgpu.makespan_ms", {{"mode", "concurrent"}}).set(4.2);
  r2.gauge("vgpu.makespan_ms", {{"mode", "concurrent"}}).set(4.1);
  r0.counter("detect.frames").add(36.0);
  r1.counter("detect.frames").add(36.0);
  r2.counter("detect.frames").add(36.0);

  const RunRecord record =
      build_run_record("fig5", "default", {{"host", "test"}}, {&r0, &r1, &r2});
  EXPECT_EQ(record.schema_version, kRunRecordSchemaVersion);
  EXPECT_EQ(record.artifact, "fig5");
  EXPECT_EQ(record.repeats, 3);

  const MetricSeries* makespan =
      record.find("vgpu.makespan_ms", {{"mode", "concurrent"}});
  ASSERT_NE(makespan, nullptr);
  EXPECT_EQ(makespan->kind, "gauge");
  ASSERT_EQ(makespan->samples.size(), 3u);
  EXPECT_DOUBLE_EQ(makespan->median, 4.1);
  EXPECT_NEAR(makespan->mad, 0.1, 1e-12);

  const MetricSeries* frames = record.find("detect.frames", {});
  ASSERT_NE(frames, nullptr);
  EXPECT_EQ(frames->kind, "counter");
  EXPECT_DOUBLE_EQ(frames->median, 36.0);
  EXPECT_DOUBLE_EQ(frames->mad, 0.0);
}

TEST(RunRecordBuild, HistogramsFlattenIntoSumAndCountSeries) {
  Registry r0, r1;
  r0.histogram("detect.frame_latency_ms", {1.0, 10.0}).observe(3.0);
  r1.histogram("detect.frame_latency_ms", {1.0, 10.0}).observe(5.0, 2.0);

  const RunRecord record = build_run_record("fig5", "default", {}, {&r0, &r1});
  const MetricSeries* sum = record.find("detect.frame_latency_ms.sum", {});
  const MetricSeries* count = record.find("detect.frame_latency_ms.count", {});
  ASSERT_NE(sum, nullptr);
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(sum->kind, "histogram_sum");
  EXPECT_EQ(count->kind, "histogram_count");
  ASSERT_EQ(sum->samples.size(), 2u);
  EXPECT_DOUBLE_EQ(sum->samples[0], 3.0);
  EXPECT_DOUBLE_EQ(sum->samples[1], 10.0);
  EXPECT_DOUBLE_EQ(count->median, 1.5);
  // No raw histogram series leaks through under the original name.
  EXPECT_EQ(record.find("detect.frame_latency_ms", {}), nullptr);
}

TEST(RunRecordBuild, SeriesAbsentFromSomeRepeatsKeepsPresentSamples) {
  Registry r0, r1;
  r0.gauge("bench.wall_seconds").set(1.5);
  r0.gauge("always").set(1.0);
  r1.gauge("always").set(2.0);

  const RunRecord record = build_run_record("x", "default", {}, {&r0, &r1});
  const MetricSeries* wall = record.find("bench.wall_seconds", {});
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(wall->samples.size(), 1u);
  const MetricSeries* always = record.find("always", {});
  ASSERT_NE(always, nullptr);
  EXPECT_EQ(always->samples.size(), 2u);
}

TEST(RunRecordJson, DumpParsesBackIdentically) {
  Registry r0, r1;
  r0.gauge("vgpu.makespan_ms", {{"mode", "serial"}}).set(8.75);
  r1.gauge("vgpu.makespan_ms", {{"mode", "serial"}}).set(8.5);
  RunRecord record =
      build_run_record("fig6", "ours", {{"commit", "abc"}}, {&r0, &r1});

  const RunRecord reparsed = RunRecord::parse(record.dump());
  EXPECT_EQ(reparsed.schema_version, kRunRecordSchemaVersion);
  EXPECT_EQ(reparsed.artifact, "fig6");
  EXPECT_EQ(reparsed.variant, "ours");
  EXPECT_EQ(reparsed.repeats, 2);
  EXPECT_EQ(format_labels(reparsed.labels), "commit=abc");
  ASSERT_EQ(reparsed.metrics.size(), 1u);
  const MetricSeries& series = reparsed.metrics[0];
  EXPECT_EQ(series.name, "vgpu.makespan_ms");
  ASSERT_EQ(series.samples.size(), 2u);
  EXPECT_DOUBLE_EQ(series.samples[0], 8.75);
  EXPECT_DOUBLE_EQ(series.median, 8.625);
}

TEST(RunRecordJson, FileRoundTripThroughWriteAndLoad) {
  Registry r0;
  r0.counter("vgpu.kernel_launches").add(18.0);
  const RunRecord record = build_run_record("fig6", "default", {}, {&r0});

  const std::string path = testing::TempDir() + "fdet_runrecord_test.json";
  record.write_file(path);
  const RunRecord loaded = RunRecord::load_file(path);
  std::remove(path.c_str());
  ASSERT_EQ(loaded.metrics.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.metrics[0].median, 18.0);
}

TEST(RunRecordJson, RejectsWrongSchemaVersionAndMalformedRecords) {
  Registry r0;
  r0.gauge("g").set(1.0);
  RunRecord record = build_run_record("x", "default", {}, {&r0});
  record.schema_version = kRunRecordSchemaVersion + 1;
  EXPECT_THROW(RunRecord::parse(record.dump()), core::CheckError);

  // Structurally valid JSON that is not a run record.
  EXPECT_THROW(RunRecord::parse("{\"metrics\":[]}"), core::CheckError);
  EXPECT_THROW(
      RunRecord::parse("{\"schema_version\":1,\"artifact\":\"\",\"variant\":"
                       "\"d\",\"repeats\":1,\"labels\":{},\"metrics\":[]}"),
      core::CheckError);
}

TEST(RunRecordJson, LoadFileDiagnosticsNameThePath) {
  // Missing file: the path must appear in the error.
  const std::string missing = testing::TempDir() + "fdet_no_such_record.json";
  try {
    RunRecord::load_file(missing);
    FAIL() << "expected CheckError";
  } catch (const core::CheckError& error) {
    EXPECT_NE(std::string(error.what()).find(missing), std::string::npos);
  }

  // Corrupt file (truncated JSON): ditto — a bare parse error without the
  // file name would leave the operator guessing which baseline was bad.
  const std::string corrupt = testing::TempDir() + "fdet_corrupt_record.json";
  {
    std::ofstream out(corrupt);
    out << "{\"schema_version\":1,\"artifact\":\"fig5\",\"metri";
  }
  try {
    RunRecord::load_file(corrupt);
    FAIL() << "expected CheckError";
  } catch (const core::CheckError& error) {
    EXPECT_NE(std::string(error.what()).find(corrupt), std::string::npos);
  }

  // Well-formed JSON that is not a run record: same contract.
  {
    std::ofstream out(corrupt);
    out << "{\"metrics\":[]}";
  }
  try {
    RunRecord::load_file(corrupt);
    FAIL() << "expected CheckError";
  } catch (const core::CheckError& error) {
    EXPECT_NE(std::string(error.what()).find(corrupt), std::string::npos);
  }
  std::remove(corrupt.c_str());
}

TEST(RunRecordJson, NonFiniteSamplesSerializeAsNullAndParseAsNaN) {
  Registry r0;
  r0.gauge("degenerate_ratio").set(std::nan(""));
  r0.gauge("fine").set(2.0);
  const RunRecord record = build_run_record("x", "default", {}, {&r0});
  const std::string text = record.dump();
  EXPECT_NE(text.find("null"), std::string::npos);

  const RunRecord reparsed = RunRecord::parse(text);
  const MetricSeries* degenerate = reparsed.find("degenerate_ratio", {});
  ASSERT_NE(degenerate, nullptr);
  ASSERT_EQ(degenerate->samples.size(), 1u);
  EXPECT_TRUE(std::isnan(degenerate->samples[0]));
  EXPECT_TRUE(std::isnan(degenerate->median));
  const MetricSeries* fine = reparsed.find("fine", {});
  ASSERT_NE(fine, nullptr);
  EXPECT_DOUBLE_EQ(fine->median, 2.0);
}

TEST(RunRecordPath, CanonicalName) {
  EXPECT_EQ(run_record_path("fig5"), "BENCH_fig5.json");
}

}  // namespace
}  // namespace fdet::obs
