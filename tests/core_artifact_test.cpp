// Durable-file primitives: CRC32, atomic replacement under injected write
// faults, and the versioned/checksummed artifact container.
#include "core/artifact.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

namespace fdet::core {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
  const std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::optional<std::string> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

TEST(Crc32, MatchesKnownVectors) {
  // The IEEE 802.3 check value for the standard test string.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
  // Single-bit difference must change the CRC.
  EXPECT_NE(crc32("123456789"), crc32("123456788"));
  // The pointer overload agrees with the string_view one.
  const std::string data = "123456789";
  EXPECT_EQ(crc32(data.data(), data.size()), 0xCBF43926u);
}

TEST(AtomicWrite, ReplacesDestinationAndLeavesNoTmp) {
  const std::string dir = temp_dir("fdet_artifact_atomic");
  const std::string path = dir + "/file.txt";

  atomic_write_file(path, "first");
  EXPECT_EQ(slurp(path), "first");
  atomic_write_file(path, "second version");
  EXPECT_EQ(slurp(path), "second version");
  EXPECT_FALSE(fs::exists(tmp_path_for(path)));
  fs::remove_all(dir);
}

TEST(AtomicWrite, FaultLeavesPreviousContentsIntact) {
  const std::string dir = temp_dir("fdet_artifact_fault");
  const std::string path = dir + "/file.txt";
  atomic_write_file(path, "durable contents");

  for (const WriteFault fault :
       {WriteFault::kShortWrite, WriteFault::kTornWrite, WriteFault::kNoSpace}) {
    ScopedWriteFaultHook hook(
        [fault](const std::string&, WriteOp op) {
          return op == WriteOp::kWrite ? fault : WriteFault::kNone;
        });
    EXPECT_THROW(atomic_write_file(path, "replacement that must not land"),
                 ArtifactError);
    // The destination still holds the previous complete contents: a fault
    // can only ever tear the .tmp staging file, which readers ignore.
    EXPECT_EQ(slurp(path), "durable contents");
  }

  // The next fault-free write cleans up any torn staging file and lands.
  atomic_write_file(path, "after recovery");
  EXPECT_EQ(slurp(path), "after recovery");
  EXPECT_FALSE(fs::exists(tmp_path_for(path)));
  fs::remove_all(dir);
}

TEST(AtomicWrite, RenameFaultKeepsDestinationAbsent) {
  const std::string dir = temp_dir("fdet_artifact_rename");
  const std::string path = dir + "/fresh.txt";
  ScopedWriteFaultHook hook([](const std::string&, WriteOp op) {
    return op == WriteOp::kRename ? WriteFault::kNoSpace : WriteFault::kNone;
  });
  EXPECT_THROW(atomic_write_file(path, "never visible"), ArtifactError);
  EXPECT_FALSE(fs::exists(path));
  fs::remove_all(dir);
}

TEST(ArtifactContainer, RoundTripsHeaderAndPayload) {
  const std::string dir = temp_dir("fdet_artifact_roundtrip");
  const std::string path = dir + "/box.artifact";
  const std::string payload = "line one\nline two\nbinary-ish \x01\x02\n";

  write_artifact(path, "unit-test", 7, payload);
  const Artifact artifact = read_artifact(path, "unit-test");
  EXPECT_EQ(artifact.header.kind, "unit-test");
  EXPECT_EQ(artifact.header.payload_version, 7);
  EXPECT_EQ(artifact.header.payload_bytes, payload.size());
  EXPECT_EQ(artifact.header.payload_crc32, crc32(payload));
  EXPECT_EQ(artifact.payload, payload);
  fs::remove_all(dir);
}

TEST(ArtifactContainer, EmptyPayloadRoundTrips) {
  const std::string framed = frame_artifact("empty", 1, "");
  const Artifact artifact = parse_artifact("mem", framed);
  EXPECT_EQ(artifact.header.payload_bytes, 0u);
  EXPECT_EQ(artifact.payload, "");
}

TEST(ArtifactContainer, KindMismatchNamesThePath) {
  const std::string dir = temp_dir("fdet_artifact_kind");
  const std::string path = dir + "/box.artifact";
  write_artifact(path, "actual-kind", 1, "payload");
  try {
    read_artifact(path, "expected-kind");
    FAIL() << "kind mismatch must throw";
  } catch (const ArtifactError& error) {
    EXPECT_EQ(error.path(), path);
    EXPECT_NE(std::string(error.what()).find("expected-kind"),
              std::string::npos);
  }
  fs::remove_all(dir);
}

TEST(ArtifactContainer, DetectsBitRotViaCrc) {
  const std::string payload = "twenty bytes of data";
  std::string framed = frame_artifact("rot", 1, payload);
  // Flip one payload bit without touching the byte count.
  framed[framed.size() - 3] ^= 0x04;
  try {
    parse_artifact("rot.artifact", framed);
    FAIL() << "CRC mismatch must throw";
  } catch (const ArtifactError& error) {
    EXPECT_EQ(error.path(), "rot.artifact");
    EXPECT_NE(std::string(error.what()).find("CRC mismatch"),
              std::string::npos);
  }
}

TEST(ArtifactContainer, DetectsTruncationAndTrailingGarbage) {
  const std::string framed = frame_artifact("trunc", 1, "payload bytes here");

  // Every strict prefix must be rejected — no truncation point parses.
  for (std::size_t len = 0; len < framed.size(); ++len) {
    EXPECT_THROW(parse_artifact("trunc.artifact", framed.substr(0, len)),
                 ArtifactError)
        << "prefix of " << len << " bytes parsed";
  }
  EXPECT_THROW(parse_artifact("trunc.artifact", framed + "extra"),
               ArtifactError);
}

TEST(ArtifactContainer, RejectsUnknownContainerVersion) {
  std::string framed = frame_artifact("vers", 1, "p");
  const std::string magic = "fdet-artifact 1";
  ASSERT_EQ(framed.compare(0, magic.size(), magic), 0);
  framed[magic.size() - 1] = '2';
  EXPECT_THROW(parse_artifact("vers.artifact", framed), ArtifactError);
}

TEST(ArtifactContainer, MissingFileIsATypedError) {
  EXPECT_THROW(read_artifact("/nonexistent/dir/never.artifact"),
               ArtifactError);
}

TEST(Quarantine, RenamesToCorruptAndReplacesPrevious) {
  const std::string dir = temp_dir("fdet_artifact_quarantine");
  const std::string path = dir + "/broken.bin";
  atomic_write_file(path, "first broken file");
  const std::string quarantined = quarantine_file(path);
  EXPECT_EQ(quarantined, path + ".corrupt");
  EXPECT_FALSE(fs::exists(path));
  EXPECT_EQ(slurp(quarantined), "first broken file");

  // A second quarantine of the same path replaces the previous one instead
  // of failing — the newest evidence wins.
  atomic_write_file(path, "second broken file");
  quarantine_file(path);
  EXPECT_EQ(slurp(quarantined), "second broken file");
  fs::remove_all(dir);
}

}  // namespace
}  // namespace fdet::core
