// Additional detect-module edge cases: pipeline on minimal frames,
// busy-share bookkeeping, min-neighbors pruning and display options.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "detect/pipeline.h"
#include "facegen/dataset.h"
#include "haar/profile.h"

namespace fdet::detect {
namespace {

haar::Cascade tiny_calibrated_cascade(std::uint64_t seed) {
  core::Rng rng(seed);
  img::ImageU8 scene(120, 100);
  for (auto& p : scene.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  const auto ii = integral::integral_cpu(scene);
  haar::Cascade cascade = haar::build_profile_cascade(
      "tiny", std::vector<int>{8, 8}, seed);
  haar::calibrate_stage_thresholds(cascade, {&ii},
                                   std::vector<double>{0.3, 0.5}, 2);
  return cascade;
}

TEST(PipelineEdge, WindowSizedFrameHasExactlyOneScaleAndWindow) {
  const vgpu::DeviceSpec spec;
  const Pipeline pipeline(spec, tiny_calibrated_cascade(1), {});
  img::ImageU8 frame(haar::kWindowSize, haar::kWindowSize);
  frame.fill(128);
  const FrameResult result = pipeline.process(frame);
  ASSERT_EQ(result.scales.size(), 1u);
  std::int64_t windows = 0;
  for (const auto count : result.scales[0].depth_histogram) {
    windows += count;
  }
  EXPECT_EQ(windows, 1);  // exactly one valid anchor
}

TEST(PipelineEdge, FrameSmallerThanWindowIsRejected) {
  const vgpu::DeviceSpec spec;
  const Pipeline pipeline(spec, tiny_calibrated_cascade(2), {});
  img::ImageU8 tiny(16, 16);
  EXPECT_THROW(pipeline.process(tiny), core::CheckError);
}

TEST(PipelineEdge, BusySharesArePartitionOfUnity) {
  const vgpu::DeviceSpec spec;
  const Pipeline pipeline(spec, tiny_calibrated_cascade(3), {});
  core::Rng rng(5);
  img::ImageU8 frame(90, 70);
  for (auto& p : frame.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  const FrameResult result = pipeline.process(frame);
  const double total = result.busy_share("scan") +
                       result.busy_share("transpose") +
                       result.busy_share("cascade") +
                       result.busy_share("scale") +
                       result.busy_share("filter");
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(result.busy_share("nonexistent"), 0.0);
}

TEST(PipelineEdge, MinNeighborsPrunesSingletons) {
  const vgpu::DeviceSpec spec;
  PipelineOptions keep_all;
  PipelineOptions pruned;
  pruned.min_neighbors = 2;
  const haar::Cascade cascade = tiny_calibrated_cascade(4);
  const Pipeline loose(spec, cascade, keep_all);
  const Pipeline strict(spec, cascade, pruned);

  core::Rng rng(6);
  img::ImageU8 frame(100, 80);
  for (auto& p : frame.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  const FrameResult all = loose.process(frame);
  const FrameResult few = strict.process(frame);
  EXPECT_LE(few.detections.size(), all.detections.size());
  for (const Detection& d : few.detections) {
    EXPECT_GE(d.neighbors, 2);
  }
  // Raw windows are unaffected by grouping options.
  EXPECT_EQ(few.raw_detections.size(), all.raw_detections.size());
}

TEST(PipelineEdge, DisplayDisabledLeavesOverlayEmpty) {
  const vgpu::DeviceSpec spec;
  const Pipeline pipeline(spec, tiny_calibrated_cascade(7), {});
  img::ImageU8 frame(64, 64);
  frame.fill(100);
  const FrameResult result = pipeline.process(frame);
  EXPECT_TRUE(result.display.empty());
}

TEST(PipelineEdge, StepControlsPyramidDepth) {
  const vgpu::DeviceSpec spec;
  PipelineOptions coarse;
  coarse.pyramid_step = 2.0;
  PipelineOptions fine;
  fine.pyramid_step = 1.1;
  const haar::Cascade cascade = tiny_calibrated_cascade(8);
  img::ImageU8 frame(200, 160);
  frame.fill(90);
  const auto coarse_scales =
      Pipeline(spec, cascade, coarse).process(frame).scales.size();
  const auto fine_scales =
      Pipeline(spec, cascade, fine).process(frame).scales.size();
  EXPECT_GT(fine_scales, coarse_scales);
}

}  // namespace
}  // namespace fdet::detect
