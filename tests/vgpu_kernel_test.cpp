#include "vgpu/kernel.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/check.h"

namespace fdet::vgpu {
namespace {

DeviceSpec test_spec() { return DeviceSpec{}; }

TEST(Executor, RunsEveryThreadExactlyOnce) {
  const DeviceSpec spec = test_spec();
  KernelConfig config{.name = "cover", .grid = {4, 3, 1}, .block = {8, 4, 1}};
  std::vector<int> hits(4 * 3 * 8 * 4, 0);

  execute_kernel(spec, config,
                 [&](const ThreadCoord& t, LaneCtx& ctx, SharedMem&) {
                   const int gx = t.block_id.x * t.block.x + t.thread.x;
                   const int gy = t.block_id.y * t.block.y + t.thread.y;
                   hits[static_cast<std::size_t>(gy * 32 + gx)]++;
                   ctx.alu();
                 });

  for (const int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(Executor, CountersAccumulateArithmetic) {
  const DeviceSpec spec = test_spec();
  KernelConfig config{.name = "ops", .grid = {2, 1, 1}, .block = {32, 1, 1}};
  const LaunchCost cost = execute_kernel(
      spec, config, [](const ThreadCoord&, LaneCtx& ctx, SharedMem&) {
        ctx.alu(3);
        ctx.fma(2);
        ctx.sfu(1);
      });
  EXPECT_EQ(cost.counters.threads, 64u);
  EXPECT_EQ(cost.counters.alu_ops, 64u * 3);
  EXPECT_EQ(cost.counters.fma_ops, 64u * 2);
  EXPECT_EQ(cost.counters.sfu_ops, 64u);
}

TEST(Executor, WarpPaysForSlowestLane) {
  const DeviceSpec spec = test_spec();
  KernelConfig config{.name = "skew", .grid = {1, 1, 1}, .block = {32, 1, 1}};
  const LaunchCost cost = execute_kernel(
      spec, config, [](const ThreadCoord& t, LaneCtx& ctx, SharedMem&) {
        ctx.alu(t.thread.x == 0 ? 1000 : 1);
      });
  // Warp issue should be dominated by the 1000-op lane, not the average.
  EXPECT_GE(cost.counters.warp_issue_cycles, 1000.0 * spec.cost.alu);
  // SIMD efficiency reflects 31 mostly idle lanes.
  EXPECT_LT(cost.counters.simd_efficiency(), 0.05);
}

TEST(Executor, UniformWorkHasFullSimdEfficiency) {
  const DeviceSpec spec = test_spec();
  KernelConfig config{.name = "uniform", .grid = {2, 2, 1}, .block = {64, 1, 1}};
  const LaunchCost cost = execute_kernel(
      spec, config,
      [](const ThreadCoord&, LaneCtx& ctx, SharedMem&) { ctx.alu(10); });
  EXPECT_NEAR(cost.counters.simd_efficiency(), 1.0, 1e-9);
}

TEST(Executor, CoalescedLoadsFormSingleTransaction) {
  const DeviceSpec spec = test_spec();
  KernelConfig config{.name = "coalesced", .grid = {1, 1, 1}, .block = {32, 1, 1}};
  const LaunchCost cost = execute_kernel(
      spec, config, [](const ThreadCoord& t, LaneCtx& ctx, SharedMem&) {
        // 32 consecutive 4-byte words: one 128-byte segment.
        ctx.global_load(static_cast<std::uint64_t>(t.thread.x) * 4, 4);
      });
  EXPECT_EQ(cost.counters.global_transactions, 1u);
  EXPECT_EQ(cost.counters.global_read_bytes, 32u * 4);
}

TEST(Executor, StridedLoadsSerializeIntoManyTransactions) {
  const DeviceSpec spec = test_spec();
  KernelConfig config{.name = "strided", .grid = {1, 1, 1}, .block = {32, 1, 1}};
  const LaunchCost cost = execute_kernel(
      spec, config, [](const ThreadCoord& t, LaneCtx& ctx, SharedMem&) {
        ctx.global_load(static_cast<std::uint64_t>(t.thread.x) * 128, 4);
      });
  EXPECT_EQ(cost.counters.global_transactions, 32u);
}

TEST(Executor, StridedCostsMoreThanCoalesced) {
  const DeviceSpec spec = test_spec();
  KernelConfig config{.name = "mem", .grid = {8, 8, 1}, .block = {32, 1, 1}};
  const LaunchCost coalesced = execute_kernel(
      spec, config, [](const ThreadCoord& t, LaneCtx& ctx, SharedMem&) {
        ctx.global_load(static_cast<std::uint64_t>(t.flat_thread()) * 4, 4);
      });
  const LaunchCost strided = execute_kernel(
      spec, config, [](const ThreadCoord& t, LaneCtx& ctx, SharedMem&) {
        ctx.global_load(static_cast<std::uint64_t>(t.flat_thread()) * 256, 4);
      });
  EXPECT_GT(strided.total_service_cycles, coalesced.total_service_cycles);
}

TEST(Executor, TrackedBranchDivergenceIsDetected) {
  const DeviceSpec spec = test_spec();
  KernelConfig config{.name = "div",
                      .grid = {1, 1, 1},
                      .block = {32, 1, 1},
                      .track_branches = true};
  const LaunchCost cost = execute_kernel(
      spec, config, [](const ThreadCoord& t, LaneCtx& ctx, SharedMem&) {
        ctx.branch(true);                 // uniform
        ctx.branch(t.thread.x < 16);      // divergent
      });
  EXPECT_EQ(cost.counters.warp_branches, 2u);
  EXPECT_EQ(cost.counters.divergent_branches, 1u);
  EXPECT_NEAR(cost.counters.branch_efficiency(), 0.5, 1e-12);
}

TEST(Executor, EarlyExitLanesDoNotFlagUniformTail) {
  const DeviceSpec spec = test_spec();
  KernelConfig config{.name = "exit",
                      .grid = {1, 1, 1},
                      .block = {32, 1, 1},
                      .track_branches = true};
  // All lanes branch identically for 3 steps; half the lanes then stop.
  // The 4th step is uniform among the lanes still alive.
  const LaunchCost cost = execute_kernel(
      spec, config, [](const ThreadCoord& t, LaneCtx& ctx, SharedMem&) {
        for (int i = 0; i < 3; ++i) {
          ctx.branch(true);
        }
        if (t.thread.x < 16) {
          ctx.branch(false);
        }
      });
  EXPECT_EQ(cost.counters.warp_branches, 4u);
  EXPECT_EQ(cost.counters.divergent_branches, 0u);
}

TEST(Executor, UntrackedBranchesCountAtWarpLevel) {
  const DeviceSpec spec = test_spec();
  KernelConfig config{.name = "untracked", .grid = {1, 1, 1}, .block = {64, 1, 1}};
  const LaunchCost cost = execute_kernel(
      spec, config,
      [](const ThreadCoord&, LaneCtx& ctx, SharedMem&) { ctx.branch(true); });
  EXPECT_EQ(cost.counters.warp_branches, 2u);  // 2 warps x 1 branch
  EXPECT_EQ(cost.counters.divergent_branches, 0u);
}

TEST(Executor, SharedMemoryCarriesDataAcrossPhases) {
  const DeviceSpec spec = test_spec();
  KernelConfig config{.name = "twophase",
                      .grid = {2, 1, 1},
                      .block = {32, 1, 1},
                      .shared_bytes = 32 * static_cast<int>(sizeof(int))};
  std::vector<int> out(64, -1);

  execute_kernel(
      spec, config,
      [](const ThreadCoord& t, LaneCtx& ctx, SharedMem& shared) {
        auto tile = shared.array<int>(32);
        tile[static_cast<std::size_t>(t.thread.x)] = t.thread.x * 2;
        ctx.shared_access();
      },
      [&](const ThreadCoord& t, LaneCtx& ctx, SharedMem& shared) {
        auto tile = shared.array<int>(32);
        // Read a *different* lane's value: only valid because of the
        // inter-phase barrier.
        const int other = (t.thread.x + 1) % 32;
        out[static_cast<std::size_t>(t.flat_block() * 32 + t.thread.x)] =
            tile[static_cast<std::size_t>(other)];
        ctx.shared_access();
      });

  for (int b = 0; b < 2; ++b) {
    for (int x = 0; x < 32; ++x) {
      EXPECT_EQ(out[static_cast<std::size_t>(b * 32 + x)], ((x + 1) % 32) * 2);
    }
  }
}

TEST(Executor, MultiPhaseChargesBarrier) {
  const DeviceSpec spec = test_spec();
  KernelConfig config{.name = "barrier", .grid = {1, 1, 1}, .block = {32, 1, 1}};
  const auto nop = [](const ThreadCoord&, LaneCtx&, SharedMem&) {};
  const LaunchCost one = execute_kernel(spec, config, nop);
  const LaunchCost two = execute_kernel(spec, config, nop, nop);
  EXPECT_GT(two.total_service_cycles, one.total_service_cycles);
}

TEST(Executor, SerializedConstantAccessCostsMore) {
  const DeviceSpec spec = test_spec();
  KernelConfig broadcast{.name = "cb", .grid = {4, 1, 1}, .block = {64, 1, 1}};
  KernelConfig serialized = broadcast;
  serialized.constant_broadcast = false;
  const auto body = [](const ThreadCoord&, LaneCtx& ctx, SharedMem&) {
    ctx.constant_load(16);
  };
  const LaunchCost fast = execute_kernel(spec, broadcast, body);
  const LaunchCost slow = execute_kernel(spec, serialized, body);
  EXPECT_GT(slow.total_service_cycles, fast.total_service_cycles);
  EXPECT_EQ(slow.counters.constant_accesses, fast.counters.constant_accesses);
}

TEST(Executor, RejectsInvalidLaunches) {
  const DeviceSpec spec = test_spec();
  KernelConfig too_big{.name = "big", .grid = {1, 1, 1}, .block = {2048, 1, 1}};
  EXPECT_THROW(execute_kernel(spec, too_big,
                              [](const ThreadCoord&, LaneCtx&, SharedMem&) {}),
               core::CheckError);

  KernelConfig no_resident{.name = "regs",
                           .grid = {1, 1, 1},
                           .block = {1024, 1, 1},
                           .regs_per_thread = 64};
  EXPECT_THROW(execute_kernel(spec, no_resident,
                              [](const ThreadCoord&, LaneCtx&, SharedMem&) {}),
               core::CheckError);
}

TEST(Executor, SharedOverflowIsCaught) {
  const DeviceSpec spec = test_spec();
  KernelConfig config{.name = "overflow",
                      .grid = {1, 1, 1},
                      .block = {32, 1, 1},
                      .shared_bytes = 64};
  EXPECT_THROW(
      execute_kernel(spec, config,
                     [](const ThreadCoord&, LaneCtx&, SharedMem& shared) {
                       (void)shared.array<double>(100);
                     }),
      core::CheckError);
}

TEST(Executor, PartialWarpsAreHandled) {
  const DeviceSpec spec = test_spec();
  KernelConfig config{.name = "partial", .grid = {1, 1, 1}, .block = {40, 1, 1}};
  const LaunchCost cost = execute_kernel(
      spec, config,
      [](const ThreadCoord&, LaneCtx& ctx, SharedMem&) { ctx.alu(); });
  EXPECT_EQ(cost.counters.threads, 40u);
  EXPECT_EQ(cost.counters.alu_ops, 40u);
  EXPECT_EQ(cost.counters.warps, 2u);
}

TEST(Executor, HigherOccupancyHidesMoreLatency) {
  const DeviceSpec spec = test_spec();
  // Same per-block work; the low-occupancy variant wastes shared memory so
  // fewer blocks are resident and stalls are exposed.
  KernelConfig high{.name = "high", .grid = {14, 1, 1}, .block = {192, 1, 1}};
  KernelConfig low = high;
  low.name = "low";
  low.shared_bytes = 40 * 1024;  // 1 block per SM
  const auto body = [](const ThreadCoord& t, LaneCtx& ctx, SharedMem&) {
    ctx.global_load(static_cast<std::uint64_t>(t.flat_thread()) * 4, 4);
    ctx.alu(4);
  };
  const LaunchCost fast = execute_kernel(spec, high, body);
  const LaunchCost slow = execute_kernel(spec, low, body);
  EXPECT_GT(slow.total_service_cycles, fast.total_service_cycles);
}

}  // namespace
}  // namespace fdet::vgpu
