// Boundary validation of the NV12 frame container: the decoder hands its
// output straight to the detection pipeline, so geometry errors must be
// rejected here with the offending dimensions named — not surface later
// as opaque plane-allocation failures.
#include "img/nv12.h"

#include <gtest/gtest.h>

#include <string>

#include "core/check.h"

namespace fdet::img {
namespace {

TEST(Nv12Frame, AllocatesZeroedPlanesWithHalfHeightChroma) {
  const Nv12Frame frame(64, 48);
  EXPECT_EQ(frame.width(), 64);
  EXPECT_EQ(frame.height(), 48);
  EXPECT_EQ(frame.luma().width(), 64);
  EXPECT_EQ(frame.luma().height(), 48);
  EXPECT_EQ(frame.chroma().width(), 64);   // interleaved CbCr
  EXPECT_EQ(frame.chroma().height(), 24);  // half vertical resolution
  for (const auto px : frame.luma().pixels()) {
    ASSERT_EQ(px, 0);
  }
}

TEST(Nv12Frame, DefaultConstructedFrameIsEmpty) {
  const Nv12Frame frame;
  EXPECT_EQ(frame.width(), 0);
  EXPECT_EQ(frame.height(), 0);
  EXPECT_TRUE(frame.luma().empty());
}

TEST(Nv12Frame, RejectsZeroAndNegativeDimensionsNamingTheGeometry) {
  for (const auto& [w, h] : {std::pair{0, 48}, {64, 0}, {-2, 48}, {64, -4}}) {
    try {
      const Nv12Frame frame(w, h);
      FAIL() << "expected CheckError for " << w << "x" << h;
    } catch (const core::CheckError& error) {
      const std::string what = error.what();
      EXPECT_NE(what.find(std::to_string(w) + "x" + std::to_string(h)),
                std::string::npos)
          << what;
    }
  }
}

TEST(Nv12Frame, RejectsOddDimensionsBecauseOf420Sampling) {
  EXPECT_THROW(Nv12Frame(63, 48), core::CheckError);
  EXPECT_THROW(Nv12Frame(64, 47), core::CheckError);
  try {
    const Nv12Frame frame(63, 47);
    FAIL() << "expected CheckError";
  } catch (const core::CheckError& error) {
    EXPECT_NE(std::string(error.what()).find("even"), std::string::npos)
        << error.what();
  }
}

TEST(Nv12Frame, FromPlanesAdoptsMatchingPlanes) {
  ImageU8 luma(32, 24, 200);
  ImageU8 chroma(32, 12, 96);
  const Nv12Frame frame =
      Nv12Frame::from_planes(std::move(luma), std::move(chroma));
  EXPECT_EQ(frame.width(), 32);
  EXPECT_EQ(frame.height(), 24);
  EXPECT_EQ(frame.luma().at(0, 0), 200);
  EXPECT_EQ(frame.chroma().at(0, 0), 96);
}

TEST(Nv12Frame, FromPlanesRejectsBadLumaGeometry) {
  // Same rules as the allocating constructor: positive and even. The
  // chroma plane is sized to match so only the luma check can fire.
  EXPECT_THROW(Nv12Frame::from_planes(ImageU8(), ImageU8()),
               core::CheckError);
  EXPECT_THROW(Nv12Frame::from_planes(ImageU8(63, 48), ImageU8(63, 24)),
               core::CheckError);
  EXPECT_THROW(Nv12Frame::from_planes(ImageU8(64, 46 + 1), ImageU8(64, 23)),
               core::CheckError);
}

TEST(Nv12Frame, FromPlanesRejectsChromaGeometryMismatchNamingPlanes) {
  for (const auto& [cw, ch] :
       {std::pair{64, 48}, {64, 12}, {32, 24}, {64, 23}}) {
    try {
      Nv12Frame::from_planes(ImageU8(64, 48), ImageU8(cw, ch));
      FAIL() << "expected CheckError for chroma " << cw << "x" << ch;
    } catch (const core::CheckError& error) {
      const std::string what = error.what();
      EXPECT_NE(what.find("chroma"), std::string::npos) << what;
    }
  }
}

TEST(Nv12Frame, FromGrayRejectsEmptyAndOddInputs) {
  EXPECT_THROW(Nv12Frame::from_gray(ImageU8()), core::CheckError);
  EXPECT_THROW(Nv12Frame::from_gray(ImageU8(63, 48)), core::CheckError);

  const ImageU8 gray(32, 24, 128);
  const Nv12Frame frame = Nv12Frame::from_gray(gray);
  EXPECT_EQ(frame.luma(), gray);
  EXPECT_EQ(frame.chroma().at(0, 0), 128);  // neutral chroma
}

}  // namespace
}  // namespace fdet::img
