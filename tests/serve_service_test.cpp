#include "serve/service.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/check.h"
#include "facegen/dataset.h"
#include "ingest/lossy.h"
#include "ingest/mutate.h"
#include "ingest/registry.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "train/boost.h"
#include "video/decoder.h"

namespace fdet::serve {
namespace {

/// Small trained cascade shared by the service tests (trained once).
const haar::Cascade& service_cascade() {
  static const haar::Cascade cascade = [] {
    const auto set = facegen::build_training_set(200, 30, 64, 2024);
    train::TrainOptions options;
    options.stage_sizes = {6, 10, 14};
    options.feature_pool = 300;
    options.negatives_per_stage = 250;
    options.stage_hit_target = 0.99;
    options.seed = 11;
    return train::train_cascade(set, options, "serve-test").cascade;
  }();
  return cascade;
}

video::MockH264Decoder test_decoder() {
  static const video::SyntheticTrailer trailer = [] {
    video::TrailerSpec spec;
    spec.title = "serve-test";
    spec.width = 160;
    spec.height = 120;
    spec.frames = 24;
    spec.shot_frames = 8;
    spec.face_density = 1.5;
    spec.seed = 9;
    return video::SyntheticTrailer(spec);
  }();
  return video::MockH264Decoder(trailer);
}

ServiceOptions generous_options() {
  ServiceOptions options;
  options.deadline_ms = 50.0;  // far above the tiny-frame latency envelope
  return options;
}

TEST(StreamingService, FaultFreeRunServesEveryFrameDeterministically) {
  const video::MockH264Decoder decoder = test_decoder();
  StreamingService service(vgpu::DeviceSpec{}, service_cascade(), {},
                           generous_options());
  const ServiceReport a = service.run(decoder, 8);
  const ServiceReport b = service.run(decoder, 8);

  ASSERT_EQ(a.frames.size(), 8u);
  EXPECT_EQ(a.ok, 8);
  EXPECT_EQ(a.failed + a.dropped + a.degraded, 0);
  EXPECT_EQ(a.faults_injected, 0);
  EXPECT_EQ(a.final_degradation_level, 0);
  ASSERT_EQ(b.frames.size(), a.frames.size());
  for (std::size_t i = 0; i < a.frames.size(); ++i) {
    EXPECT_EQ(a.frames[i].status, b.frames[i].status);
    EXPECT_DOUBLE_EQ(a.frames[i].latency_ms, b.frames[i].latency_ms);
    ASSERT_EQ(a.frames[i].detections.size(), b.frames[i].detections.size());
    for (std::size_t d = 0; d < a.frames[i].detections.size(); ++d) {
      EXPECT_EQ(a.frames[i].detections[d].box, b.frames[i].detections[d].box);
    }
  }
}

TEST(StreamingService, TransientDecodeFaultRetriesAndRecovers) {
  const video::MockH264Decoder decoder = test_decoder();
  StreamingService service(vgpu::DeviceSpec{}, service_cascade(), {},
                           generous_options());
  const FaultPlan plan = FaultPlan::parse("decode@2x2", 1);
  const ServiceReport report = service.run(decoder, 6, &plan);

  EXPECT_EQ(report.failed, 0);
  EXPECT_EQ(report.faults_injected, 1);
  const ServedFrame& frame = report.frames[2];
  EXPECT_EQ(frame.status, FrameStatus::kOk);
  EXPECT_EQ(frame.retries, 2);
  EXPECT_GT(frame.backoff_ms, 0.0);
  EXPECT_TRUE(frame.fault_injected);
}

TEST(StreamingService, ExhaustedRetriesQuarantineTheFrame) {
  const video::MockH264Decoder decoder = test_decoder();
  ServiceOptions options = generous_options();
  options.retry.max_attempts = 2;
  StreamingService service(vgpu::DeviceSpec{}, service_cascade(), {},
                           options);
  const FaultPlan plan = FaultPlan::parse("decode@1x2", 1);
  const ServiceReport report = service.run(decoder, 4, &plan);

  const ServedFrame& frame = report.frames[1];
  EXPECT_EQ(frame.status, FrameStatus::kFailed);
  ASSERT_TRUE(frame.error.has_value());
  EXPECT_EQ(frame.error->stage, "decode");
  EXPECT_EQ(frame.error->cls, ErrorClass::kTransient);
  EXPECT_EQ(frame.error->attempts, 2);
  // Quarantine is per frame: the stream carries on.
  EXPECT_EQ(report.frames[2].status, FrameStatus::kOk);
  EXPECT_EQ(report.frames[3].status, FrameStatus::kOk);
}

TEST(StreamingService, HardOverflowFaultQuarantinesWithoutRetry) {
  const video::MockH264Decoder decoder = test_decoder();
  StreamingService service(vgpu::DeviceSpec{}, service_cascade(), {},
                           generous_options());
  const FaultPlan plan = FaultPlan::parse("const@1", 1);
  const ServiceReport report = service.run(decoder, 4, &plan);

  const ServedFrame& frame = report.frames[1];
  EXPECT_EQ(frame.status, FrameStatus::kFailed);
  ASSERT_TRUE(frame.error.has_value());
  EXPECT_EQ(frame.error->stage, "detect");
  EXPECT_EQ(frame.error->cls, ErrorClass::kResource);
  EXPECT_EQ(frame.retries, 0);  // hard faults are not retried
  EXPECT_EQ(report.frames[2].status, FrameStatus::kOk);
}

TEST(StreamingService, CorruptLumaStillServesTheFrame) {
  const video::MockH264Decoder decoder = test_decoder();
  StreamingService service(vgpu::DeviceSpec{}, service_cascade(), {},
                           generous_options());
  const FaultPlan plan = FaultPlan::parse("corrupt@1", 1);
  const ServiceReport report = service.run(decoder, 3, &plan);

  EXPECT_EQ(report.frames[1].status, FrameStatus::kOk);
  EXPECT_TRUE(report.frames[1].fault_injected);
  EXPECT_EQ(report.failed, 0);
}

TEST(StreamingService, BreakerTripsFailsFastAndRecoversToFullQuality) {
  const video::MockH264Decoder decoder = test_decoder();
  ServiceOptions options = generous_options();
  options.breaker.failure_threshold = 3;
  options.breaker.cooldown_frames = 2;
  StreamingService service(vgpu::DeviceSpec{}, service_cascade(), {},
                           options);
  // Three consecutive frames exhaust their decode retries -> breaker trips.
  const FaultPlan plan =
      FaultPlan::parse("decode@2x3,decode@3x3,decode@4x3", 1);
  const ServiceReport report = service.run(decoder, 20, &plan);

  EXPECT_EQ(report.breaker_trips, 1);
  // Cooling down: the frame after the trip is rejected without running.
  const ServedFrame& rejected = report.frames[5];
  EXPECT_EQ(rejected.status, FrameStatus::kFailed);
  ASSERT_TRUE(rejected.error.has_value());
  EXPECT_NE(rejected.error->message.find("breaker"), std::string::npos);
  // The trip forces the serial-exec rung while the stage is unhealthy.
  EXPECT_TRUE(DegradationLadder::step_at(report.frames[6].degradation_level)
                  .serial_exec);
  // The half-open probe succeeds and the ladder climbs all the way back.
  EXPECT_EQ(report.final_degradation_level, 0);
  EXPECT_EQ(service.decode_breaker(), BreakerState::kClosed);
  EXPECT_EQ(report.frames.back().status, FrameStatus::kOk);
  EXPECT_LE(report.max_consecutive_unserved, 4);
}

TEST(StreamingService, DeadlineMissesWalkTheDegradationLadder) {
  const video::MockH264Decoder decoder = test_decoder();
  ServiceOptions options;
  options.deadline_ms = 1e-3;  // unmeetable: every served frame misses
  StreamingService service(vgpu::DeviceSpec{}, service_cascade(), {},
                           options);
  const ServiceReport report = service.run(decoder, 10);

  EXPECT_EQ(report.final_degradation_level, DegradationLadder::max_level());
  EXPECT_GT(report.deadline_misses, 0);
  EXPECT_GT(report.degraded, 0);
  // Level rises monotonically here (nothing ever recovers).
  for (std::size_t i = 1; i < report.frames.size(); ++i) {
    EXPECT_GE(report.frames[i].degradation_level,
              report.frames[i - 1].degradation_level);
  }
}

TEST(StreamingService, BackpressureDropsFramesWhenTheQueueFills) {
  const video::MockH264Decoder decoder = test_decoder();
  ServiceOptions options = generous_options();
  options.fps = 100000.0;  // arrivals far faster than service time
  options.queue_capacity = 2;
  StreamingService service(vgpu::DeviceSpec{}, service_cascade(), {},
                           options);
  const ServiceReport report = service.run(decoder, 12);

  EXPECT_GT(report.dropped, 0);
  EXPECT_GT(report.ok + report.degraded, 0);  // not everything is shed
  for (const ServedFrame& frame : report.frames) {
    if (frame.status == FrameStatus::kDropped) {
      EXPECT_GE(frame.queue_depth, options.queue_capacity);
      EXPECT_TRUE(frame.detections.empty());
    }
  }
}

TEST(StreamingService, PublishesServeMetrics) {
  const video::MockH264Decoder decoder = test_decoder();
  obs::Registry registry;
  StreamingService service(vgpu::DeviceSpec{}, service_cascade(), {},
                           generous_options(), &registry);
  const FaultPlan plan = FaultPlan::parse("decode@1x2,const@3", 1);
  service.run(decoder, 6, &plan);

  EXPECT_GT(registry.counter("serve.frames", {{"status", "ok"}}).value(), 0.0);
  EXPECT_GT(registry.counter("serve.retries", {{"stage", "decode"}}).value(),
            0.0);
  EXPECT_GT(
      registry.counter("serve.faults.injected", {{"kind", "decode"}}).value(),
      0.0);
  EXPECT_GT(
      registry.counter("serve.faults.recovered", {{"stage", "decode"}})
          .value(),
      0.0);
  EXPECT_GT(registry
                .counter("serve.frame_errors",
                         {{"stage", "detect"}, {"class", "resource"}})
                .value(),
            0.0);
  EXPECT_EQ(registry.gauge("serve.degradation.level").value(), 0.0);
}

TEST(StreamingService, FramesCarryDeterministicTraceIds) {
  const video::MockH264Decoder decoder = test_decoder();
  StreamingService service(vgpu::DeviceSpec{}, service_cascade(), {},
                           generous_options());
  const ServiceReport a = service.run(decoder, 4);
  const ServiceReport b = service.run(decoder, 4);
  ASSERT_EQ(a.frames.size(), 4u);
  for (std::size_t i = 0; i < a.frames.size(); ++i) {
    EXPECT_NE(a.frames[i].trace_id, 0u);
    EXPECT_EQ(a.frames[i].trace_id, b.frames[i].trace_id);
    // Derived from (ServiceOptions::seed, frame index), reproducibly.
    EXPECT_EQ(a.frames[i].trace_id,
              obs::make_frame_context(service.options().seed,
                                      static_cast<int>(i))
                  .trace_id);
    for (std::size_t j = i + 1; j < a.frames.size(); ++j) {
      EXPECT_NE(a.frames[i].trace_id, a.frames[j].trace_id);
    }
  }
  // Clean frames carry no cause chain.
  for (const ServedFrame& frame : a.frames) {
    EXPECT_TRUE(frame.cause.empty()) << frame.cause;
  }
}

TEST(StreamingService, CauseChainsNameTheFaultAndItsConsequences) {
  const video::MockH264Decoder decoder = test_decoder();
  StreamingService service(vgpu::DeviceSpec{}, service_cascade(), {},
                           generous_options());
  const FaultPlan plan = FaultPlan::parse("decode@2x1,const@4", 1);
  const ServiceReport report = service.run(decoder, 6, &plan);

  ASSERT_EQ(report.frames.size(), 6u);
  // Frame 2: transient decode fault -> retried.
  EXPECT_NE(report.frames[2].cause.find("fault:decode"), std::string::npos)
      << report.frames[2].cause;
  EXPECT_NE(report.frames[2].cause.find("retry:decode"), std::string::npos)
      << report.frames[2].cause;
  // Frame 4: hard overflow -> quarantined, chain oldest-first.
  const std::string& hard = report.frames[4].cause;
  EXPECT_NE(hard.find("fault:const"), std::string::npos) << hard;
  EXPECT_NE(hard.find("quarantine:detect"), std::string::npos) << hard;
  EXPECT_LT(hard.find("fault:const"), hard.find("quarantine:detect"));
}

TEST(StreamingService, AnomalyDumpsNameFrameStageAndCause) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "fdet_service_dumps";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const video::MockH264Decoder decoder = test_decoder();
  ServiceOptions options = generous_options();
  options.obs.dump_dir = dir.string();
  StreamingService service(vgpu::DeviceSpec{}, service_cascade(), {},
                           options);
  const FaultPlan plan = FaultPlan::parse("const@3", 1);
  const ServiceReport report = service.run(decoder, 6, &plan);

  ASSERT_FALSE(report.dumps.empty());
  bool saw_quarantine = false;
  for (const AnomalyDump& dump : report.dumps) {
    EXPECT_EQ(dump.frame, 3);
    EXPECT_TRUE(fs::exists(dump.path)) << dump.path;
    const obs::json::Value doc = obs::json::parse_file(dump.path);
    const obs::json::Value& anomaly = doc.at("anomaly");
    EXPECT_DOUBLE_EQ(anomaly.at("frame").as_number(), 3.0);
    EXPECT_NE(anomaly.at("cause").as_string().find("fault:const"),
              std::string::npos);
    EXPECT_FALSE(doc.at("traceEvents").as_array().empty());
    saw_quarantine |= anomaly.at("kind").as_string() == "quarantine";
    // The causal chain in the header matches the frame record.
    EXPECT_EQ(anomaly.at("cause").as_string(), report.frames[3].cause);
    EXPECT_EQ(anomaly.at("trace_id").as_string(),
              obs::hex_id(report.frames[3].trace_id));
  }
  EXPECT_TRUE(saw_quarantine);
  fs::remove_all(dir);
}

TEST(StreamingService, ReportSloSnapshotCoversServedFrames) {
  const video::MockH264Decoder decoder = test_decoder();
  obs::Registry registry;
  StreamingService service(vgpu::DeviceSpec{}, service_cascade(), {},
                           generous_options(), &registry);
  const ServiceReport report = service.run(decoder, 8);

  EXPECT_EQ(report.slo.frames, 8u);
  EXPECT_EQ(report.slo.misses, 0u);
  EXPECT_GT(report.slo.p50_ms, 0.0);
  EXPECT_GE(report.slo.p99_ms, report.slo.p50_ms);
  EXPECT_DOUBLE_EQ(registry.gauge("slo.frames").value(), 8.0);
  EXPECT_DOUBLE_EQ(registry.gauge("slo.deadline_miss_ratio").value(), 0.0);
  EXPECT_GT(registry.gauge("slo.latency_p50_ms").value(), 0.0);
  EXPECT_GT(
      registry.gauge("slo.stage_p99_ms", {{"stage", "detect"}}).value(), 0.0);
}

TEST(StreamingService, LegacyLadderPathMatchesSloDrivenDefault) {
  // The SLO-driven ladder is the default; the legacy observe() path must
  // produce the same served stream (the equivalence obs_slo_test proves
  // at the state-machine level, demonstrated here end-to-end).
  const video::MockH264Decoder decoder = test_decoder();
  ServiceOptions slo_options = generous_options();
  ServiceOptions legacy_options = generous_options();
  legacy_options.obs.slo_ladder = false;

  StreamingService slo_service(vgpu::DeviceSpec{}, service_cascade(), {},
                               slo_options);
  StreamingService legacy_service(vgpu::DeviceSpec{}, service_cascade(), {},
                                  legacy_options);
  const FaultPlan plan = FaultPlan::parse("launch@2x2,decode@5x1", 7);
  const ServiceReport a = slo_service.run(decoder, 10, &plan);
  const ServiceReport b = legacy_service.run(decoder, 10, &plan);

  ASSERT_EQ(a.frames.size(), b.frames.size());
  for (std::size_t i = 0; i < a.frames.size(); ++i) {
    EXPECT_EQ(a.frames[i].status, b.frames[i].status) << "frame " << i;
    EXPECT_EQ(a.frames[i].degradation_level, b.frames[i].degradation_level)
        << "frame " << i;
    EXPECT_DOUBLE_EQ(a.frames[i].latency_ms, b.frames[i].latency_ms)
        << "frame " << i;
  }
  EXPECT_EQ(a.degradation_shifts, b.degradation_shifts);
}

/// The serve-test footage serialized into the raw byte-stream container,
/// so the service runs over a validating parser instead of the mock
/// hardware decoder.
std::string test_raw_stream() {
  video::TrailerSpec spec;
  spec.title = "serve-test";
  spec.width = 160;
  spec.height = 120;
  spec.frames = 24;
  spec.shot_frames = 8;
  spec.face_density = 1.5;
  spec.seed = 9;
  return ingest::encode_stream(ingest::Format::kRaw,
                               video::SyntheticTrailer(spec));
}

TEST(StreamingService, ByteStreamSourceServesLikeTheMockDecoder) {
  StreamingService service(vgpu::DeviceSpec{}, service_cascade(), {},
                           generous_options());
  const auto source = ingest::open_stream(test_raw_stream());
  const ServiceReport report = service.run(*source, 6);
  EXPECT_EQ(report.ok, 6);
  EXPECT_EQ(report.ingest_rejects, 0);
  for (const ServedFrame& frame : report.frames) {
    EXPECT_GT(frame.decode_ms, 0.0);
  }
}

TEST(StreamingService, MalformedMidStreamBurstShedsAndRecovers) {
  ServiceOptions options = generous_options();
  options.breaker.failure_threshold = 3;
  options.breaker.cooldown_frames = 2;
  StreamingService service(vgpu::DeviceSpec{}, service_cascade(), {},
                           options);
  // Frames 4-6 arrive with flipped payload bytes; the raw container's
  // per-frame CRC turns each into a typed IngestError mid-stream.
  const ingest::CorruptingSource source(
      test_raw_stream(), ingest::CorruptPlan::parse("flip@4,flip@5,flip@6", 3));
  const ServiceReport report = service.run(source, 20);

  // Each malformed frame quarantines without retry (the bytes will not
  // get better) and counts as an ingest reject.
  EXPECT_EQ(report.ingest_rejects, 3);
  for (const int i : {4, 5, 6}) {
    const ServedFrame& frame = report.frames[static_cast<std::size_t>(i)];
    EXPECT_EQ(frame.status, FrameStatus::kFailed) << "frame " << i;
    ASSERT_TRUE(frame.error.has_value());
    EXPECT_EQ(frame.error->stage, "decode");
    EXPECT_EQ(frame.error->cls, ErrorClass::kMalformed);
    EXPECT_EQ(frame.retries, 0);
  }
  // The burst trips the decode breaker, which forces the serial-exec
  // rung while unhealthy; the stream then climbs back to full quality.
  EXPECT_EQ(report.breaker_trips, 1);
  ASSERT_TRUE(report.frames[7].error.has_value());
  EXPECT_NE(report.frames[7].error->message.find("breaker"),
            std::string::npos);
  EXPECT_TRUE(DegradationLadder::step_at(report.frames[8].degradation_level)
                  .serial_exec);
  EXPECT_EQ(report.final_degradation_level, 0);
  EXPECT_EQ(report.frames.back().status, FrameStatus::kOk);
  // Frames outside the burst are unaffected.
  EXPECT_EQ(report.frames[3].status, FrameStatus::kOk);
}

TEST(StreamingService, PublishesIngestMetricsPerFormatAndKind) {
  obs::Registry registry;
  StreamingService service(vgpu::DeviceSpec{}, service_cascade(), {},
                           generous_options(), &registry);
  const ingest::CorruptingSource source(
      test_raw_stream(), ingest::CorruptPlan::parse("flip@1,flip@2", 3));
  service.run(source, 6);

  EXPECT_EQ(registry.counter("ingest.frames", {{"format", "raw"}}).value(),
            4.0);
  EXPECT_EQ(registry
                .counter("ingest.rejects",
                         {{"format", "raw"}, {"kind", "checksum-mismatch"}})
                .value(),
            2.0);
  EXPECT_EQ(registry
                .counter("serve.frame_errors",
                         {{"stage", "decode"}, {"class", "malformed"}})
                .value(),
            2.0);
  EXPECT_EQ(registry
                .histogram("ingest.decode_ms",
                           {0.5, 1, 2, 4, 8, 12, 16, 24, 32})
                .count(),
            4.0);
}

TEST(StreamingService, BitstreamFaultInjectsATypedIngestReject) {
  const video::MockH264Decoder decoder = test_decoder();
  obs::Registry registry;
  StreamingService service(vgpu::DeviceSpec{}, service_cascade(), {},
                           generous_options(), &registry);
  const FaultPlan plan = FaultPlan::parse("bitstream@2", 1);
  const ServiceReport report = service.run(decoder, 5, &plan);

  // A bitstream fault is hard: malformed bytes fail identically on every
  // attempt, so the frame quarantines without retry.
  const ServedFrame& frame = report.frames[2];
  EXPECT_EQ(frame.status, FrameStatus::kFailed);
  ASSERT_TRUE(frame.error.has_value());
  EXPECT_EQ(frame.error->cls, ErrorClass::kMalformed);
  EXPECT_EQ(frame.retries, 0);
  EXPECT_TRUE(frame.fault_injected);
  EXPECT_EQ(report.faults_injected, 1);
  EXPECT_EQ(report.ingest_rejects, 1);
  EXPECT_EQ(registry
                .counter("ingest.rejects",
                         {{"format", "h264"}, {"kind", "injected"}})
                .value(),
            1.0);
  EXPECT_EQ(report.frames[3].status, FrameStatus::kOk);
}

TEST(StreamingService, RejectsUnusableOptions) {
  ServiceOptions bad_fps;
  bad_fps.fps = 0.0;
  EXPECT_THROW(StreamingService(vgpu::DeviceSpec{}, service_cascade(), {},
                                bad_fps),
               core::CheckError);
  ServiceOptions bad_queue;
  bad_queue.queue_capacity = 0;
  EXPECT_THROW(StreamingService(vgpu::DeviceSpec{}, service_cascade(), {},
                                bad_queue),
               core::CheckError);
  const video::MockH264Decoder decoder = test_decoder();
  StreamingService service(vgpu::DeviceSpec{}, service_cascade(), {},
                           generous_options());
  EXPECT_THROW(service.run(decoder, 0), core::CheckError);
  EXPECT_THROW(service.run(decoder, decoder.frame_count() + 1),
               core::CheckError);
}

TEST(StreamingService, LossyTransportDropsTagsAndServesTheRest) {
  obs::Registry registry;
  StreamingService service(vgpu::DeviceSpec{}, service_cascade(), {},
                           generous_options(), &registry);
  const video::MockH264Decoder decoder = test_decoder();
  const ingest::H264FrameSource inner(decoder);
  ingest::LossyOptions lossy_options;
  lossy_options.drop_probability = 0.15;
  lossy_options.duplicate_probability = 0.15;
  lossy_options.reorder_probability = 0.25;
  lossy_options.seed = 21;
  const ingest::LossyReorderSource source(inner, lossy_options);
  ASSERT_GT(source.dropped(), 0);
  ASSERT_GT(source.duplicated(), 0);
  ASSERT_GT(source.displaced(), 0);
  const ServiceReport report =
      service.run(source, source.frame_count());

  // A delivery gap is a typed, counted drop — never a quarantine.
  EXPECT_EQ(report.missing_frames, source.dropped());
  EXPECT_EQ(report.failed, 0);
  EXPECT_GE(report.dropped, report.missing_frames);
  // Late and duplicate deliveries are served and cause-tagged.
  EXPECT_GT(report.out_of_order, 0);
  EXPECT_GT(report.duplicates, 0);
  int missing_seen = 0;
  for (const ServedFrame& frame : report.frames) {
    if (frame.missing) {
      ++missing_seen;
      EXPECT_EQ(frame.status, FrameStatus::kDropped);
      EXPECT_NE(frame.cause.find("missing-frame"), std::string::npos);
      EXPECT_TRUE(frame.detections.empty());
    }
    if (frame.arrival == ingest::FrameArrival::kOutOfOrder &&
        frame.status == FrameStatus::kOk) {
      EXPECT_NE(frame.cause.find("out-of-order"), std::string::npos);
    }
    if (frame.arrival == ingest::FrameArrival::kDuplicate &&
        frame.status == FrameStatus::kOk) {
      EXPECT_NE(frame.cause.find("duplicate-frame"), std::string::npos);
    }
  }
  EXPECT_EQ(missing_seen, report.missing_frames);
  // The transport damage reaches the metrics registry.
  bool missing_metric = false;
  for (const auto& sample : registry.samples()) {
    missing_metric |= sample.name == "ingest.missing";
  }
  EXPECT_TRUE(missing_metric);
}

TEST(StreamingService, DuplicateDeliveriesServeIdenticalDetections) {
  StreamingService service(vgpu::DeviceSpec{}, service_cascade(), {},
                           generous_options());
  const video::MockH264Decoder decoder = test_decoder();
  const ingest::H264FrameSource inner(decoder);
  ingest::LossyOptions lossy_options;
  lossy_options.duplicate_probability = 0.3;
  lossy_options.seed = 8;
  const ingest::LossyReorderSource source(inner, lossy_options);
  ASSERT_GT(source.duplicated(), 0);
  const ServiceReport report =
      service.run(source, source.frame_count());

  int compared = 0;
  for (std::size_t i = 1; i < report.frames.size(); ++i) {
    const ServedFrame& dup = report.frames[i];
    const ServedFrame& first = report.frames[i - 1];
    if (dup.arrival != ingest::FrameArrival::kDuplicate ||
        dup.status != FrameStatus::kOk ||
        first.status != FrameStatus::kOk ||
        first.degradation_level != dup.degradation_level) {
      continue;
    }
    ++compared;
    ASSERT_EQ(dup.detections.size(), first.detections.size());
    for (std::size_t d = 0; d < dup.detections.size(); ++d) {
      EXPECT_EQ(dup.detections[d].box, first.detections[d].box);
      EXPECT_EQ(dup.detections[d].score, first.detections[d].score);
    }
  }
  EXPECT_GT(compared, 0);
}

}  // namespace
}  // namespace fdet::serve
