// Statistical baseline comparison: direction inference, noise bands
// (relative threshold vs MAD), all five verdicts, ignore list, and the
// text report used by bench --baseline gating.
#include "obs/compare.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fdet::obs {
namespace {

MetricSeries series(std::string name, std::vector<double> samples,
                    Labels labels = {}, std::string kind = "gauge") {
  MetricSeries s;
  s.name = std::move(name);
  s.kind = std::move(kind);
  s.labels = std::move(labels);
  s.samples = std::move(samples);
  s.median = median_of(s.samples);
  s.mad = mad_of(s.samples, s.median);
  return s;
}

RunRecord record(std::vector<MetricSeries> metrics) {
  RunRecord r;
  r.artifact = "test";
  r.repeats = static_cast<int>(metrics.empty() ? 1 : metrics[0].samples.size());
  r.metrics = std::move(metrics);
  return r;
}

const MetricVerdict& verdict_for(const CompareReport& report,
                                 const std::string& name) {
  for (const MetricVerdict& v : report.verdicts) {
    if (v.name == name) {
      return v;
    }
  }
  ADD_FAILURE() << "no verdict for " << name;
  static MetricVerdict none;
  return none;
}

TEST(MetricDirection, InferredFromNameConventions) {
  EXPECT_EQ(metric_direction("vgpu.makespan_ms"), Direction::kLowerIsBetter);
  EXPECT_EQ(metric_direction("detect.frame_latency_ms.sum"),
            Direction::kLowerIsBetter);
  EXPECT_EQ(metric_direction("vgpu.kernel_duration_ms.sum"),
            Direction::kLowerIsBetter);
  EXPECT_EQ(metric_direction("bench.deadline_violations"),
            Direction::kLowerIsBetter);
  EXPECT_EQ(metric_direction("train.measured_iteration_s"),
            Direction::kLowerIsBetter);
  EXPECT_EQ(metric_direction("vgpu.branch_efficiency"),
            Direction::kHigherIsBetter);
  EXPECT_EQ(metric_direction("vgpu.sm_utilization"),
            Direction::kHigherIsBetter);
  EXPECT_EQ(metric_direction("vgpu.dram_read_gbps"),
            Direction::kHigherIsBetter);
  EXPECT_EQ(metric_direction("bench.concurrent_speedup"),
            Direction::kHigherIsBetter);
  EXPECT_EQ(metric_direction("eval.tpr_at_0fp"), Direction::kHigherIsBetter);
  EXPECT_EQ(metric_direction("detect.frames"), Direction::kExact);
  EXPECT_EQ(metric_direction("vgpu.blocks"), Direction::kExact);

  // Profile-record projections (obs/profile.h): cycle totals, conflict
  // and transaction counts gate downward; achieved occupancy upward.
  EXPECT_EQ(metric_direction("profile.total_cycles"),
            Direction::kLowerIsBetter);
  EXPECT_EQ(metric_direction("profile.kernel.bank_conflicts"),
            Direction::kLowerIsBetter);
  EXPECT_EQ(metric_direction("profile.kernel.global_transactions"),
            Direction::kLowerIsBetter);
  EXPECT_EQ(metric_direction("profile.kernel.achieved_occupancy"),
            Direction::kHigherIsBetter);
  // Contains both "occupancy" and "cycles": the lower-is-better cycle
  // rule must win or occupancy regressions would read as improvements.
  EXPECT_EQ(metric_direction("profile.kernel.occupancy_limited_cycles"),
            Direction::kLowerIsBetter);
}

TEST(CompareRuns, TwentyPercentMakespanShiftRegresses) {
  const RunRecord baseline =
      record({series("vgpu.makespan_ms", {4.0, 4.01, 3.99},
                     {{"mode", "concurrent"}})});
  const RunRecord current =
      record({series("vgpu.makespan_ms", {4.8, 4.81, 4.79},
                     {{"mode", "concurrent"}})});
  const CompareReport report = compare_runs(baseline, current);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.regressed, 1);
  const MetricVerdict& v = verdict_for(report, "vgpu.makespan_ms");
  EXPECT_EQ(v.verdict, Verdict::kRegressed);
  EXPECT_NEAR(v.relative_change, 0.2, 1e-9);
}

TEST(CompareRuns, IdenticalRecordsAreAllUnchanged) {
  const RunRecord baseline = record(
      {series("vgpu.makespan_ms", {4.0, 4.0, 4.0}),
       series("vgpu.branch_efficiency", {0.98, 0.98, 0.98}),
       series("detect.frames", {36, 36, 36}, {}, "counter")});
  const CompareReport report = compare_runs(baseline, baseline);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.unchanged, 3);
  EXPECT_EQ(report.regressed + report.missing + report.improved + report.added,
            0);
}

TEST(CompareRuns, ShiftWithinRelativeThresholdIsUnchanged) {
  const RunRecord baseline = record({series("vgpu.makespan_ms", {4.0})});
  const RunRecord current = record({series("vgpu.makespan_ms", {4.3})});
  CompareOptions options;
  options.relative_threshold = 0.10;
  EXPECT_EQ(compare_runs(baseline, current, options).unchanged, 1);
  options.relative_threshold = 0.05;
  EXPECT_EQ(compare_runs(baseline, current, options).regressed, 1);
}

TEST(CompareRuns, MadNoiseBandAbsorbsHostJitter) {
  // Noisy series: MAD 0.5, so the 3*MAD band (1.5) tolerates a shift the
  // 10% relative threshold (0.4) alone would flag.
  const RunRecord baseline =
      record({series("train.measured_iteration_s", {4.0, 3.5, 4.5})});
  const RunRecord current =
      record({series("train.measured_iteration_s", {5.0, 4.5, 5.5})});
  const CompareReport report = compare_runs(baseline, current);
  EXPECT_EQ(report.unchanged, 1);
  EXPECT_TRUE(report.ok());
}

TEST(CompareRuns, DirectionDecidesImprovedVsRegressed) {
  const RunRecord baseline =
      record({series("vgpu.makespan_ms", {4.0}),
              series("vgpu.branch_efficiency", {0.80})});
  const RunRecord faster =
      record({series("vgpu.makespan_ms", {3.0}),
              series("vgpu.branch_efficiency", {0.99})});
  const CompareReport report = compare_runs(baseline, faster);
  EXPECT_EQ(report.improved, 2);
  EXPECT_TRUE(report.ok());

  // The same shifts in the other direction both regress.
  const CompareReport reverse = compare_runs(faster, baseline);
  EXPECT_EQ(reverse.regressed, 2);
}

TEST(CompareRuns, ExactMetricsRegressOnAnyDrift) {
  const RunRecord baseline =
      record({series("detect.frames", {36}, {}, "counter")});
  const RunRecord current =
      record({series("detect.frames", {48}, {}, "counter")});
  const CompareReport report = compare_runs(baseline, current);
  EXPECT_EQ(report.regressed, 1);
  EXPECT_EQ(verdict_for(report, "detect.frames").direction, Direction::kExact);
}

TEST(CompareRuns, MissingAndNewSeries) {
  const RunRecord baseline = record({series("vgpu.makespan_ms", {4.0}),
                                     series("vgpu.blocks", {100})});
  const RunRecord current = record({series("vgpu.makespan_ms", {4.0}),
                                    series("vgpu.sm_busy_s", {0.5})});
  const CompareReport report = compare_runs(baseline, current);
  EXPECT_EQ(report.missing, 1);
  EXPECT_EQ(report.added, 1);
  EXPECT_FALSE(report.ok());  // a vanished metric fails the gate
  EXPECT_EQ(verdict_for(report, "vgpu.blocks").verdict, Verdict::kMissing);
  EXPECT_EQ(verdict_for(report, "vgpu.sm_busy_s").verdict, Verdict::kNew);
}

TEST(CompareRuns, LabelsArePartOfSeriesIdentity) {
  const RunRecord baseline =
      record({series("vgpu.makespan_ms", {4.0}, {{"mode", "serial"}})});
  const RunRecord current =
      record({series("vgpu.makespan_ms", {4.0}, {{"mode", "concurrent"}})});
  const CompareReport report = compare_runs(baseline, current);
  EXPECT_EQ(report.missing, 1);
  EXPECT_EQ(report.added, 1);
}

TEST(CompareRuns, IgnoreListSkipsSubstringMatchesBothSides) {
  const RunRecord baseline =
      record({series("bench.wall_seconds", {1.0}),
              series("integral.host_wall_ms", {9.0},
                     {{"resolution", "1920x1080"}})});
  const RunRecord current =
      record({series("bench.wall_seconds", {55.0}),
              series("integral.host_wall_ms", {90.0},
                     {{"resolution", "1920x1080"}})});
  const CompareReport report = compare_runs(baseline, current);
  EXPECT_TRUE(report.verdicts.empty());
  EXPECT_TRUE(report.ok());
}

TEST(CompareRuns, NonFiniteMediansAreHandledDeterministically) {
  const auto nan_series = [](std::string name) {
    MetricSeries s;
    s.name = std::move(name);
    s.kind = "gauge";
    s.samples = {std::nan("")};
    s.median = std::nan("");
    s.mad = std::nan("");
    return s;
  };
  const RunRecord both_nan = record({nan_series("ratio")});
  EXPECT_EQ(compare_runs(both_nan, both_nan).unchanged, 1);

  const RunRecord finite = record({series("ratio", {0.5})});
  EXPECT_EQ(compare_runs(both_nan, finite).regressed, 1);
  EXPECT_EQ(compare_runs(finite, both_nan).regressed, 1);
}

TEST(CompareReportText, NamesRegressedMetricAndSummarizes) {
  const RunRecord baseline =
      record({series("vgpu.makespan_ms", {4.0}, {{"mode", "concurrent"}}),
              series("vgpu.sm_utilization", {0.9})});
  const RunRecord current =
      record({series("vgpu.makespan_ms", {4.8}, {{"mode", "concurrent"}}),
              series("vgpu.sm_utilization", {0.9})});
  const CompareReport report = compare_runs(baseline, current);
  const std::string text = render_text_report(report);
  EXPECT_NE(text.find("regressed"), std::string::npos);
  EXPECT_NE(text.find("vgpu.makespan_ms{mode=concurrent}"), std::string::npos);
  EXPECT_NE(text.find("GATE FAILED"), std::string::npos);
  // Unchanged metrics stay out of the default report body.
  EXPECT_EQ(text.find("vgpu.sm_utilization"), std::string::npos);

  // Regressions sort to the top regardless of name order.
  ASSERT_FALSE(report.verdicts.empty());
  EXPECT_EQ(report.verdicts.front().verdict, Verdict::kRegressed);
}

}  // namespace
}  // namespace fdet::obs
