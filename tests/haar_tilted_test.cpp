#include "haar/tilted.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace fdet::haar {
namespace {

img::ImageU8 random_window(std::uint64_t seed, int side = 24) {
  core::Rng rng(seed);
  img::ImageU8 im(side, side);
  for (auto& p : im.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return im;
}

/// Oracle: cell sum via per-pixel membership in diagonal coordinates.
std::int64_t brute_cell(const img::ImageU8& im, int ax, int ay, int w, int h) {
  std::int64_t acc = 0;
  for (int yp = 0; yp < im.height(); ++yp) {
    for (int xp = 0; xp < im.width(); ++xp) {
      const int d = xp - yp;
      const int e = xp + yp;
      if (d >= ax - ay - 2 * h && d <= ax - ay - 1 && e >= ax + ay + 1 &&
          e <= ax + ay + 2 * w) {
        acc += im(xp, yp);
      }
    }
  }
  return acc;
}

TEST(TiltedFeature, ZeroResponseOnConstantImages) {
  img::ImageU8 flat(24, 24);
  flat.fill(113);
  const auto rot = integral::rotated_integral_cpu(flat);
  int checked = 0;
  for_each_tilted(TiltedType::kEdge, [&](const TiltedFeature& f) {
    if (checked++ % 97 == 0) {  // sample the enumeration
      ASSERT_EQ(f.response(rot, 0, 0), 0);
    }
  });
  for_each_tilted(TiltedType::kLine, [&](const TiltedFeature& f) {
    if (checked++ % 97 == 0) {
      ASSERT_EQ(f.response(rot, 0, 0), 0);
    }
  });
  EXPECT_GT(checked, 100);
}

TEST(TiltedFeature, ResponseMatchesBruteForce) {
  const img::ImageU8 im = random_window(5);
  const auto rot = integral::rotated_integral_cpu(im);
  core::Rng rng(6);
  int checked = 0;
  for (int trial = 0; trial < 400; ++trial) {
    TiltedFeature f;
    f.type = rng.bernoulli(0.5) ? TiltedType::kEdge : TiltedType::kLine;
    f.cw = static_cast<std::uint8_t>(rng.uniform_int(1, 5));
    f.ch = static_cast<std::uint8_t>(rng.uniform_int(1, 5));
    f.x = static_cast<std::uint8_t>(rng.uniform_int(0, 23));
    f.y = static_cast<std::uint8_t>(rng.uniform_int(0, 23));
    if (!f.valid()) {
      continue;
    }
    const int n = f.cells();
    const int weights[3] = {1, n == 2 ? -1 : -2, 1};
    std::int64_t expected = 0;
    for (int k = 0; k < n; ++k) {
      expected += static_cast<std::int64_t>(weights[k]) *
                  brute_cell(im, f.x + k * f.cw, f.y + k * f.cw, f.cw, f.ch);
    }
    ASSERT_EQ(f.response(rot, 0, 0), expected);
    ++checked;
  }
  EXPECT_GT(checked, 100);
}

TEST(TiltedFeature, RespondsToDiagonalStructure) {
  // Consecutive cells of a tilted edge differ along the e = x + y
  // direction, so a bright down-LEFT diagonal stripe (constant e band)
  // covers them asymmetrically and produces a strong response.
  img::ImageU8 im(24, 24);
  im.fill(40);
  for (int y = 0; y < 24; ++y) {
    for (int x = 0; x < 24; ++x) {
      if (std::abs((x + y) - 16) <= 2) {
        im(x, y) = 220;  // stripe along e = 16
      }
    }
  }
  const auto rot = integral::rotated_integral_cpu(im);
  // Cell 1: e in [14, 25] (on the stripe); cell 2: e in [20, 31] (mostly
  // off it).
  const TiltedFeature f{TiltedType::kEdge, 10, 3, 3, 3};
  ASSERT_TRUE(f.valid());
  EXPECT_NE(f.response(rot, 0, 0), 0);
}

TEST(TiltedFeature, EnumerationCountsAreStableAndPlausible) {
  const std::int64_t edges = for_each_tilted(TiltedType::kEdge,
                                             [](const TiltedFeature&) {});
  const std::int64_t lines = for_each_tilted(TiltedType::kLine,
                                             [](const TiltedFeature&) {});
  EXPECT_GT(edges, 1000);
  EXPECT_GT(lines, 500);
  EXPECT_GT(edges, lines);  // three cells fit less often than two
}

TEST(TiltedFeature, ValidityRejectsOutOfWindowCells) {
  EXPECT_FALSE((TiltedFeature{TiltedType::kEdge, 0, 0, 1, 2}).valid());  // left
  EXPECT_FALSE((TiltedFeature{TiltedType::kEdge, 23, 0, 1, 1}).valid()); // right
  EXPECT_FALSE((TiltedFeature{TiltedType::kEdge, 5, 22, 1, 1}).valid()); // bottom
  EXPECT_TRUE((TiltedFeature{TiltedType::kEdge, 5, 5, 2, 2}).valid());
  EXPECT_FALSE((TiltedFeature{TiltedType::kEdge, 5, 5, 0, 2}).valid());
}

TEST(TiltedFeature, WindowAnchorShiftsTheFeature) {
  const img::ImageU8 big = random_window(9, 48);
  const auto rot = integral::rotated_integral_cpu(big);
  const TiltedFeature f{TiltedType::kEdge, 8, 4, 2, 2};
  ASSERT_TRUE(f.valid());
  // Response at anchor (wx, wy) equals the cell sums shifted by the
  // anchor; cell k's apex is (x + k*cw, y + k*cw).
  const std::int64_t direct = brute_cell(big, 8 + 10, 4 + 6, 2, 2) -
                              brute_cell(big, 10 + 10, 6 + 6, 2, 2);
  EXPECT_EQ(f.response(rot, 10, 6), direct);
}

}  // namespace
}  // namespace fdet::haar
