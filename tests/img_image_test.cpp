#include "img/image.h"

#include <gtest/gtest.h>

#include "core/check.h"

namespace fdet::img {
namespace {

TEST(Image, ConstructsZeroed) {
  ImageU8 im(4, 3);
  EXPECT_EQ(im.width(), 4);
  EXPECT_EQ(im.height(), 3);
  EXPECT_EQ(im.size(), 12u);
  for (const auto p : im.pixels()) {
    EXPECT_EQ(p, 0);
  }
}

TEST(Image, RejectsEmptyDimensions) {
  EXPECT_THROW(ImageU8(0, 3), core::CheckError);
  EXPECT_THROW(ImageU8(3, -1), core::CheckError);
}

TEST(Image, AtChecksBounds) {
  ImageU8 im(4, 3);
  EXPECT_NO_THROW(im.at(3, 2));
  EXPECT_THROW(im.at(4, 0), core::CheckError);
  EXPECT_THROW(im.at(0, 3), core::CheckError);
  EXPECT_THROW(im.at(-1, 0), core::CheckError);
}

TEST(Image, RowMajorLayout) {
  ImageU8 im(3, 2);
  im(0, 0) = 1;
  im(2, 0) = 3;
  im(0, 1) = 4;
  EXPECT_EQ(im.pixels()[0], 1);
  EXPECT_EQ(im.pixels()[2], 3);
  EXPECT_EQ(im.pixels()[3], 4);
  EXPECT_EQ(im.row(1)[0], 4);
}

TEST(Image, CastConvertsElementwise) {
  ImageU8 im(2, 2);
  im(0, 0) = 200;
  im(1, 1) = 17;
  const ImageF32 f = im.cast<float>();
  EXPECT_FLOAT_EQ(f(0, 0), 200.0f);
  EXPECT_FLOAT_EQ(f(1, 1), 17.0f);
}

TEST(Image, FillSetsEveryPixel) {
  ImageU8 im(5, 5);
  im.fill(42);
  for (const auto p : im.pixels()) {
    EXPECT_EQ(p, 42);
  }
}

TEST(Rect, AreaAndEdges) {
  const Rect r{2, 3, 10, 20};
  EXPECT_EQ(r.area(), 200);
  EXPECT_EQ(r.right(), 12);
  EXPECT_EQ(r.bottom(), 23);
}

TEST(Rect, IntersectionOfOverlapping) {
  const Rect a{0, 0, 10, 10};
  const Rect b{5, 5, 10, 10};
  EXPECT_EQ(intersection_area(a, b), 25);
  EXPECT_EQ(union_area(a, b), 175);
}

TEST(Rect, IntersectionOfDisjointIsZero) {
  const Rect a{0, 0, 4, 4};
  const Rect b{10, 10, 4, 4};
  EXPECT_EQ(intersection_area(a, b), 0);
  EXPECT_EQ(union_area(a, b), 32);
}

TEST(Rect, IntersectionOfNestedIsInner) {
  const Rect outer{0, 0, 100, 100};
  const Rect inner{10, 10, 5, 5};
  EXPECT_EQ(intersection_area(outer, inner), 25);
  EXPECT_EQ(union_area(outer, inner), 10000);
}

TEST(Rect, TouchingEdgesDoNotIntersect) {
  const Rect a{0, 0, 5, 5};
  const Rect b{5, 0, 5, 5};
  EXPECT_EQ(intersection_area(a, b), 0);
}

}  // namespace
}  // namespace fdet::img
