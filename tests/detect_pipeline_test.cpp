#include "detect/pipeline.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "facegen/dataset.h"
#include "haar/profile.h"
#include "ingest/registry.h"
#include "train/boost.h"
#include "video/trailer.h"

namespace fdet::detect {
namespace {

/// Small trained cascade shared by the pipeline tests (trained once).
const haar::Cascade& test_cascade() {
  static const haar::Cascade cascade = [] {
    const auto set = facegen::build_training_set(250, 40, 64, 2024);
    train::TrainOptions options;
    options.stage_sizes = {6, 10, 14, 18};
    options.feature_pool = 400;
    options.negatives_per_stage = 300;
    options.stage_hit_target = 0.99;
    options.seed = 11;
    return train::train_cascade(set, options, "pipeline-test").cascade;
  }();
  return cascade;
}

PipelineOptions fast_options(vgpu::ExecMode mode) {
  PipelineOptions options;
  options.mode = mode;
  options.pyramid_step = 1.25;
  return options;
}

TEST(Pipeline, DetectsSyntheticMugshots) {
  const vgpu::DeviceSpec spec;
  const Pipeline pipeline(spec, test_cascade(),
                          fast_options(vgpu::ExecMode::kConcurrent));
  const auto bench = facegen::build_mugshot_benchmark(6, 0, 96, 77);

  int hits = 0;
  for (const auto& shot : bench.mugshots) {
    const FrameResult result = pipeline.process(shot.image);
    for (const Detection& det : result.detections) {
      if (s_square(det.box, shot.face) > 0.3) {
        ++hits;
        break;
      }
    }
  }
  // The shared test cascade is deliberately small (4 stages); the full
  // 25-stage trained cascades do substantially better (see Fig. 9 bench).
  EXPECT_GE(hits, 3) << "detector should find at least half the mugshots";
}

TEST(Pipeline, ProducesAllPyramidScaleStats) {
  const vgpu::DeviceSpec spec;
  const Pipeline pipeline(spec, test_cascade(),
                          fast_options(vgpu::ExecMode::kConcurrent));
  core::Rng rng(5);
  img::ImageU8 frame(120, 90);
  for (auto& p : frame.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  const FrameResult result = pipeline.process(frame);

  const auto plan = img::plan_pyramid(120, 90, 1.25, haar::kWindowSize);
  ASSERT_EQ(result.scales.size(), plan.levels.size());
  for (std::size_t i = 0; i < result.scales.size(); ++i) {
    EXPECT_EQ(result.scales[i].scale_index, static_cast<int>(i));
    // Histogram covers depths 0..stage_count and counts every valid window.
    std::int64_t total = 0;
    for (const auto count : result.scales[i].depth_histogram) {
      total += count;
    }
    const auto& level = plan.levels[i];
    EXPECT_EQ(total,
              static_cast<std::int64_t>(level.width - haar::kWindowSize + 1) *
                  (level.height - haar::kWindowSize + 1));
  }
}

TEST(Pipeline, ConcurrentBeatsSerialOnManyScales) {
  const vgpu::DeviceSpec spec;
  const Pipeline concurrent(spec, test_cascade(),
                            fast_options(vgpu::ExecMode::kConcurrent));
  const Pipeline serial(spec, test_cascade(),
                        fast_options(vgpu::ExecMode::kSerial));
  core::Rng rng(6);
  img::ImageU8 frame(160, 120);
  for (auto& p : frame.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  const double conc_ms = concurrent.process(frame).detect_ms;
  const double serial_ms = serial.process(frame).detect_ms;
  EXPECT_LT(conc_ms, serial_ms);
}

TEST(Pipeline, TimelineContainsPerScaleStreams) {
  const vgpu::DeviceSpec spec;
  const Pipeline pipeline(spec, test_cascade(),
                          fast_options(vgpu::ExecMode::kConcurrent));
  core::Rng rng(7);
  img::ImageU8 frame(100, 80);
  for (auto& p : frame.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  const FrameResult result = pipeline.process(frame);

  std::set<int> streams;
  bool saw_cascade = false;
  bool saw_scan = false;
  bool saw_scale = false;
  for (const auto& record : result.timeline.records) {
    streams.insert(record.stream);
    saw_cascade |= record.name.rfind("cascade", 0) == 0;
    saw_scan |= record.name.rfind("scan", 0) == 0;
    saw_scale |= record.name.rfind("scale", 0) == 0;
  }
  EXPECT_EQ(streams.size(), result.scales.size());
  EXPECT_TRUE(saw_cascade);
  EXPECT_TRUE(saw_scan);
  EXPECT_TRUE(saw_scale);
  EXPECT_GT(result.detect_ms, 0.0);
}

TEST(Pipeline, BusyShareSplitsKernelFamilies) {
  const vgpu::DeviceSpec spec;
  const Pipeline pipeline(spec, test_cascade(),
                          fast_options(vgpu::ExecMode::kConcurrent));
  core::Rng rng(8);
  img::ImageU8 frame(100, 80);
  for (auto& p : frame.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  const FrameResult result = pipeline.process(frame);
  const double integral_share =
      result.busy_share("scan") + result.busy_share("transpose");
  const double cascade_share = result.busy_share("cascade");
  EXPECT_GT(integral_share, 0.0);
  EXPECT_GT(cascade_share, 0.0);
  EXPECT_LE(integral_share + cascade_share, 1.0 + 1e-9);
}

TEST(Pipeline, DisplayOverlayMarksDetections) {
  const vgpu::DeviceSpec spec;
  PipelineOptions options = fast_options(vgpu::ExecMode::kConcurrent);
  options.run_display = true;
  const Pipeline pipeline(spec, test_cascade(), options);
  const auto bench = facegen::build_mugshot_benchmark(1, 0, 96, 12);
  const FrameResult result = pipeline.process(bench.mugshots[0].image);
  EXPECT_EQ(result.display.width(), 96);
  if (!result.raw_detections.empty()) {
    int bright = 0;
    for (const auto p : result.display.pixels()) {
      bright += (p == 255);
    }
    EXPECT_GT(bright, 0);
  }
}

TEST(Pipeline, RejectsEmptyCascade) {
  const vgpu::DeviceSpec spec;
  EXPECT_THROW(Pipeline(spec, haar::Cascade("empty"),
                        fast_options(vgpu::ExecMode::kSerial)),
               core::CheckError);
}

TEST(Pipeline, RejectsEmptyFrame) {
  const vgpu::DeviceSpec spec;
  const Pipeline pipeline(spec, test_cascade(),
                          fast_options(vgpu::ExecMode::kSerial));
  EXPECT_THROW(pipeline.process(img::ImageU8()), core::CheckError);
}

TEST(Pipeline, RejectsFramesSmallerThanTheWindowNamingTheGeometry) {
  const vgpu::DeviceSpec spec;
  const Pipeline pipeline(spec, test_cascade(),
                          fast_options(vgpu::ExecMode::kSerial));
  try {
    pipeline.process(img::ImageU8(haar::kWindowSize - 1, haar::kWindowSize));
    FAIL() << "expected CheckError";
  } catch (const core::CheckError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(std::to_string(haar::kWindowSize - 1) + "x" +
                        std::to_string(haar::kWindowSize)),
              std::string::npos)
        << what;
  }
  // A window-sized frame is the boundary: exactly one valid position.
  const FrameResult result =
      pipeline.process(img::ImageU8(haar::kWindowSize, haar::kWindowSize, 90));
  ASSERT_EQ(result.scales.size(), 1u);
  std::int64_t windows = 0;
  for (const auto count : result.scales[0].depth_histogram) {
    windows += count;
  }
  EXPECT_EQ(windows, 1);
}

TEST(Pipeline, SkipFinestLevelsShedsTheNativeScale) {
  const vgpu::DeviceSpec spec;
  PipelineOptions options = fast_options(vgpu::ExecMode::kConcurrent);
  options.skip_finest_levels = 1;
  const Pipeline degraded(spec, test_cascade(), options);
  core::Rng rng(9);
  img::ImageU8 frame(120, 90);
  for (auto& p : frame.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  const FrameResult result = degraded.process(frame);

  const auto plan = img::plan_pyramid(120, 90, 1.25, haar::kWindowSize);
  ASSERT_EQ(result.scales.size(), plan.levels.size() - 1);
  for (const auto& stats : result.scales) {
    EXPECT_GE(stats.scale_index, 1);
  }
  for (const Detection& det : result.raw_detections) {
    EXPECT_GE(det.scale_index, 1);
  }
}

TEST(Pipeline, AbsurdSkipClampsSoTheCoarsestLevelStillRuns) {
  const vgpu::DeviceSpec spec;
  PipelineOptions options = fast_options(vgpu::ExecMode::kSerial);
  options.skip_finest_levels = 1000;
  const Pipeline degraded(spec, test_cascade(), options);
  const FrameResult result = degraded.process(img::ImageU8(120, 90, 120));

  const auto plan = img::plan_pyramid(120, 90, 1.25, haar::kWindowSize);
  ASSERT_EQ(result.scales.size(), 1u);
  EXPECT_EQ(result.scales[0].scale_index,
            static_cast<int>(plan.levels.size()) - 1);
}

TEST(Pipeline, ProcessesFramesStraightFromAnIngestSource) {
  const vgpu::DeviceSpec spec;
  const Pipeline pipeline(spec, test_cascade(),
                          fast_options(vgpu::ExecMode::kConcurrent));
  video::TrailerSpec trailer_spec;
  trailer_spec.title = "pipeline-ingest";
  trailer_spec.width = 120;
  trailer_spec.height = 90;
  trailer_spec.frames = 2;
  trailer_spec.shot_frames = 2;
  trailer_spec.seed = 31;
  const video::SyntheticTrailer trailer(trailer_spec);
  const auto source = ingest::open_stream(
      ingest::encode_stream(ingest::Format::kRaw, trailer));

  // The FrameSource overload is exactly decode + the luma overload.
  const FrameResult via_source = pipeline.process(*source, 1);
  const FrameResult via_luma =
      pipeline.process(source->decode(1).frame.luma());
  EXPECT_EQ(via_source.raw_detections.size(), via_luma.raw_detections.size());
  EXPECT_DOUBLE_EQ(via_source.detect_ms, via_luma.detect_ms);

  // Ingest's typed taxonomy propagates to batch callers too.
  EXPECT_THROW(pipeline.process(*source, 2), ingest::IngestError);
  EXPECT_THROW(pipeline.process(*source, -1), ingest::IngestError);
}

TEST(Pipeline, DeterministicAcrossRuns) {
  const vgpu::DeviceSpec spec;
  const Pipeline pipeline(spec, test_cascade(),
                          fast_options(vgpu::ExecMode::kConcurrent));
  const auto bench = facegen::build_mugshot_benchmark(1, 0, 96, 13);
  const FrameResult a = pipeline.process(bench.mugshots[0].image);
  const FrameResult b = pipeline.process(bench.mugshots[0].image);
  EXPECT_EQ(a.raw_detections.size(), b.raw_detections.size());
  EXPECT_DOUBLE_EQ(a.detect_ms, b.detect_ms);
}

}  // namespace
}  // namespace fdet::detect
