// Metrics registry: metric kinds, label identity, histogram bucketing,
// and the JSON/CSV exporters (validated by re-parsing through obs::json).
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/check.h"
#include "obs/json.h"

namespace fdet::obs {
namespace {

TEST(MetricsLabels, FormatIsOrderedKeyValueList) {
  EXPECT_EQ(format_labels({}), "");
  EXPECT_EQ(format_labels({{"mode", "serial"}}), "mode=serial");
  EXPECT_EQ(format_labels({{"b", "2"}, {"a", "1"}}), "b=2,a=1");
}

TEST(MetricsRegistry, CounterAccumulatesAndIsIdentityStable) {
  Registry registry;
  Counter& c = registry.counter("launches", {{"mode", "serial"}});
  c.add(3.0);
  c.increment();
  EXPECT_DOUBLE_EQ(c.value(), 4.0);
  // Same (name, labels) -> same instance; different labels -> distinct.
  EXPECT_EQ(&registry.counter("launches", {{"mode", "serial"}}), &c);
  Counter& other = registry.counter("launches", {{"mode", "concurrent"}});
  EXPECT_NE(&other, &c);
  EXPECT_DOUBLE_EQ(other.value(), 0.0);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistry, GaugeKeepsLastValue) {
  Registry registry;
  Gauge& g = registry.gauge("makespan_ms");
  g.set(4.2);
  g.set(3.1);
  EXPECT_DOUBLE_EQ(g.value(), 3.1);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  Registry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), core::CheckError);
  EXPECT_THROW(registry.histogram("x", {1.0}), core::CheckError);
}

TEST(MetricsHistogram, BucketCountsAreCumulativeWithImplicitInf) {
  Registry registry;
  Histogram& h = registry.histogram("latency", {1.0, 5.0, 10.0});
  h.observe(0.5);
  h.observe(1.0);   // boundary value counts as <= bound
  h.observe(7.0);
  h.observe(100.0, 2.0);  // weighted observation into +inf
  EXPECT_DOUBLE_EQ(h.count(), 5.0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 7.0 + 200.0);
  const std::vector<double> cumulative = h.bucket_counts();
  ASSERT_EQ(cumulative.size(), 4u);  // 3 bounds + inf
  EXPECT_DOUBLE_EQ(cumulative[0], 2.0);
  EXPECT_DOUBLE_EQ(cumulative[1], 2.0);
  EXPECT_DOUBLE_EQ(cumulative[2], 3.0);
  EXPECT_DOUBLE_EQ(cumulative[3], 5.0);
}

TEST(MetricsHistogram, LinearBuckets) {
  const std::vector<double> bounds = linear_buckets(0.0, 2.0, 3);
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(bounds[0], 0.0);
  EXPECT_DOUBLE_EQ(bounds[1], 2.0);
  EXPECT_DOUBLE_EQ(bounds[2], 4.0);
}

TEST(MetricsRegistry, SamplesAreSortedAndComplete) {
  Registry registry;
  registry.gauge("zeta").set(1.0);
  registry.counter("alpha", {{"k", "2"}}).add(2.0);
  registry.counter("alpha", {{"k", "1"}}).add(1.0);
  const auto samples = registry.samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "alpha");
  EXPECT_EQ(format_labels(samples[0].labels), "k=1");
  EXPECT_EQ(samples[1].name, "alpha");
  EXPECT_EQ(format_labels(samples[1].labels), "k=2");
  EXPECT_EQ(samples[2].name, "zeta");
  EXPECT_EQ(samples[2].kind, "gauge");
}

TEST(MetricsRegistry, JsonExportRoundTripsThroughParser) {
  Registry registry;
  registry.gauge("vgpu.sm_utilization", {{"mode", "serial"}}).set(0.75);
  registry.histogram("depth", {1.0, 2.0}).observe(1.5);
  const json::Value doc = json::parse(registry.to_json());
  const auto& metrics = doc.at("metrics").as_array();
  ASSERT_EQ(metrics.size(), 2u);
  // Sorted by name: depth < vgpu.sm_utilization.
  EXPECT_EQ(metrics[0].at("name").as_string(), "depth");
  EXPECT_EQ(metrics[0].at("kind").as_string(), "histogram");
  EXPECT_DOUBLE_EQ(metrics[0].at("count").as_number(), 1.0);
  ASSERT_EQ(metrics[0].at("buckets").as_array().size(), 3u);
  EXPECT_EQ(metrics[1].at("name").as_string(), "vgpu.sm_utilization");
  EXPECT_DOUBLE_EQ(metrics[1].at("value").as_number(), 0.75);
  EXPECT_EQ(metrics[1].at("labels").at("mode").as_string(), "serial");
}

TEST(MetricsRegistry, CsvExportHasHeaderAndOneRowPerField) {
  Registry registry;
  registry.counter("n", {{"a", "x,y"}}).add(2.0);
  const std::string csv = registry.to_csv();
  EXPECT_EQ(csv.rfind("name,kind,labels,field,value\n", 0), 0u);
  // The comma inside the label value must be quoted.
  EXPECT_NE(csv.find("\"a=x,y\""), std::string::npos);
  EXPECT_NE(csv.find("n,counter,"), std::string::npos);
}

TEST(MetricsHistogram, ExportersEmitCumulativeBuckets) {
  // Regression test for the bucket-count convention (see metrics.h): all
  // exported surfaces are cumulative; only the internal accumulation
  // buffer is per-bucket. Hand-computed: observations 0.5, 3.0, 3.0, 7.0
  // against bounds {1, 5} land per-bucket {1, 2, 1(inf)}, so the
  // cumulative export must read {1, 3, 4}.
  Registry registry;
  Histogram& h = registry.histogram("lat", {1.0, 5.0});
  h.observe(0.5);
  h.observe(3.0, 2.0);
  h.observe(7.0);

  const std::vector<double> expected = {1.0, 3.0, 4.0};
  EXPECT_EQ(h.bucket_counts(), expected);

  const auto samples = registry.samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].bucket_counts, expected);

  const json::Value doc = json::parse(registry.to_json());
  const auto& buckets = doc.at("metrics").as_array()[0].at("buckets").as_array();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(buckets[0].at("count").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(buckets[1].at("count").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(buckets[2].at("count").as_number(), 4.0);
  EXPECT_EQ(buckets[2].at("le").as_string(), "inf");
  // The +inf bucket equals the total count in a cumulative scheme.
  EXPECT_DOUBLE_EQ(buckets[2].at("count").as_number(),
                   doc.at("metrics").as_array()[0].at("count").as_number());

  const std::string csv = registry.to_csv();
  EXPECT_NE(csv.find("le_1,1\n"), std::string::npos);
  EXPECT_NE(csv.find("le_5,3\n"), std::string::npos);
  EXPECT_NE(csv.find("le_inf,4\n"), std::string::npos);
}

TEST(MetricsRegistry, CardinalityCapThrowsTypedError) {
  Registry registry;
  registry.set_series_limit(2);
  EXPECT_EQ(registry.series_limit(), 2u);
  registry.counter("a").increment();
  registry.gauge("b").set(1.0);
  // A third *new* series blows the cap with the typed error...
  EXPECT_THROW(registry.counter("c"), MetricCardinalityError);
  // ...which is also a core::CheckError, so generic handlers still work.
  try {
    registry.counter("c", {{"leaky", "label"}});
    FAIL() << "expected MetricCardinalityError";
  } catch (const core::CheckError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("c{leaky=label}"), std::string::npos)
        << "error must name the offending series: " << what;
    EXPECT_NE(what.find("2"), std::string::npos);
  }
  // Existing series stay writable after the refusal.
  registry.counter("a").increment();
  EXPECT_DOUBLE_EQ(registry.counter("a").value(), 2.0);
  EXPECT_EQ(registry.size(), 2u);
  // Raising the limit unblocks creation.
  registry.set_series_limit(3);
  registry.counter("c").increment();
  EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricsRegistry, DefaultSeriesLimitIsGenerousButFinite) {
  Registry registry;
  EXPECT_EQ(registry.series_limit(), Registry::kDefaultSeriesLimit);
  EXPECT_THROW(registry.set_series_limit(0), core::CheckError);
}

TEST(MetricsRegistry, ConcurrentWritersLoseNoIncrements) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 5000;
  Registry registry;
  Counter& shared = registry.counter("shared");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &shared, t] {
      // Each thread hammers the shared counter and its own series, so
      // both the per-metric add() path and the registry's series-creation
      // path run under contention.
      Counter& own =
          registry.counter("per_thread", {{"t", std::to_string(t)}});
      for (int i = 0; i < kIncrements; ++i) {
        shared.increment();
        own.increment();
        registry.gauge("last_writer").set(static_cast<double>(t));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_DOUBLE_EQ(shared.value(),
                   static_cast<double>(kThreads * kIncrements));
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_DOUBLE_EQ(
        registry.counter("per_thread", {{"t", std::to_string(t)}}).value(),
        static_cast<double>(kIncrements));
  }
  // shared + last_writer + one series per thread.
  EXPECT_EQ(registry.size(), static_cast<std::size_t>(kThreads) + 2);
}

TEST(ObsJson, ParserRejectsMalformedInput) {
  EXPECT_THROW(json::parse("{"), core::CheckError);
  EXPECT_THROW(json::parse("[1, 2,]"), core::CheckError);
  EXPECT_THROW(json::parse("nulL"), core::CheckError);
  EXPECT_THROW(json::parse("{}extra"), core::CheckError);
}

TEST(ObsJson, EscapeAndNumberFormatting) {
  EXPECT_EQ(json::escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(json::number(3.0), "3");
  EXPECT_EQ(json::number(-41.0), "-41");
  const json::Value v = json::parse(json::number(0.125));
  EXPECT_DOUBLE_EQ(v.as_number(), 0.125);
}

TEST(ObsJson, NonFiniteNumbersSerializeAsNull) {
  EXPECT_EQ(json::number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json::number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json::number(-std::numeric_limits<double>::infinity()), "null");
  // Value::dump goes through the same formatter.
  EXPECT_EQ(json::Value::make_number(std::nan("")).dump(), "null");
}

TEST(ObsJson, RegistryWithNonFiniteValuesStaysParseable) {
  // Degenerate ratios (0/0 utilization on an empty timeline, say) must
  // not produce an unparseable metrics file or run record.
  Registry registry;
  registry.gauge("ratio").set(std::nan(""));
  registry.gauge("rate").set(std::numeric_limits<double>::infinity());
  registry.gauge("ok").set(1.5);

  const json::Value doc = json::parse(registry.to_json());
  const auto& metrics = doc.at("metrics").as_array();
  ASSERT_EQ(metrics.size(), 3u);
  EXPECT_DOUBLE_EQ(metrics[0].at("value").as_number(), 1.5);   // "ok"
  EXPECT_TRUE(metrics[1].at("value").is_null());               // "rate"
  EXPECT_TRUE(metrics[2].at("value").is_null());               // "ratio"

  // CSV rows carry the literal `null` cell rather than a fake 0.
  EXPECT_NE(registry.to_csv().find("ratio,gauge,\"\",value,null"),
            std::string::npos);
}

}  // namespace
}  // namespace fdet::obs
