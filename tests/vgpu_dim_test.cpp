#include <gtest/gtest.h>

#include "vgpu/dim.h"
#include "vgpu/shared_mem.h"

namespace fdet::vgpu {
namespace {

TEST(Dim3, CountMultipliesComponents) {
  EXPECT_EQ((Dim3{4, 3, 2}).count(), 24);
  EXPECT_EQ((Dim3{}).count(), 1);
  EXPECT_EQ((Dim3{1024, 1, 1}).count(), 1024);
}

TEST(ThreadCoord, FlatThreadIsXFastest) {
  ThreadCoord t;
  t.block = {8, 4, 2};
  t.thread = {3, 2, 1};
  // x + bx*(y + by*z) = 3 + 8*(2 + 4*1) = 51.
  EXPECT_EQ(t.flat_thread(), 51);
  t.thread = {0, 0, 0};
  EXPECT_EQ(t.flat_thread(), 0);
  t.thread = {7, 3, 1};
  EXPECT_EQ(t.flat_thread(), 8 * 4 * 2 - 1);
}

TEST(ThreadCoord, FlatBlockIsXFastest) {
  ThreadCoord t;
  t.grid = {5, 4, 3};
  t.block_id = {2, 3, 1};
  EXPECT_EQ(t.flat_block(), 2 + 5 * (3 + 4 * 1));
}

TEST(SharedMem, CarveSequenceIsStableAcrossRewinds) {
  SharedMem shared;
  shared.reset(256);
  auto a1 = shared.array<std::int32_t>(16);
  auto b1 = shared.array<float>(8);
  a1[3] = 42;
  b1[2] = 1.5f;
  shared.rewind();
  auto a2 = shared.array<std::int32_t>(16);
  auto b2 = shared.array<float>(8);
  EXPECT_EQ(a2.data(), a1.data());
  EXPECT_EQ(b2.data(), b1.data());
  EXPECT_EQ(a2[3], 42);
  EXPECT_FLOAT_EQ(b2[2], 1.5f);
}

TEST(SharedMem, RespectsAlignment) {
  SharedMem shared;
  shared.reset(256);
  (void)shared.array<std::uint8_t>(3);  // cursor at 3
  auto doubles = shared.array<double>(2);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(doubles.data()) % alignof(double),
            0u);
}

TEST(SharedMem, ResetZeroesTheBuffer) {
  SharedMem shared;
  shared.reset(64);
  auto ints = shared.array<std::int32_t>(16);
  ints[5] = 7;
  shared.reset(64);
  shared.rewind();
  auto again = shared.array<std::int32_t>(16);
  EXPECT_EQ(again[5], 0);
}

TEST(SharedMem, OverflowThrows) {
  SharedMem shared;
  shared.reset(32);
  EXPECT_THROW((void)shared.array<std::int64_t>(5), core::CheckError);
}

}  // namespace
}  // namespace fdet::vgpu
