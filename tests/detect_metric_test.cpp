#include <gtest/gtest.h>

#include <cmath>

#include "detect/detection.h"
#include "detect/grouping.h"

namespace fdet::detect {
namespace {

TEST(Ssquare, IdenticalBoxesScoreOne) {
  const img::Rect r{10, 10, 20, 20};
  EXPECT_DOUBLE_EQ(s_square(r, r), 1.0);
}

TEST(Ssquare, DisjointBoxesScoreZero) {
  EXPECT_DOUBLE_EQ(s_square({0, 0, 5, 5}, {50, 50, 5, 5}), 0.0);
}

TEST(Ssquare, HalfOverlapIsOneThird) {
  // Two 10x10 boxes overlapping in a 5x10 strip: 50 / (200-50) = 1/3.
  EXPECT_NEAR(s_square({0, 0, 10, 10}, {5, 0, 10, 10}), 1.0 / 3.0, 1e-12);
}

TEST(Seyes, IdenticalEyesScoreZero) {
  const Detection d{{10, 10, 48, 48}, 0.0f, 1, 0};
  EXPECT_DOUBLE_EQ(s_eyes(d.predicted_eyes(), d.predicted_eyes()), 0.0);
}

TEST(Seyes, ScalesWithNormalizedDistance) {
  // Shift a detection by its inter-eye distance: both eyes move by d, so
  // the score is (d + d) / d = 2.
  const Detection a{{0, 0, 100, 100}, 0.0f, 1, 0};
  const EyePair ea = a.predicted_eyes();
  const double d = ea.inter_eye_distance();
  Detection b = a;
  b.box.x += static_cast<int>(d);
  EXPECT_NEAR(s_eyes(ea, b.predicted_eyes()), 2.0, 0.05);
}

TEST(Seyes, UsesSmallerEyeDistanceAsDenominator) {
  const Detection small{{0, 0, 50, 50}, 0.0f, 1, 0};
  const Detection large{{0, 0, 200, 200}, 0.0f, 1, 0};
  const double s = s_eyes(small.predicted_eyes(), large.predicted_eyes());
  // Denominator is the small face's eye distance (0.34*50 = 17).
  const double dle = std::hypot(
      small.predicted_eyes().left_x - large.predicted_eyes().left_x,
      small.predicted_eyes().left_y - large.predicted_eyes().left_y);
  const double dre = std::hypot(
      small.predicted_eyes().right_x - large.predicted_eyes().right_x,
      small.predicted_eyes().right_y - large.predicted_eyes().right_y);
  EXPECT_NEAR(s, (dle + dre) / (0.34 * 50), 1e-9);
}

TEST(PredictedEyes, FollowCanonicalGeometry) {
  const Detection d{{100, 200, 48, 48}, 0.0f, 1, 0};
  const EyePair eyes = d.predicted_eyes();
  EXPECT_NEAR(eyes.left_x, 100 + (0.5 - kCanonicalEyeDx) * 48, 1e-9);
  EXPECT_NEAR(eyes.right_x, 100 + (0.5 + kCanonicalEyeDx) * 48, 1e-9);
  EXPECT_NEAR(eyes.left_y, 200 + kCanonicalEyeY * 48, 1e-9);
}

TEST(Grouping, MergesNearbyWindowsIntoOne) {
  std::vector<Detection> raw;
  for (int d = 0; d < 5; ++d) {
    raw.push_back({{100 + d, 100 - d, 48, 48}, static_cast<float>(d), 1, 2});
  }
  const auto grouped = group_detections(raw);
  ASSERT_EQ(grouped.size(), 1u);
  EXPECT_EQ(grouped[0].neighbors, 5);
  EXPECT_FLOAT_EQ(grouped[0].score, 4.0f);  // max member score
  EXPECT_NEAR(grouped[0].box.x, 102, 1);
  EXPECT_EQ(grouped[0].box.w, 48);
}

TEST(Grouping, KeepsDistantFacesSeparate) {
  std::vector<Detection> raw{{{0, 0, 48, 48}, 0.0f, 1, 0},
                             {{300, 300, 48, 48}, 0.0f, 1, 0}};
  EXPECT_EQ(group_detections(raw).size(), 2u);
}

TEST(Grouping, DifferentScalesOfSameFaceMerge) {
  // A 48 and a 60 px window centred on the same face.
  std::vector<Detection> raw{{{100, 100, 48, 48}, 1.0f, 1, 2},
                             {{94, 94, 60, 60}, 2.0f, 1, 3}};
  const auto grouped = group_detections(raw);
  ASSERT_EQ(grouped.size(), 1u);
  EXPECT_EQ(grouped[0].neighbors, 2);
  EXPECT_EQ(grouped[0].scale_index, 3);
}

TEST(Grouping, EmptyInputYieldsEmptyOutput) {
  EXPECT_TRUE(group_detections({}).empty());
}

TEST(Grouping, SingleWindowPassesThroughUnchanged) {
  const std::vector<Detection> raw{{{100, 100, 48, 48}, 3.5f, 1, 2}};
  const auto grouped = group_detections(raw);
  ASSERT_EQ(grouped.size(), 1u);
  EXPECT_EQ(grouped[0].box, raw[0].box);
  EXPECT_EQ(grouped[0].neighbors, 1);
  EXPECT_FLOAT_EQ(grouped[0].score, 3.5f);
  EXPECT_EQ(grouped[0].scale_index, 2);
}

TEST(Grouping, NeighborsNeverExceedTheRawWindowCount) {
  // min_neighbors filters compare against `neighbors`, so its ceiling is
  // the raw count: a min_neighbors above the number of raw windows must
  // be able to reject everything, never underflow or wrap.
  std::vector<Detection> raw;
  for (int d = 0; d < 3; ++d) {
    raw.push_back({{100 + d, 100, 48, 48}, 0.0f, 1, 0});
  }
  const auto grouped = group_detections(raw);
  ASSERT_EQ(grouped.size(), 1u);
  EXPECT_EQ(grouped[0].neighbors, 3);

  const int min_neighbors = static_cast<int>(raw.size()) + 1;
  std::vector<Detection> filtered = grouped;
  std::erase_if(filtered, [&](const Detection& d) {
    return d.neighbors < min_neighbors;
  });
  EXPECT_TRUE(filtered.empty());
}

TEST(Grouping, ThresholdZeroKeepsEveryWindowSeparate) {
  // s_eyes >= 0 always, so nothing clusters at threshold 0 — each window
  // survives as its own single-member group.
  std::vector<Detection> raw{{{100, 100, 48, 48}, 0.0f, 1, 0},
                             {{101, 100, 48, 48}, 1.0f, 1, 0}};
  const auto grouped = group_detections(raw, 0.0);
  ASSERT_EQ(grouped.size(), 2u);
  EXPECT_EQ(grouped[0].neighbors, 1);
  EXPECT_EQ(grouped[1].neighbors, 1);
}

TEST(Grouping, TransitiveChainsCollapse) {
  // a~b and b~c but a!~c directly (s_eyes(a, c) = 8/16.32 ≈ 0.98 > 0.5):
  // union-find must still merge all three.
  std::vector<Detection> raw{{{100, 100, 48, 48}, 0.0f, 1, 0},
                             {{104, 100, 48, 48}, 0.0f, 1, 0},
                             {{108, 100, 48, 48}, 0.0f, 1, 0}};
  const auto grouped = group_detections(raw);
  EXPECT_EQ(grouped.size(), 1u);
  EXPECT_EQ(grouped[0].neighbors, 3);
}

}  // namespace
}  // namespace fdet::detect
