#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "core/rng.h"
#include "img/draw.h"
#include "img/filter.h"
#include "img/io.h"
#include "img/nv12.h"
#include "img/pyramid.h"
#include "img/texture.h"

namespace fdet::img {
namespace {

TEST(Sampler, ReproducesTexelCenters) {
  ImageF32 im(3, 3);
  im(1, 1) = 10.0f;
  const BilinearSampler<float> sampler(im);
  EXPECT_FLOAT_EQ(sampler.sample(1.5f, 1.5f), 10.0f);
  EXPECT_FLOAT_EQ(sampler.sample(0.5f, 0.5f), 0.0f);
}

TEST(Sampler, InterpolatesLinearly) {
  ImageF32 im(2, 1);
  im(0, 0) = 0.0f;
  im(1, 0) = 100.0f;
  const BilinearSampler<float> sampler(im);
  EXPECT_NEAR(sampler.sample(1.0f, 0.5f), 50.0f, 1e-4);
  EXPECT_NEAR(sampler.sample(0.75f, 0.5f), 25.0f, 1e-4);
}

TEST(Sampler, ClampsAtEdges) {
  ImageF32 im(2, 2);
  im(0, 0) = 4.0f;
  const BilinearSampler<float> sampler(im);
  EXPECT_FLOAT_EQ(sampler.sample(-5.0f, -5.0f), 4.0f);
}

TEST(Sampler, ReproducesExactLinearRamp) {
  // A bilinear sampler must reproduce an affine image exactly (interior).
  ImageF32 im(8, 8);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      im(x, y) = static_cast<float>(2 * x + 3 * y);
    }
  }
  const BilinearSampler<float> sampler(im);
  for (float y = 1.0f; y < 7.0f; y += 0.37f) {
    for (float x = 1.0f; x < 7.0f; x += 0.41f) {
      const float expected = 2.0f * (x - 0.5f) + 3.0f * (y - 0.5f);
      EXPECT_NEAR(sampler.sample(x, y), expected, 1e-3);
    }
  }
}

TEST(Filter, RadiusZeroIsIdentity) {
  ImageF32 im(4, 4);
  im(2, 2) = 9.0f;
  const ImageF32 out = binomial_blur(im, 0);
  EXPECT_EQ(out, im);
}

TEST(Filter, PreservesConstantImages) {
  ImageF32 im(6, 6);
  im.fill(3.5f);
  const ImageF32 out = binomial_blur(im, 2);
  for (const float p : out.pixels()) {
    EXPECT_NEAR(p, 3.5f, 1e-5);
  }
}

TEST(Filter, PreservesTotalMassOnImpulse) {
  // Away from borders the kernel is normalized: the impulse response sums
  // to 1.
  ImageF32 im(11, 11);
  im(5, 5) = 1.0f;
  const ImageF32 out = binomial_blur(im, 2);
  float total = 0.0f;
  for (const float p : out.pixels()) {
    EXPECT_GE(p, 0.0f);
    total += p;
  }
  EXPECT_NEAR(total, 1.0f, 1e-5);
  // Center keeps the highest response.
  EXPECT_GT(out(5, 5), out(4, 5));
}

TEST(Filter, ReducesHighFrequencyEnergy) {
  core::Rng rng(99);
  ImageF32 im(32, 32);
  for (auto& p : im.pixels()) {
    p = static_cast<float>(rng.uniform(0.0, 255.0));
  }
  const ImageF32 out = binomial_blur(im, 2);
  // Variance of neighbour differences must drop substantially.
  const auto roughness = [](const ImageF32& image) {
    double acc = 0.0;
    for (int y = 0; y < image.height(); ++y) {
      for (int x = 1; x < image.width(); ++x) {
        const double d = image(x, y) - image(x - 1, y);
        acc += d * d;
      }
    }
    return acc;
  };
  EXPECT_LT(roughness(out), roughness(im) * 0.3);
}

TEST(Filter, AntialiasRadiusGrowsWithFactor) {
  EXPECT_EQ(antialias_radius(1.0), 0);
  EXPECT_EQ(antialias_radius(0.5), 0);
  EXPECT_GE(antialias_radius(1.25), 1);
  EXPECT_GT(antialias_radius(4.0), antialias_radius(2.0));
}

TEST(Pyramid, PlanStopsAtWindowSize) {
  const PyramidPlan plan = plan_pyramid(1920, 1080, 1.25, 24);
  ASSERT_FALSE(plan.levels.empty());
  EXPECT_EQ(plan.levels.front().width, 1920);
  EXPECT_EQ(plan.levels.front().height, 1080);
  for (const auto& level : plan.levels) {
    EXPECT_GE(level.width, 24);
    EXPECT_GE(level.height, 24);
  }
  // The next level after the last must violate the minimum.
  const auto& last = plan.levels.back();
  EXPECT_LT(std::min(last.width, last.height) / 1.25, 24.0 * 1.25);
}

TEST(Pyramid, FactorsFormGeometricSequence) {
  const PyramidPlan plan = plan_pyramid(1000, 1000, 1.5, 24);
  for (std::size_t i = 1; i < plan.levels.size(); ++i) {
    EXPECT_NEAR(plan.levels[i].factor / plan.levels[i - 1].factor, 1.5, 1e-9);
  }
}

TEST(Pyramid, Of1080pHasPaperLikeLevelCount) {
  // With a 1.25 step and 24px window, 1080p yields ~17 levels; the paper's
  // Fig. 7 shows rejection rates across a comparable number of scales.
  const PyramidPlan plan = plan_pyramid(1920, 1080, 1.25, 24);
  EXPECT_GE(plan.levels.size(), 12u);
  EXPECT_LE(plan.levels.size(), 20u);
}

TEST(Pyramid, BuildProducesPlannedDimensions) {
  ImageU8 frame(100, 80);
  frame.fill(128);
  const PyramidPlan plan = plan_pyramid(100, 80, 1.6, 24);
  const auto levels = build_pyramid_cpu(frame, plan);
  ASSERT_EQ(levels.size(), plan.levels.size());
  for (std::size_t i = 0; i < levels.size(); ++i) {
    EXPECT_EQ(levels[i].width(), plan.levels[i].width);
    EXPECT_EQ(levels[i].height(), plan.levels[i].height);
  }
}

TEST(Pyramid, DownscalePreservesMeanBrightness) {
  core::Rng rng(5);
  ImageU8 frame(128, 128);
  for (auto& p : frame.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  const PyramidPlan plan = plan_pyramid(128, 128, 2.0, 24);
  const auto levels = build_pyramid_cpu(frame, plan);
  double mean0 = 0.0;
  for (const float p : levels[0].pixels()) {
    mean0 += p;
  }
  mean0 /= static_cast<double>(levels[0].size());
  for (std::size_t i = 1; i < levels.size(); ++i) {
    double mean = 0.0;
    for (const float p : levels[i].pixels()) {
      mean += p;
    }
    mean /= static_cast<double>(levels[i].size());
    EXPECT_NEAR(mean, mean0, 4.0) << "level " << i;
  }
}

TEST(Resize, IdentityWhenSameSize) {
  ImageF32 im(10, 10);
  im(3, 4) = 7.0f;
  const ImageF32 out = resize_bilinear(im, 10, 10);
  EXPECT_NEAR(out(3, 4), 7.0f, 1e-4);
}

TEST(Nv12, RoundTripsGray) {
  ImageU8 gray(16, 16);
  gray(3, 3) = 200;
  const Nv12Frame frame = Nv12Frame::from_gray(gray);
  EXPECT_EQ(frame.luma()(3, 3), 200);
  ImageU8 r, g, b;
  frame.to_rgb(r, g, b);
  // Neutral chroma: RGB equals luma.
  EXPECT_NEAR(r(3, 3), 200, 1);
  EXPECT_NEAR(g(3, 3), 200, 1);
  EXPECT_NEAR(b(3, 3), 200, 1);
}

TEST(Nv12, RejectsOddDimensions) {
  EXPECT_THROW(Nv12Frame(15, 16), core::CheckError);
  EXPECT_THROW(Nv12Frame(16, 15), core::CheckError);
}

TEST(Io, PgmRoundTrip) {
  core::Rng rng(3);
  ImageU8 im(20, 10);
  for (auto& p : im.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  const std::string path =
      (std::filesystem::temp_directory_path() / "fdet_io_test.pgm").string();
  write_pgm(path, im);
  const ImageU8 back = read_pgm(path);
  EXPECT_EQ(back, im);
  std::remove(path.c_str());
}

TEST(Io, PpmWritesExpectedSize) {
  ImageU8 plane(8, 4);
  const std::string path =
      (std::filesystem::temp_directory_path() / "fdet_io_test.ppm").string();
  write_ppm(path, plane, plane, plane);
  EXPECT_GT(std::filesystem::file_size(path), 8u * 4 * 3);
  std::remove(path.c_str());
}

TEST(Draw, OutlinesRectangleAndClips) {
  ImageU8 im(10, 10);
  draw_rect(im, Rect{-2, -2, 6, 6}, 255);
  // Interior untouched, border drawn where inside the image.
  EXPECT_EQ(im(3, 0), 255);  // top edge (clipped row 0? rect row -2 clipped)
  EXPECT_EQ(im(3, 3), 255);  // bottom edge at y=3
  EXPECT_EQ(im(2, 2), 0);    // interior
}

TEST(Draw, ThicknessGrowsInward) {
  ImageU8 im(20, 20);
  draw_rect(im, Rect{2, 2, 10, 10}, 200, 2);
  EXPECT_EQ(im(2, 2), 200);
  EXPECT_EQ(im(3, 3), 200);
  EXPECT_EQ(im(4, 4), 0);
}

}  // namespace
}  // namespace fdet::img
