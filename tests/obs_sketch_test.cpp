// Quantile sketches: bucket layout, the documented relative-error bound,
// merge associativity, sliding-window rotation boundaries, and agreement
// with exact percentiles on the committed BENCH_fig5.json samples.
#include "obs/sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/check.h"
#include "obs/json.h"
#include "obs/runrecord.h"

namespace fdet::obs {
namespace {

/// Exact quantile matching the sketch's rank convention: the smallest
/// value whose rank covers q * n observations.
double exact_quantile(std::vector<double> values, double q) {
  FDET_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  const double target = q * static_cast<double>(values.size());
  auto rank = static_cast<std::size_t>(std::ceil(target));
  rank = std::clamp<std::size_t>(rank, 1, values.size());
  return values[rank - 1];
}

TEST(QuantileSketch, BucketLayoutIsGeometricAndMonotonic) {
  const QuantileSketch sketch;
  const SketchOptions& opt = sketch.options();
  // Zero bucket: everything at or below min_value, including garbage.
  EXPECT_EQ(sketch.bucket_index(0.0), 0);
  EXPECT_EQ(sketch.bucket_index(-3.0), 0);
  EXPECT_EQ(sketch.bucket_index(opt.min_value), 0);
  EXPECT_EQ(sketch.bucket_index(std::nan("")), 0);
  // Indices never decrease with the value and clamp at the last bucket.
  int last = 0;
  for (double v = opt.min_value; v < 1e9; v *= 1.7) {
    const int index = sketch.bucket_index(v);
    EXPECT_GE(index, last);
    EXPECT_LT(index, opt.max_buckets);
    last = index;
  }
  EXPECT_EQ(sketch.bucket_index(1e300), opt.max_buckets - 1);
}

TEST(QuantileSketch, QuantilesHonorTheDocumentedErrorBound) {
  QuantileSketch sketch;
  std::vector<double> values;
  // Log-uniform latencies across five decades — the span the sketch is
  // built for (0.01 ms .. 1 s).
  for (int i = 0; i < 5000; ++i) {
    const double v = 0.01 * std::pow(10.0, 5.0 * i / 5000.0);
    values.push_back(v);
    sketch.observe(v);
  }
  const double bound = sketch.max_relative_error();
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    const double exact = exact_quantile(values, q);
    const double estimate = sketch.quantile(q);
    EXPECT_NEAR(estimate, exact, bound * exact + 1e-12)
        << "q=" << q << " exact=" << exact << " estimate=" << estimate;
  }
  EXPECT_DOUBLE_EQ(sketch.count(), 5000.0);
  EXPECT_DOUBLE_EQ(sketch.min_observed(), values.front());
  EXPECT_DOUBLE_EQ(sketch.max_observed(), values.back());
}

TEST(QuantileSketch, MergeIsAssociativeAndMatchesBulkObserve) {
  const auto fill = [](QuantileSketch& sketch, int lo, int hi) {
    for (int i = lo; i < hi; ++i) {
      sketch.observe(0.5 + 0.01 * i);
    }
  };
  QuantileSketch a, b, c, bulk;
  fill(a, 0, 100);
  fill(b, 100, 350);
  fill(c, 350, 600);
  fill(bulk, 0, 600);

  // (a + b) + c
  QuantileSketch left = a;
  left.merge(b);
  left.merge(c);
  // a + (b + c)
  QuantileSketch right = b;
  right.merge(c);
  QuantileSketch right_total = a;
  right_total.merge(right);

  EXPECT_EQ(left.buckets(), right_total.buckets());
  EXPECT_EQ(left.buckets(), bulk.buckets());
  EXPECT_DOUBLE_EQ(left.count(), bulk.count());
  EXPECT_DOUBLE_EQ(left.sum(), bulk.sum());
  EXPECT_DOUBLE_EQ(left.min_observed(), bulk.min_observed());
  EXPECT_DOUBLE_EQ(left.max_observed(), bulk.max_observed());
  for (const double q : {0.25, 0.5, 0.99}) {
    EXPECT_DOUBLE_EQ(left.quantile(q), bulk.quantile(q));
    EXPECT_DOUBLE_EQ(right_total.quantile(q), bulk.quantile(q));
  }
}

TEST(QuantileSketch, MergeRejectsMismatchedOptions) {
  QuantileSketch fine;
  SketchOptions coarse_options;
  coarse_options.relative_error = 0.05;
  QuantileSketch coarse(coarse_options);
  coarse.observe(1.0);
  EXPECT_THROW(fine.merge(coarse), core::CheckError);
}

TEST(QuantileSketch, EmptySketchThrowsOnQuantile) {
  const QuantileSketch sketch;
  EXPECT_TRUE(sketch.empty());
  EXPECT_THROW(sketch.quantile(0.5), core::CheckError);
}

TEST(QuantileSketch, WeightedObservationsCountFully) {
  QuantileSketch sketch;
  sketch.observe(10.0, 3.0);
  sketch.observe(20.0, 1.0);
  EXPECT_DOUBLE_EQ(sketch.count(), 4.0);
  EXPECT_DOUBLE_EQ(sketch.sum(), 50.0);
  // 3 of 4 observations are 10.0, so p50 lands in 10's bucket.
  EXPECT_NEAR(sketch.quantile(0.5), 10.0,
              sketch.max_relative_error() * 10.0 + 1e-12);
}

TEST(SlidingWindowSketch, RotationEvictsExactlyTheOldestSlot) {
  SlidingWindowSketch window(3);
  window.observe(1.0);  // slot A
  window.rotate();
  window.observe(2.0);  // slot B
  window.rotate();
  window.observe(3.0);  // slot C
  EXPECT_DOUBLE_EQ(window.count(), 3.0);

  // Boundary: slot A's value survives exactly slots-1 rotations.
  window.rotate();  // evicts slot A
  EXPECT_DOUBLE_EQ(window.count(), 2.0);
  EXPECT_GT(window.quantile(0.0), 1.5);  // 1.0 is gone

  window.rotate();  // evicts slot B
  EXPECT_DOUBLE_EQ(window.count(), 1.0);
  window.rotate();  // evicts slot C: the window is now empty
  EXPECT_TRUE(window.empty());
  EXPECT_EQ(window.rotations(), 5u);
  EXPECT_THROW(window.quantile(0.5), core::CheckError);
}

TEST(SlidingWindowSketch, MergedAgreesWithSingleSketchOverLiveSlots) {
  SlidingWindowSketch window(4);
  QuantileSketch reference;
  for (int i = 0; i < 200; ++i) {
    const double v = 1.0 + 0.05 * i;
    window.observe(v);
    reference.observe(v);
    if ((i + 1) % 60 == 0) {
      window.rotate();  // stays within 4 slots: nothing evicted yet
    }
  }
  ASSERT_DOUBLE_EQ(window.count(), reference.count());
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(window.quantile(q), reference.quantile(q));
  }
}

TEST(SlidingWindowSketch, SingleSlotWindowClearsOnEveryRotation) {
  SlidingWindowSketch window(1);
  window.observe(5.0);
  EXPECT_DOUBLE_EQ(window.count(), 1.0);
  window.rotate();
  EXPECT_TRUE(window.empty());
}

// The accuracy claim the SLO engine relies on, validated against real
// repo data: every sample of the committed fig5 run record must be
// reproduced by the sketch within max_relative_error().
TEST(QuantileSketch, AgreesWithExactPercentilesOnCommittedFig5Samples) {
  const std::string path = std::string(FDET_SOURCE_DIR) + "/BENCH_fig5.json";
  const RunRecord record = RunRecord::load_file(path);
  ASSERT_FALSE(record.metrics.empty());

  // The record mixes milliseconds with launch/byte totals, spanning
  // ~1e-2..1e10; size the bucket range for it (the guarantee only holds
  // inside the covered range, as documented on SketchOptions).
  SketchOptions options;
  options.max_buckets = 2048;
  QuantileSketch sketch(options);
  std::vector<double> values;
  for (const MetricSeries& series : record.metrics) {
    for (const double sample : series.samples) {
      // The relative-error guarantee applies above the zero bucket;
      // non-positive and sub-min_value samples (violation counts of 0,
      // MAD-free repeats) are out of scope by documentation.
      if (std::isfinite(sample) && sample > sketch.options().min_value) {
        values.push_back(sample);
        sketch.observe(sample);
      }
    }
  }
  ASSERT_GT(values.size(), 100u) << "fig5 record unexpectedly small";
  ASSERT_LT(sketch.bucket_index(sketch.max_observed()),
            options.max_buckets - 1)
      << "samples clamp into the last bucket; widen max_buckets";

  const double bound = sketch.max_relative_error();
  for (const double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    const double exact = exact_quantile(values, q);
    const double estimate = sketch.quantile(q);
    EXPECT_LE(std::abs(estimate - exact), bound * exact + 1e-12)
        << "q=" << q << " exact=" << exact << " estimate=" << estimate
        << " documented bound=" << bound;
  }
}

}  // namespace
}  // namespace fdet::obs
