// PerfCounters edge cases (degenerate ratios, clamping, associative
// merging) and the shared-memory bank-conflict model: deliberately
// conflicting access patterns must serialize and show up in both the
// conflict counter and the service-cycle decomposition, while stride-1
// and broadcast patterns stay free.
#include "vgpu/counters.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "vgpu/kernel.h"

namespace fdet::vgpu {
namespace {

TEST(PerfCounters, DefaultConstructedRatiosAreBenign) {
  const PerfCounters c;
  // No branches / no issued warp cycles count as fully efficient rather
  // than dividing by zero.
  EXPECT_DOUBLE_EQ(c.branch_efficiency(), 1.0);
  EXPECT_DOUBLE_EQ(c.simd_efficiency(), 1.0);
  // Zero or negative durations yield 0 throughput, not infinity.
  EXPECT_DOUBLE_EQ(c.dram_read_throughput(0.0), 0.0);
  EXPECT_DOUBLE_EQ(c.dram_read_throughput(-1.0), 0.0);
  // No ops and no bytes: intensity 0, not 0/0.
  EXPECT_DOUBLE_EQ(c.arithmetic_intensity(), 0.0);
}

TEST(PerfCounters, ArithmeticIntensityCoversAllRooflineCases) {
  PerfCounters compute_only;
  compute_only.alu_ops = 100;
  EXPECT_TRUE(std::isinf(compute_only.arithmetic_intensity()));

  PerfCounters memory_only;
  memory_only.global_read_bytes = 256;
  EXPECT_DOUBLE_EQ(memory_only.arithmetic_intensity(), 0.0);

  PerfCounters mixed;
  mixed.alu_ops = 64;
  mixed.fma_ops = 32;
  mixed.sfu_ops = 4;
  mixed.global_read_bytes = 40;
  mixed.global_write_bytes = 10;
  EXPECT_EQ(mixed.arithmetic_ops(), 100u);
  EXPECT_EQ(mixed.global_bytes(), 50u);
  EXPECT_DOUBLE_EQ(mixed.arithmetic_intensity(), 2.0);
}

TEST(PerfCounters, BranchEfficiencyClampsInconsistentInputs) {
  // More divergent than total branches can only come from a buggy merge;
  // the ratio clamps to [0, 1] instead of going negative.
  PerfCounters c;
  c.warp_branches = 4;
  c.divergent_branches = 9;
  EXPECT_DOUBLE_EQ(c.branch_efficiency(), 0.0);

  c.divergent_branches = 1;
  EXPECT_DOUBLE_EQ(c.branch_efficiency(), 0.75);
}

TEST(PerfCounters, SimdEfficiencyClampsAboveOne) {
  PerfCounters c;
  c.lane_issue_cycles = 33.0 * 10.0;  // impossible: >32 lanes' worth
  c.warp_issue_cycles = 10.0;
  EXPECT_DOUBLE_EQ(c.simd_efficiency(), 1.0);
}

PerfCounters filled(std::uint64_t base) {
  PerfCounters c;
  c.threads = base + 1;
  c.warps = base + 2;
  c.warp_branches = base + 3;
  c.divergent_branches = base + 4;
  c.global_read_bytes = base + 5;
  c.global_write_bytes = base + 6;
  c.global_transactions = base + 7;
  c.alu_ops = base + 8;
  c.fma_ops = base + 9;
  c.sfu_ops = base + 10;
  c.shared_accesses = base + 11;
  c.constant_accesses = base + 12;
  c.texture_fetches = base + 13;
  c.bank_conflicts = base + 14;
  c.lane_issue_cycles = static_cast<double>(base) + 0.25;
  c.warp_issue_cycles = static_cast<double>(base) + 0.5;
  c.issue_service_cycles = static_cast<double>(base) + 0.125;
  c.stall_service_cycles = static_cast<double>(base) + 0.375;
  c.stall_base_cycles = static_cast<double>(base) + 0.0625;
  c.divergence_cycles = static_cast<double>(base) + 0.75;
  c.bank_conflict_cycles = static_cast<double>(base) + 0.875;
  return c;
}

void expect_equal(const PerfCounters& a, const PerfCounters& b) {
  EXPECT_EQ(a.threads, b.threads);
  EXPECT_EQ(a.warps, b.warps);
  EXPECT_EQ(a.warp_branches, b.warp_branches);
  EXPECT_EQ(a.divergent_branches, b.divergent_branches);
  EXPECT_EQ(a.global_read_bytes, b.global_read_bytes);
  EXPECT_EQ(a.global_write_bytes, b.global_write_bytes);
  EXPECT_EQ(a.global_transactions, b.global_transactions);
  EXPECT_EQ(a.alu_ops, b.alu_ops);
  EXPECT_EQ(a.fma_ops, b.fma_ops);
  EXPECT_EQ(a.sfu_ops, b.sfu_ops);
  EXPECT_EQ(a.shared_accesses, b.shared_accesses);
  EXPECT_EQ(a.constant_accesses, b.constant_accesses);
  EXPECT_EQ(a.texture_fetches, b.texture_fetches);
  EXPECT_EQ(a.bank_conflicts, b.bank_conflicts);
  EXPECT_DOUBLE_EQ(a.lane_issue_cycles, b.lane_issue_cycles);
  EXPECT_DOUBLE_EQ(a.warp_issue_cycles, b.warp_issue_cycles);
  EXPECT_DOUBLE_EQ(a.issue_service_cycles, b.issue_service_cycles);
  EXPECT_DOUBLE_EQ(a.stall_service_cycles, b.stall_service_cycles);
  EXPECT_DOUBLE_EQ(a.stall_base_cycles, b.stall_base_cycles);
  EXPECT_DOUBLE_EQ(a.divergence_cycles, b.divergence_cycles);
  EXPECT_DOUBLE_EQ(a.bank_conflict_cycles, b.bank_conflict_cycles);
}

TEST(PerfCounters, MergeIsAssociativeOverEveryField) {
  // (a + b) + c must equal a + (b + c) fieldwise — the profiler merges
  // launches in arbitrary order, so any non-summable field would skew
  // aggregates depending on launch interleaving.
  PerfCounters left = filled(100);
  PerfCounters left_b = filled(2000);
  left += left_b;
  left += filled(30000);

  PerfCounters right_bc = filled(2000);
  right_bc += filled(30000);
  PerfCounters right = filled(100);
  right += right_bc;

  expect_equal(left, right);
}

// --- bank-conflict model (one warp, one addressed access per lane) -----

LaunchCost run_shared_pattern(std::uint64_t stride_words) {
  const DeviceSpec spec;
  KernelConfig config{.name = "shared_pattern",
                      .grid = {1, 1, 1},
                      .block = {32, 1, 1},
                      .shared_bytes = 4096};
  return execute_kernel(
      spec, config, [=](const ThreadCoord& t, LaneCtx& ctx, SharedMem&) {
        const std::size_t offset =
            static_cast<std::size_t>(t.thread.x) * stride_words * 4;
        ctx.shared_load(offset, 4);
      });
}

TEST(BankConflicts, StrideOneIsConflictFree) {
  // word = lane: every lane hits its own bank.
  const LaunchCost cost = run_shared_pattern(1);
  EXPECT_EQ(cost.counters.shared_accesses, 32u);
  EXPECT_EQ(cost.counters.bank_conflicts, 0u);
  EXPECT_DOUBLE_EQ(cost.counters.bank_conflict_cycles, 0.0);
}

TEST(BankConflicts, BroadcastOfOneWordIsFree) {
  // All 32 lanes read the same word: hardware broadcasts in one pass.
  const LaunchCost cost = run_shared_pattern(0);
  EXPECT_EQ(cost.counters.bank_conflicts, 0u);
  EXPECT_DOUBLE_EQ(cost.counters.bank_conflict_cycles, 0.0);
}

TEST(BankConflicts, Stride32SerializesIntoThirtyTwoPasses) {
  // word = lane * 32: 32 distinct words, all in bank 0 — the classic
  // worst case (column walk of a 32-wide shared tile). Degree 32 means
  // 31 extra serialized passes for the single access slot.
  const LaunchCost cost = run_shared_pattern(32);
  EXPECT_EQ(cost.counters.bank_conflicts, 31u);
  EXPECT_GT(cost.counters.bank_conflict_cycles, 0.0);

  // The serialization must cost real service cycles relative to the
  // conflict-free pattern with the identical instruction mix.
  const LaunchCost clean = run_shared_pattern(1);
  EXPECT_GT(cost.total_service_cycles, clean.total_service_cycles);
  const DeviceSpec spec;
  EXPECT_NEAR(cost.counters.warp_issue_cycles -
                  clean.counters.warp_issue_cycles,
              31.0 * spec.cost.shared_conflict, 1e-9);
}

TEST(BankConflicts, TwoWayConflictCostsOneExtraPass) {
  // word = lane * 2: lanes l and l+16 land in the same even bank with
  // distinct words — 16 banks with degree 2 each. The slot pays
  // max-degree-minus-one, not the sum over banks: one extra pass.
  const LaunchCost cost = run_shared_pattern(2);
  EXPECT_EQ(cost.counters.bank_conflicts, 1u);
}

TEST(BankConflicts, UnaddressedSharedAccessStaysConflictFree) {
  // The shared_access() escape hatch carries no address, so the model
  // treats it as conflict-free even when the addressed equivalent would
  // serialize.
  const DeviceSpec spec;
  KernelConfig config{.name = "unaddressed",
                      .grid = {1, 1, 1},
                      .block = {32, 1, 1},
                      .shared_bytes = 4096};
  const LaunchCost cost = execute_kernel(
      spec, config,
      [](const ThreadCoord&, LaneCtx& ctx, SharedMem&) { ctx.shared_access(); });
  EXPECT_EQ(cost.counters.shared_accesses, 32u);
  EXPECT_EQ(cost.counters.bank_conflicts, 0u);
}

TEST(BankConflicts, MisalignedSlotsDoNotCrossConflict) {
  // Half the warp issues one access, the other half two: the lone second
  // slot only sees the lanes that actually issued it. Lanes 16..31 issue
  // their second access into bank 0 with distinct words — degree 16.
  const DeviceSpec spec;
  KernelConfig config{.name = "ragged",
                      .grid = {1, 1, 1},
                      .block = {32, 1, 1},
                      .shared_bytes = 4096};
  const LaunchCost cost = execute_kernel(
      spec, config, [](const ThreadCoord& t, LaneCtx& ctx, SharedMem&) {
        ctx.shared_load(static_cast<std::size_t>(t.thread.x) * 4, 4);  // clean
        if (t.thread.x >= 16) {
          ctx.shared_load(static_cast<std::size_t>(t.thread.x - 16) * 32 * 4,
                          4);
        }
      });
  EXPECT_EQ(cost.counters.bank_conflicts, 15u);
}

// --- service-cycle decomposition ---------------------------------------

TEST(ServiceDecomposition, ComponentsSumToTotalServiceCycles) {
  const DeviceSpec spec;
  KernelConfig config{.name = "mixed",
                      .grid = {8, 2, 1},
                      .block = {64, 1, 1},
                      .shared_bytes = 4096,
                      .track_branches = true};
  const LaunchCost cost = execute_kernel(
      spec, config, [](const ThreadCoord& t, LaneCtx& ctx, SharedMem&) {
        ctx.alu(3 + t.thread.x % 5);  // uneven lanes -> divergence cycles
        ctx.branch(t.thread.x % 2 == 0);
        ctx.global_load(static_cast<std::uint64_t>(t.flat_thread()) * 4, 4);
        // Conflicting column walk within each warp.
        ctx.shared_load(static_cast<std::size_t>(t.thread.x % 32) * 32 * 4, 4);
      });

  const PerfCounters& c = cost.counters;
  const double total = cost.total_service_cycles;
  ASSERT_GT(total, 0.0);
  EXPECT_NEAR(c.issue_service_cycles + c.stall_service_cycles, total,
              total * 1e-9);
  EXPECT_GT(c.divergence_cycles, 0.0);
  EXPECT_GT(c.bank_conflict_cycles, 0.0);
  EXPECT_LE(c.divergence_cycles + c.bank_conflict_cycles,
            c.issue_service_cycles * (1.0 + 1e-9));
  EXPECT_LE(c.stall_base_cycles, c.stall_service_cycles * (1.0 + 1e-9));
}

TEST(ServiceDecomposition, OccupancyLimitedStallAppearsAtLowOccupancy) {
  const DeviceSpec spec;
  // Memory-heavy body so stalls dominate.
  const auto body = [](const ThreadCoord& t, LaneCtx& ctx, SharedMem&) {
    ctx.global_load(static_cast<std::uint64_t>(t.flat_thread()) * 4, 4);
    ctx.alu();
  };
  KernelConfig high{.name = "occ_high", .grid = {14, 1, 1}, .block = {192, 1, 1}};
  KernelConfig low = high;
  low.name = "occ_low";
  low.shared_bytes = 40 * 1024;  // one resident block per SM

  const LaunchCost fast = execute_kernel(spec, high, body);
  const LaunchCost slow = execute_kernel(spec, low, body);

  // At low occupancy the visible stall exceeds what a fully occupied SM
  // would see; that excess is the profiler's "occupancy-limited" bucket.
  const double slow_excess = slow.counters.stall_service_cycles -
                             slow.counters.stall_base_cycles;
  const double fast_excess = fast.counters.stall_service_cycles -
                             fast.counters.stall_base_cycles;
  EXPECT_GT(slow_excess, 0.0);
  EXPECT_GT(slow_excess, fast_excess);
}

}  // namespace
}  // namespace fdet::vgpu
