// Deterministic corruption machinery (ingest/mutate.h): the seeded
// whole-stream mutator the fuzz harness sweeps, and the frame-targeted
// CorruptingSource the chaos/serving tests use to stage mid-stream
// malformed bursts. Both must be reproducible from their seeds — a fuzz
// failure that cannot be replayed is worthless.
#include "ingest/mutate.h"

#include <gtest/gtest.h>

#include <string>

#include "ingest/error.h"
#include "ingest/registry.h"
#include "video/trailer.h"

namespace fdet::ingest {
namespace {

video::SyntheticTrailer test_trailer() {
  video::TrailerSpec spec;
  spec.title = "mutate-test";
  spec.width = 64;
  spec.height = 48;
  spec.frames = 4;
  spec.fps = 24.0;
  spec.shot_frames = 2;
  spec.seed = 0xbeef;
  return video::SyntheticTrailer(spec);
}

TEST(MutationKinds, TokensRoundTrip) {
  for (const MutationKind kind : kAllMutations) {
    EXPECT_EQ(parse_mutation_kind(mutation_kind_name(kind)), kind);
  }
  EXPECT_THROW(parse_mutation_kind("nuke"), IngestError);
}

TEST(MutateStream, DeterministicInKindAndSeed) {
  const std::string pristine = encode_stream(Format::kRaw, test_trailer());
  for (const MutationKind kind : kAllMutations) {
    const std::string a = mutate_stream(pristine, kind, 42);
    const std::string b = mutate_stream(pristine, kind, 42);
    EXPECT_EQ(a, b) << mutation_kind_name(kind);
    EXPECT_NE(a, pristine) << mutation_kind_name(kind)
                           << ": mutation must change the stream";
  }
}

TEST(MutateStream, DifferentSeedsDiverge) {
  const std::string pristine = encode_stream(Format::kRaw, test_trailer());
  // Bit flips land on seed-chosen offsets; two seeds colliding on the
  // same flips would make the sweep revisit mutants.
  EXPECT_NE(mutate_stream(pristine, MutationKind::kBitFlip, 1),
            mutate_stream(pristine, MutationKind::kBitFlip, 2));
}

TEST(MutateStream, TruncateShortensAndGarbageTailLengthens) {
  const std::string pristine = encode_stream(Format::kMjpeg, test_trailer());
  EXPECT_LT(mutate_stream(pristine, MutationKind::kTruncate, 9).size(),
            pristine.size());
  EXPECT_GT(mutate_stream(pristine, MutationKind::kGarbageTail, 9).size(),
            pristine.size());
}

TEST(CorruptPlan, ParsesKindAtFrameEntries) {
  const CorruptPlan plan = CorruptPlan::parse("flip@12,zero@30,splice@31", 7);
  ASSERT_EQ(plan.entries.size(), 3u);
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_EQ(plan.entries[0].kind, MutationKind::kBitFlip);
  EXPECT_EQ(plan.entries[0].frame, 12);
  EXPECT_EQ(plan.entries[2].kind, MutationKind::kSplice);
  EXPECT_EQ(plan.entries[2].frame, 31);
  ASSERT_NE(plan.find(30), nullptr);
  EXPECT_EQ(plan.find(30)->kind, MutationKind::kZeroRun);
  EXPECT_EQ(plan.find(13), nullptr);
}

TEST(CorruptPlan, EmptySpecIsEmptyPlan) {
  EXPECT_TRUE(CorruptPlan::parse("").empty());
}

TEST(CorruptPlan, MalformedEntriesAreTypedCliErrors) {
  for (const char* spec : {"flip", "flip@", "@3", "nuke@3", "flip@x"}) {
    try {
      CorruptPlan::parse(spec);
      FAIL() << "expected IngestError for '" << spec << "'";
    } catch (const IngestError& error) {
      EXPECT_EQ(error.kind(), IngestErrorKind::kUnsupported) << spec;
    }
  }
}

TEST(CorruptingSource, UntargetedFramesPassThroughByteIdentical) {
  const std::string pristine = encode_stream(Format::kRaw, test_trailer());
  const auto clean = open_stream(pristine);
  const CorruptingSource corrupting(pristine, CorruptPlan::parse("flip@2", 5));
  EXPECT_EQ(corrupting.info().frames, 4);
  for (const int i : {0, 1, 3}) {
    EXPECT_EQ(corrupting.decode(i).frame.luma(),
              clean->decode(i).frame.luma())
        << "frame " << i;
    EXPECT_NEAR(corrupting.decode_latency_ms(i),
                clean->decode_latency_ms(i), 1e-12);
  }
}

TEST(CorruptingSource, TargetedRawFrameFailsItsChecksumTyped) {
  // The raw container CRCs every payload, and the mutator targets only
  // payload bytes (frame_bytes excludes the CRC) — so a bit flip on a
  // targeted frame is guaranteed to surface as kChecksumMismatch.
  const CorruptingSource source(encode_stream(Format::kRaw, test_trailer()),
                                CorruptPlan::parse("flip@2", 5));
  try {
    source.decode(2);
    FAIL() << "expected IngestError";
  } catch (const IngestError& error) {
    EXPECT_EQ(error.kind(), IngestErrorKind::kChecksumMismatch);
    EXPECT_EQ(error.format(), "raw");
  }
  // Statelessness holds for failures too: same frame, same error.
  EXPECT_THROW(source.decode(2), IngestError);
  EXPECT_NO_THROW(source.decode(3));
}

TEST(CorruptingSource, DamageIsDeterministicInThePlanSeed) {
  const std::string pristine = encode_stream(Format::kMjpeg, test_trailer());
  // Whatever a targeted decode produces — a typed rejection or a frame
  // the CRC-less RLE coder still accepts — two sources built from the
  // same plan must agree.
  for (const std::uint64_t seed : {1ull, 99ull}) {
    const CorruptingSource a(pristine, CorruptPlan::parse("splice@1", seed));
    const CorruptingSource b(pristine, CorruptPlan::parse("splice@1", seed));
    try {
      const auto frame_a = a.decode(1);
      const auto frame_b = b.decode(1);
      EXPECT_EQ(frame_a.frame.luma(), frame_b.frame.luma());
    } catch (const IngestError& error_a) {
      try {
        b.decode(1);
        FAIL() << "a rejected but b decoded: " << error_a.what();
      } catch (const IngestError& error_b) {
        EXPECT_EQ(error_a.kind(), error_b.kind());
      }
    }
  }
}

TEST(CorruptingSource, PristineStreamMustOpenClean) {
  std::string broken = encode_stream(Format::kGif, test_trailer());
  broken[0] = 'Z';
  EXPECT_THROW(CorruptingSource(std::move(broken), CorruptPlan::parse("")),
               IngestError);
}

}  // namespace
}  // namespace fdet::ingest
