#include "train/stump.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/check.h"
#include "core/rng.h"

namespace fdet::train {
namespace {

TEST(GentleStump, SeparableDataYieldsNearZeroLoss) {
  // Responses < 100 are negatives, >= 100 positives.
  std::vector<std::int32_t> responses;
  std::vector<float> targets;
  std::vector<double> weights;
  for (int i = 0; i < 50; ++i) {
    responses.push_back(i);
    targets.push_back(-1.0f);
    weights.push_back(0.01);
    responses.push_back(200 + i);
    targets.push_back(1.0f);
    weights.push_back(0.01);
  }
  const StumpFit fit = fit_gentle_stump(responses, targets, weights);
  ASSERT_TRUE(fit.valid);
  EXPECT_GT(fit.threshold, 49.0f);
  EXPECT_LE(fit.threshold, 201.0f);
  EXPECT_NEAR(fit.left_vote, -1.0f, 0.05f);
  EXPECT_NEAR(fit.right_vote, 1.0f, 0.05f);
  EXPECT_LT(fit.loss, 0.05);
}

TEST(GentleStump, VotesAreWeightedMeans) {
  // All mass on one side: votes are the weighted target means.
  std::vector<std::int32_t> responses{0, 0, 10, 10};
  std::vector<float> targets{1.0f, -1.0f, 1.0f, 1.0f};
  std::vector<double> weights{0.3, 0.1, 0.3, 0.3};
  const StumpFit fit = fit_gentle_stump(responses, targets, weights);
  ASSERT_TRUE(fit.valid);
  // Left: weights .3/.1 of +1/-1 -> (0.3-0.1)/0.4 = 0.5; right: +1.
  EXPECT_NEAR(fit.left_vote, 0.5f, 1e-4f);
  EXPECT_NEAR(fit.right_vote, 1.0f, 1e-4f);
}

TEST(GentleStump, ConstantResponsesAreInvalid) {
  std::vector<std::int32_t> responses(10, 42);
  std::vector<float> targets(10, 1.0f);
  std::vector<double> weights(10, 0.1);
  EXPECT_FALSE(fit_gentle_stump(responses, targets, weights).valid);
}

TEST(GentleStump, RespectsWeights) {
  // Same data, two weightings: upweighting the overlapping negatives must
  // move the split.
  std::vector<std::int32_t> responses{0, 10, 20, 30, 40, 50};
  std::vector<float> targets{-1, -1, 1, -1, 1, 1};
  std::vector<double> flat(6, 1.0 / 6);
  std::vector<double> skewed{0.05, 0.05, 0.05, 0.70, 0.05, 0.10};
  const StumpFit a = fit_gentle_stump(responses, targets, flat, 8);
  const StumpFit b = fit_gentle_stump(responses, targets, skewed, 8);
  ASSERT_TRUE(a.valid && b.valid);
  // With the heavy negative at 30, the optimal threshold moves right.
  EXPECT_GT(b.threshold, a.threshold);
}

TEST(DiscreteStump, FindsZeroErrorSplitAndPolarity) {
  std::vector<std::int32_t> responses{1, 2, 3, 100, 101, 102};
  std::vector<float> targets{1, 1, 1, -1, -1, -1};  // positives on the LEFT
  std::vector<double> weights(6, 1.0 / 6);
  const StumpFit fit = fit_discrete_stump(responses, targets, weights);
  ASSERT_TRUE(fit.valid);
  EXPECT_LT(fit.loss, 1e-9);
  EXPECT_FLOAT_EQ(fit.left_vote, 1.0f);   // left predicts +1
  EXPECT_FLOAT_EQ(fit.right_vote, -1.0f);
}

TEST(DiscreteStump, LossIsWeightedErrorOfBestSplit) {
  // One inseparable point with weight 0.2.
  std::vector<std::int32_t> responses{0, 1, 2, 100};
  std::vector<float> targets{-1, -1, 1, 1};
  std::vector<double> weights{0.2, 0.2, 0.2, 0.4};
  const StumpFit fit = fit_discrete_stump(responses, targets, weights, 16);
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.loss, 0.2, 1e-9);  // must misclassify the response-2 point
}

TEST(Stumps, SizeMismatchThrows) {
  std::vector<std::int32_t> responses{1, 2};
  std::vector<float> targets{1.0f};
  std::vector<double> weights{0.5, 0.5};
  EXPECT_THROW(fit_gentle_stump(responses, targets, weights),
               core::CheckError);
  EXPECT_THROW(fit_discrete_stump(responses, targets, weights),
               core::CheckError);
}

TEST(Stumps, NoisyDataStillReturnsFiniteLoss) {
  core::Rng rng(5);
  std::vector<std::int32_t> responses;
  std::vector<float> targets;
  std::vector<double> weights;
  for (int i = 0; i < 500; ++i) {
    responses.push_back(rng.uniform_int(-1000, 1000));
    targets.push_back(rng.bernoulli(0.5) ? 1.0f : -1.0f);
    weights.push_back(1.0 / 500);
  }
  const StumpFit g = fit_gentle_stump(responses, targets, weights);
  const StumpFit d = fit_discrete_stump(responses, targets, weights);
  ASSERT_TRUE(g.valid && d.valid);
  EXPECT_GT(g.loss, 0.5);   // random labels: near-chance loss
  EXPECT_LE(g.loss, 1.0 + 1e-9);
  EXPECT_GT(d.loss, 0.3);
  EXPECT_LE(d.loss, 0.5 + 1e-9);  // error of the best split <= chance
}

}  // namespace
}  // namespace fdet::train
