#include "serve/policy.h"

#include <gtest/gtest.h>

#include "core/check.h"

namespace fdet::serve {
namespace {

TEST(RetryBackoff, GrowsExponentiallyAndCaps) {
  RetryOptions options;
  options.base_backoff_ms = 2.0;
  options.multiplier = 2.0;
  options.max_backoff_ms = 10.0;
  options.jitter = 0.0;
  core::Rng rng(1);
  EXPECT_DOUBLE_EQ(retry_backoff_ms(options, 1, rng), 2.0);
  EXPECT_DOUBLE_EQ(retry_backoff_ms(options, 2, rng), 4.0);
  EXPECT_DOUBLE_EQ(retry_backoff_ms(options, 3, rng), 8.0);
  EXPECT_DOUBLE_EQ(retry_backoff_ms(options, 4, rng), 10.0);  // capped
  EXPECT_THROW(retry_backoff_ms(options, 0, rng), core::CheckError);
}

TEST(RetryBackoff, JitterStaysWithinTheConfiguredBand) {
  RetryOptions options;
  options.base_backoff_ms = 8.0;
  options.jitter = 0.25;
  core::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const double ms = retry_backoff_ms(options, 1, rng);
    EXPECT_GE(ms, 6.0);
    EXPECT_LE(ms, 10.0);
  }
  // Deterministic: an identically seeded stream reproduces the draws.
  core::Rng a(3);
  core::Rng b(3);
  EXPECT_DOUBLE_EQ(retry_backoff_ms(options, 2, a),
                   retry_backoff_ms(options, 2, b));
}

TEST(CircuitBreaker, TripsAtThresholdAndProbesAfterCooldown) {
  CircuitBreaker breaker(BreakerOptions{.failure_threshold = 3,
                                        .cooldown_frames = 2});
  EXPECT_TRUE(breaker.allows());
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_TRUE(breaker.allows());  // below threshold
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.allows());
  EXPECT_EQ(breaker.trips(), 1);

  breaker.on_frame();
  EXPECT_FALSE(breaker.allows());  // still cooling down
  breaker.on_frame();
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.allows());  // the probe frame

  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.trips(), 1);
}

TEST(CircuitBreaker, FailedProbeReopensImmediately) {
  CircuitBreaker breaker(BreakerOptions{.failure_threshold = 1,
                                        .cooldown_frames = 1});
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  breaker.on_frame();
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.record_failure();  // probe failed
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 2);
}

TEST(CircuitBreaker, SuccessResetsTheConsecutiveFailureCount) {
  CircuitBreaker breaker(BreakerOptions{.failure_threshold = 2,
                                        .cooldown_frames = 1});
  breaker.record_failure();
  breaker.record_success();
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);  // streak broken
}

TEST(DegradationLadder, ShedsOneLevelPerDeadlineMiss) {
  DegradationLadder ladder(DegradeOptions{}, /*deadline_ms=*/10.0);
  EXPECT_EQ(ladder.level(), 0);
  EXPECT_STREQ(ladder.step().name, "full");
  ladder.observe(12.0);
  EXPECT_EQ(ladder.level(), 1);
  ladder.observe(15.0);
  ladder.observe(15.0);
  ladder.observe(15.0);
  ladder.observe(15.0);
  EXPECT_EQ(ladder.level(), DegradationLadder::max_level());  // clamped
  EXPECT_TRUE(ladder.step().shed_queued_frames);
}

TEST(DegradationLadder, ClimbsBackAfterARecoveryStreak) {
  DegradationLadder ladder(
      DegradeOptions{.recover_after = 3, .recover_fraction = 0.75},
      /*deadline_ms=*/10.0);
  ladder.observe(12.0);
  ASSERT_EQ(ladder.level(), 1);
  ladder.observe(5.0);
  ladder.observe(5.0);
  EXPECT_EQ(ladder.level(), 1);  // streak not complete
  ladder.observe(5.0);
  EXPECT_EQ(ladder.level(), 0);
  EXPECT_EQ(ladder.shifts(), 2);
}

TEST(DegradationLadder, NearDeadlineFramesResetTheRecoveryStreak) {
  DegradationLadder ladder(
      DegradeOptions{.recover_after = 2, .recover_fraction = 0.5},
      /*deadline_ms=*/10.0);
  ladder.observe(12.0);
  ASSERT_EQ(ladder.level(), 1);
  ladder.observe(4.0);
  ladder.observe(8.0);  // in budget but above the recovery fraction
  ladder.observe(4.0);
  EXPECT_EQ(ladder.level(), 1);  // 8.0 broke the streak
  ladder.observe(4.0);
  EXPECT_EQ(ladder.level(), 0);
}

TEST(DegradationLadder, ForceSerialFallbackNeverClimbs) {
  DegradationLadder ladder(DegradeOptions{}, 10.0);
  ladder.force_serial_fallback();
  const int serial_level = ladder.level();
  EXPECT_TRUE(DegradationLadder::step_at(serial_level).serial_exec);
  // Already deeper: the forced fallback must not *reduce* shedding.
  ladder.observe(20.0);
  const int deeper = ladder.level();
  ladder.force_serial_fallback();
  EXPECT_EQ(ladder.level(), deeper);
}

TEST(DegradationLadder, StepsShedMonotonically) {
  for (int level = 1; level <= DegradationLadder::max_level(); ++level) {
    const DegradationStep& prev = DegradationLadder::step_at(level - 1);
    const DegradationStep& step = DegradationLadder::step_at(level);
    EXPECT_GE(step.skip_finest_levels, prev.skip_finest_levels);
    EXPECT_GE(step.min_neighbors_boost, prev.min_neighbors_boost);
    EXPECT_GE(step.serial_exec, prev.serial_exec);
    EXPECT_GE(step.shed_queued_frames, prev.shed_queued_frames);
  }
  EXPECT_THROW(DegradationLadder::step_at(-1), core::CheckError);
  EXPECT_THROW(DegradationLadder::step_at(DegradationLadder::max_level() + 1),
               core::CheckError);
}

TEST(DegradationLadder, ExactThresholdLatenciesNeverFlap) {
  // The hysteresis edges are strict inequalities: a frame exactly at the
  // deadline is in budget (no shed), a frame exactly at the recovery
  // fraction is too close to the edge to climb (streak resets). A stream
  // oscillating between both edge values therefore never moves the
  // ladder in either direction.
  DegradationLadder ladder(
      DegradeOptions{.recover_after = 2, .recover_fraction = 0.75},
      /*deadline_ms=*/10.0);
  ladder.observe(12.0);
  ASSERT_EQ(ladder.level(), 1);
  const int shifts_before = ladder.shifts();
  for (int i = 0; i < 20; ++i) {
    ladder.observe(10.0);  // exactly the deadline: not a miss
    ladder.observe(7.5);   // exactly the fraction: streak resets
  }
  EXPECT_EQ(ladder.level(), 1);
  EXPECT_EQ(ladder.shifts(), shifts_before);
  // One ulp under the fraction on every frame does climb.
  ladder.observe(7.4);
  ladder.observe(7.4);
  EXPECT_EQ(ladder.level(), 0);
}

TEST(DegradationLadder, ClampsAtBothEndsWithoutCountingShifts) {
  DegradationLadder ladder(DegradeOptions{.recover_after = 1}, 10.0);
  // Bottom clamp: recovery at full quality is a no-op, not a shift.
  ASSERT_EQ(ladder.level(), 0);
  ladder.observe(1.0);
  EXPECT_EQ(ladder.level(), 0);
  EXPECT_EQ(ladder.shifts(), 0);
  ladder.apply(false, true, "slo-recover");
  EXPECT_EQ(ladder.level(), 0);
  EXPECT_EQ(ladder.shifts(), 0);
  EXPECT_STREQ(ladder.last_cause(), "");  // no movement, no cause

  // Top clamp: misses beyond the deepest rung change nothing.
  for (int i = 0; i < DegradationLadder::max_level(); ++i) {
    ladder.observe(20.0);
  }
  ASSERT_EQ(ladder.level(), DegradationLadder::max_level());
  const int shifts_at_max = ladder.shifts();
  ladder.observe(20.0);
  ladder.apply(true, false, "slo-burn");
  EXPECT_EQ(ladder.level(), DegradationLadder::max_level());
  EXPECT_EQ(ladder.shifts(), shifts_at_max);
}

TEST(DegradationLadder, ApplyPrefersDegradeAndRecordsTheCause) {
  DegradationLadder ladder(DegradeOptions{}, 10.0);
  // degrade wins when both signals are set (shed before climb).
  ladder.apply(true, true, "burn-and-recover");
  EXPECT_EQ(ladder.level(), 1);
  EXPECT_STREQ(ladder.last_cause(), "burn-and-recover");
  ladder.apply(false, true, "recovered");
  EXPECT_EQ(ladder.level(), 0);
  EXPECT_STREQ(ladder.last_cause(), "recovered");
  EXPECT_EQ(ladder.shifts(), 2);
}

TEST(DegradationLadder, ApplyResetsTheObserveRecoveryStreak) {
  // A mid-streak apply() must not leave a stale streak behind: after an
  // SLO-driven shed, the observe() path needs a full fresh streak to
  // climb.
  DegradationLadder ladder(
      DegradeOptions{.recover_after = 3, .recover_fraction = 0.75},
      /*deadline_ms=*/10.0);
  ladder.observe(12.0);
  ladder.observe(12.0);
  ASSERT_EQ(ladder.level(), 2);
  ladder.observe(5.0);
  ladder.observe(5.0);  // streak at 2 of 3
  ladder.apply(true, false, "slo-burn");
  ASSERT_EQ(ladder.level(), 3);
  ladder.observe(5.0);  // would complete the stale streak
  EXPECT_EQ(ladder.level(), 3);
  ladder.observe(5.0);
  ladder.observe(5.0);
  EXPECT_EQ(ladder.level(), 2);  // fresh streak of 3 climbs
}

}  // namespace
}  // namespace fdet::serve
