#include "vgpu/checker.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "core/check.h"
#include "core/rng.h"
#include "detect/kernels.h"
#include "haar/encoding.h"
#include "haar/profile.h"
#include "img/image.h"
#include "integral/gpu.h"
#include "vgpu/kernel.h"

namespace fdet::vgpu {
namespace {

constexpr int kLanes = 32;

KernelConfig tile_config(const std::string& name, int shared_bytes) {
  return KernelConfig{
      .name = name,
      .grid = {1, 1, 1},
      .block = {kLanes, 1, 1},
      .shared_bytes = shared_bytes,
  };
}

const Hazard* find_hazard(const CheckReport& report, HazardKind kind) {
  const auto it =
      std::find_if(report.hazards.begin(), report.hazards.end(),
                   [kind](const Hazard& h) { return h.kind == kind; });
  return it == report.hazards.end() ? nullptr : &*it;
}

img::ImageU8 random_image(int w, int h, std::uint64_t seed) {
  core::Rng rng(seed);
  img::ImageU8 im(w, h);
  for (auto& p : im.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return im;
}

// --- seeded defects ---------------------------------------------------

// Each lane writes its own slot and reads its neighbour's in the *same*
// phase: the canonical missing-__syncthreads bug. The functional executor
// still produces deterministic output; only the checker sees the hazard.
TEST(CheckerSeeded, MissingBarrierRaceIsDetected) {
  const DeviceSpec spec;
  const auto init = [](const ThreadCoord& t, LaneCtx& ctx, SharedMem& shared) {
    auto tile = shared.array<std::int32_t>(kLanes);
    tile[static_cast<std::size_t>(t.thread.x)] = t.thread.x;
    ctx.shared_store_at(shared, tile[static_cast<std::size_t>(t.thread.x)]);
  };
  const auto racy = [](const ThreadCoord& t, LaneCtx& ctx, SharedMem& shared) {
    auto tile = shared.array<std::int32_t>(kLanes);
    auto& mine = tile[static_cast<std::size_t>(t.thread.x)];
    mine += 1;
    ctx.shared_store_at(shared, mine);
    const std::size_t next = static_cast<std::size_t>((t.thread.x + 1) % kLanes);
    ctx.shared_load_at(shared, tile[next]);  // neighbour's slot, no barrier
  };

  const CheckedExecution run = execute_kernel_checked(
      spec, tile_config("racy_kernel", kLanes * 4), init, racy);
  ASSERT_FALSE(run.report.clean());
  const Hazard* hazard = find_hazard(run.report, HazardKind::kIntraPhaseRace);
  ASSERT_NE(hazard, nullptr);
  EXPECT_EQ(hazard->kernel, "racy_kernel");
  EXPECT_EQ(hazard->phase, 1);
  EXPECT_TRUE(hazard->has_lane_b);
  EXPECT_NE(hazard->lane_a.x, hazard->lane_b.x);
  EXPECT_NE(hazard->message.find("racy_kernel"), std::string::npos);
  EXPECT_NE(hazard->message.find("phase 1"), std::string::npos);
  EXPECT_NE(hazard->message.find("lane"), std::string::npos);
  EXPECT_NE(hazard->message.find("__syncthreads"), std::string::npos);
}

// The fixed version of the same kernel — neighbour reads moved behind the
// barrier (a separate phase) — must come back clean.
TEST(CheckerSeeded, BarrierSeparatedNeighbourReadIsClean) {
  const DeviceSpec spec;
  const auto write = [](const ThreadCoord& t, LaneCtx& ctx, SharedMem& shared) {
    auto tile = shared.array<std::int32_t>(kLanes);
    tile[static_cast<std::size_t>(t.thread.x)] = t.thread.x;
    ctx.shared_store_at(shared, tile[static_cast<std::size_t>(t.thread.x)]);
  };
  const auto read = [](const ThreadCoord& t, LaneCtx& ctx, SharedMem& shared) {
    auto tile = shared.array<std::int32_t>(kLanes);
    const std::size_t next = static_cast<std::size_t>((t.thread.x + 1) % kLanes);
    ctx.shared_load_at(shared, tile[next]);
  };

  const CheckedExecution run = execute_kernel_checked(
      spec, tile_config("barriered_kernel", kLanes * 4), write, read);
  EXPECT_TRUE(run.report.clean()) << run.report.summary();
  EXPECT_EQ(run.report.shared_accesses_checked, 2u * kLanes);
  EXPECT_EQ(run.report.phases, 2);
}

TEST(CheckerSeeded, UninitializedSharedReadIsDetected) {
  const DeviceSpec spec;
  const auto read_cold = [](const ThreadCoord& t, LaneCtx& ctx,
                            SharedMem& shared) {
    auto tile = shared.array<std::int32_t>(kLanes);
    ctx.shared_load_at(shared, tile[static_cast<std::size_t>(t.thread.x)]);
  };

  const CheckedExecution run = execute_kernel_checked(
      spec, tile_config("cold_read", kLanes * 4), read_cold);
  ASSERT_FALSE(run.report.clean());
  const Hazard* hazard =
      find_hazard(run.report, HazardKind::kUninitializedSharedRead);
  ASSERT_NE(hazard, nullptr);
  EXPECT_EQ(hazard->kernel, "cold_read");
  EXPECT_EQ(hazard->phase, 0);
  EXPECT_NE(hazard->message.find("uninitialized shared read"),
            std::string::npos);
  EXPECT_NE(hazard->message.find("cold_read"), std::string::npos);
}

// A same-lane program-order write→read within one phase is fine (registers
// would carry it on hardware too) — the uninit rule must not fire.
TEST(CheckerSeeded, SameLaneWriteThenReadIsClean) {
  const DeviceSpec spec;
  const auto warm = [](const ThreadCoord& t, LaneCtx& ctx, SharedMem& shared) {
    auto tile = shared.array<std::int32_t>(kLanes);
    auto& mine = tile[static_cast<std::size_t>(t.thread.x)];
    mine = 7;
    ctx.shared_store_at(shared, mine);
    ctx.shared_load_at(shared, mine);
  };
  const CheckedExecution run =
      execute_kernel_checked(spec, tile_config("warm_read", kLanes * 4), warm);
  EXPECT_TRUE(run.report.clean()) << run.report.summary();
}

TEST(CheckerSeeded, CarveDivergenceIsDetected) {
  const DeviceSpec spec;
  const auto divergent = [](const ThreadCoord& t, LaneCtx&, SharedMem& shared) {
    // Odd lanes request a different layout than the one lane 0 established.
    shared.array<std::int32_t>(t.thread.x % 2 == 1 ? 8 : 4);
  };
  const CheckedExecution run = execute_kernel_checked(
      spec, tile_config("divergent_carve", 32), divergent);
  ASSERT_FALSE(run.report.clean());
  const Hazard* hazard = find_hazard(run.report, HazardKind::kCarveDivergence);
  ASSERT_NE(hazard, nullptr);
  EXPECT_NE(hazard->message.find("carve #0"), std::string::npos);
  EXPECT_NE(hazard->message.find("divergent_carve"), std::string::npos);
  EXPECT_NE(hazard->message.find("identical static __shared__ layouts"),
            std::string::npos);
}

// Unchecked execution throws on a carve past shared_bytes; checked
// execution gives the carve real storage and reports it instead.
TEST(CheckerSeeded, CarveOverflowIsReportedNotFatal) {
  const DeviceSpec spec;
  const auto big_carve = [](const ThreadCoord&, LaneCtx&, SharedMem& shared) {
    shared.array<double>(100);  // 800 bytes vs 64 declared
  };
  CheckedExecution run;
  ASSERT_NO_THROW(run = execute_kernel_checked(
                      spec, tile_config("escaping_carve", 64), big_carve));
  ASSERT_FALSE(run.report.clean());
  const Hazard* hazard = find_hazard(run.report, HazardKind::kCarveOverflow);
  ASSERT_NE(hazard, nullptr);
  EXPECT_NE(hazard->message.find("declares shared_bytes=64"),
            std::string::npos);
}

TEST(CheckerSeeded, SharedDeclarationMismatchIsReported) {
  const DeviceSpec spec;
  const auto small_carve = [](const ThreadCoord&, LaneCtx&, SharedMem& shared) {
    shared.array<std::int32_t>(16);  // 64 of the declared 256 bytes
  };
  const CheckedExecution run = execute_kernel_checked(
      spec, tile_config("overdeclared", 256), small_carve);
  ASSERT_FALSE(run.report.clean());
  const Hazard* hazard =
      find_hazard(run.report, HazardKind::kSharedDeclMismatch);
  ASSERT_NE(hazard, nullptr);
  EXPECT_NE(hazard->message.find("declares shared_bytes=256"),
            std::string::npos);
  EXPECT_NE(hazard->message.find("carves at most 64"), std::string::npos);

  // The check is opt-out for intentionally padded layouts.
  CheckOptions lax;
  lax.check_shared_declaration = false;
  const CheckedExecution lax_run = execute_kernel_checked(
      spec, tile_config("overdeclared", 256), small_carve, lax);
  EXPECT_TRUE(lax_run.report.clean()) << lax_run.report.summary();
}

TEST(CheckerSeeded, ConstantOverflowReportedCheckedThrowsUnchecked) {
  const DeviceSpec spec;
  KernelConfig config = tile_config("fat_constants", 0);
  config.constant_bytes = 128 * 1024;  // 2x the 64 KiB device limit
  const auto noop = [](const ThreadCoord&, LaneCtx&, SharedMem&) {};

  const CheckedExecution run =
      execute_kernel_checked(spec, config, PhaseFn(noop));
  ASSERT_FALSE(run.report.clean());
  const Hazard* hazard = find_hazard(run.report, HazardKind::kConstantOverflow);
  ASSERT_NE(hazard, nullptr);
  EXPECT_NE(hazard->message.find("constant memory overflow"),
            std::string::npos);
  EXPECT_NE(hazard->message.find("fat_constants"), std::string::npos);

  // Satellite: the launch-time limit also holds outside checked mode, where
  // it fails fast instead of reporting.
  EXPECT_THROW(execute_kernel(spec, config, PhaseFn(noop)), core::CheckError);
}

TEST(CheckerSeeded, GlobalOutOfBoundsIsDetected) {
  const DeviceSpec spec;
  KernelConfig config = tile_config("oob_global", 0);
  config.block = {1, 1, 1};
  const auto touch = [](const ThreadCoord&, LaneCtx& ctx, SharedMem&) {
    ctx.global_load(16, 4);   // inside [0, 64)
    ctx.global_load(100, 4);  // outside every allocation
  };
  CheckOptions options;
  options.global_allocations = {{"buf", 0, 64}};

  const CheckedExecution run =
      execute_kernel_checked(spec, config, PhaseFn(touch), options);
  EXPECT_EQ(run.report.global_ops_checked, 2u);
  ASSERT_EQ(run.report.hazards.size(), 1u);
  const Hazard& hazard = run.report.hazards.front();
  EXPECT_EQ(hazard.kind, HazardKind::kGlobalOutOfBounds);
  EXPECT_EQ(hazard.offset, 100u);
  EXPECT_NE(hazard.message.find("outside every registered allocation"),
            std::string::npos);
}

TEST(CheckerSeeded, GlobalCheckIsDisabledWithoutAllocations) {
  const DeviceSpec spec;
  KernelConfig config = tile_config("unregistered_global", 0);
  config.block = {1, 1, 1};
  const auto touch = [](const ThreadCoord&, LaneCtx& ctx, SharedMem&) {
    ctx.global_load(1 << 20, 4);
  };
  const CheckedExecution run =
      execute_kernel_checked(spec, config, PhaseFn(touch));
  EXPECT_TRUE(run.report.clean()) << run.report.summary();
  EXPECT_EQ(run.report.global_ops_checked, 0u);
}

TEST(CheckerSeeded, HazardCapSuppressesButStillFailsClean) {
  const DeviceSpec spec;
  const auto read_cold = [](const ThreadCoord& t, LaneCtx& ctx,
                            SharedMem& shared) {
    auto tile = shared.array<std::int32_t>(kLanes);
    ctx.shared_load_at(shared, tile[static_cast<std::size_t>(t.thread.x)]);
  };
  CheckOptions options;
  options.max_reports_per_kernel = 2;
  const CheckedExecution run = execute_kernel_checked(
      spec, tile_config("cold_read_capped", kLanes * 4), read_cold, options);
  EXPECT_EQ(run.report.hazards.size(), 2u);
  EXPECT_EQ(run.report.suppressed_hazards, static_cast<std::uint64_t>(kLanes - 2));
  EXPECT_FALSE(run.report.clean());
}

TEST(CheckerSeeded, LegacySharedAccessCountsAsUnattributed) {
  const DeviceSpec spec;
  const auto legacy = [](const ThreadCoord&, LaneCtx& ctx, SharedMem&) {
    ctx.shared_access(3);
  };
  const CheckedExecution run = execute_kernel_checked(
      spec, tile_config("legacy_shared", 0), PhaseFn(legacy));
  EXPECT_TRUE(run.report.clean());
  EXPECT_EQ(run.report.unattributed_shared_accesses, 3u * kLanes);
  EXPECT_EQ(run.report.shared_accesses_checked, 0u);
}

TEST(CheckerScope, NestsAndRestoresPreviousChecker) {
  EXPECT_EQ(active_checker(), nullptr);
  {
    CheckScope outer;
    EXPECT_EQ(active_checker(), &outer.checker());
    {
      CheckScope inner;
      EXPECT_EQ(active_checker(), &inner.checker());
    }
    EXPECT_EQ(active_checker(), &outer.checker());
  }
  EXPECT_EQ(active_checker(), nullptr);
}

// --- production kernels must come back clean --------------------------

TEST(CheckerProduction, IntegralPipelineIsClean) {
  const DeviceSpec spec;
  const img::ImageU8 image = random_image(97, 53, 11);  // odd sizes: partial
                                                        // chunks + ragged tiles
  CheckScope scope;
  const auto result = integral::integral_gpu(spec, image);
  (void)result;
  ASSERT_EQ(scope.reports().size(), 4u);  // scan, transpose, scan, transpose
  for (const CheckReport& report : scope.reports()) {
    EXPECT_TRUE(report.clean()) << report.summary();
    EXPECT_GT(report.shared_accesses_checked, 0u) << report.kernel;
    EXPECT_EQ(report.unattributed_shared_accesses, 0u) << report.kernel;
    EXPECT_GT(report.carves_checked, 0u) << report.kernel;
  }
}

TEST(CheckerProduction, TransposeBoundaryBlocksAreClean) {
  const DeviceSpec spec;
  // 33x17 forces tiles that are cut on both axes: the load/store guards
  // must agree or the store phase reads unstaged tile cells.
  img::ImageI32 input(33, 17);
  core::Rng rng(5);
  for (auto& p : input.pixels()) {
    p = static_cast<std::int32_t>(rng.uniform_int(0, 1000));
  }
  img::ImageI32 output(17, 33);
  CheckScope scope;
  integral::transpose_gpu(spec, input, output);
  ASSERT_EQ(scope.reports().size(), 1u);
  EXPECT_TRUE(scope.reports().front().clean())
      << scope.reports().front().summary();
}

TEST(CheckerProduction, CascadeKernelIsClean) {
  const DeviceSpec spec;
  const img::ImageU8 image = random_image(72, 56, 3);
  const auto ii = integral::integral_cpu(image);
  const haar::Cascade cascade = haar::build_profile_cascade(
      "checker-cascade", std::vector<int>{4, 4}, 21);
  const haar::ConstantBank bank = haar::ConstantBank::build(cascade);

  detect::CascadeKernelOutput out;
  CheckScope scope;
  detect::cascade_kernel(spec, bank, ii, out, detect::CascadeKernelOptions{},
                         "cascade_checked");
  ASSERT_EQ(scope.reports().size(), 1u);
  const CheckReport& report = scope.reports().front();
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_GT(report.shared_accesses_checked, 0u);
  EXPECT_EQ(report.unattributed_shared_accesses, 0u);
}

TEST(CheckerProduction, ScaleAndFilterKernelsAreClean) {
  const DeviceSpec spec;
  const img::ImageU8 src = random_image(80, 60, 9);
  img::ImageU8 scaled(40, 30);
  img::ImageU8 filtered(40, 30);
  CheckScope scope;
  detect::scale_kernel(spec, src, scaled, "scale_checked");
  detect::filter_kernel(spec, scaled, filtered, /*horizontal=*/true,
                        "filter_checked");
  ASSERT_EQ(scope.reports().size(), 2u);
  for (const CheckReport& report : scope.reports()) {
    EXPECT_TRUE(report.clean()) << report.summary();
  }
}

}  // namespace
}  // namespace fdet::vgpu
