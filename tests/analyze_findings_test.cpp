// Static analyses + findings model (analyze/analyses.h): OOB proofs from
// affine forms, dead-shared-write detection, barrier-divergence keying on
// data dependence, and the suppression spec grammar.
#include "analyze/analyses.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "analyze/capture.h"
#include "core/check.h"
#include "core/rng.h"
#include "vgpu/kernel.h"

namespace fdet::analyze {
namespace {

using vgpu::KernelConfig;
using vgpu::LaneCtx;
using vgpu::SharedMem;
using vgpu::ThreadCoord;

const vgpu::DeviceSpec kSpec;

template <typename Phase>
std::vector<Finding> analyze_one(const KernelConfig& config, Phase&& phase,
                                 const AnalysisOptions& options = {}) {
  const std::vector<KernelIR> irs =
      capture_kernels([&config, &phase](std::uint64_t /*seed*/) {
        vgpu::execute_kernel(kSpec, config, phase);
      });
  EXPECT_EQ(irs.size(), 1u);
  return analyze_kernel(irs.front(), options);
}

const Finding* find_kind(const std::vector<Finding>& findings,
                         FindingKind kind) {
  const auto it =
      std::find_if(findings.begin(), findings.end(),
                   [kind](const Finding& f) { return f.kind == kind; });
  return it == findings.end() ? nullptr : &*it;
}

TEST(AnalyzeFindings, ProvesSharedOutOfBoundsFromAffineForm) {
  // 33-lane block, 33-word footprint, each lane reads word tx+1: the
  // affine proof must flag the max (34th word) as out of bounds even
  // though the capture itself never faults (raw offset report).
  const KernelConfig config{.name = "oob",
                            .grid = {1, 1, 1},
                            .block = {33, 1, 1},
                            .shared_bytes = 33 * 4};
  const std::vector<Finding> findings = analyze_one(
      config, [](const ThreadCoord& t, LaneCtx& ctx, SharedMem&) {
        ctx.shared_load((static_cast<std::size_t>(t.thread.x) + 1) * 4, 4);
      });

  const Finding* f = find_kind(findings, FindingKind::kSharedOutOfBounds);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_EQ(f->kernel, "oob");
}

TEST(AnalyzeFindings, ProvesGlobalOutOfBoundsAgainstAllocations) {
  const KernelConfig config{.name = "goob",
                            .grid = {1, 1, 1},
                            .block = {32, 1, 1}};
  AnalysisOptions options;
  options.allocations = {{"buf", 0, 32 * 4}};  // one word short of the max
  const std::vector<Finding> findings = analyze_one(
      config,
      [](const ThreadCoord& t, LaneCtx& ctx, SharedMem&) {
        ctx.global_load((static_cast<std::uint64_t>(t.thread.x) + 1) * 4, 4);
      },
      options);

  const Finding* f = find_kind(findings, FindingKind::kGlobalOutOfBounds);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
}

TEST(AnalyzeFindings, InBoundsKernelHasNoErrorFindings) {
  // 256-lane blocks keep occupancy at 100% so the only acceptable
  // findings are informational.
  const KernelConfig config{.name = "clean",
                            .grid = {2, 1, 1},
                            .block = {256, 1, 1},
                            .shared_bytes = 256 * 4};
  AnalysisOptions options;
  options.allocations = {{"buf", 0, 2 * 256 * 4}};
  const std::vector<Finding> findings = analyze_one(
      config,
      [](const ThreadCoord& t, LaneCtx& ctx, SharedMem& shared) {
        auto tile = shared.array<std::int32_t>(256);
        const auto lane = static_cast<std::size_t>(t.thread.x);
        tile[lane] = t.thread.x;
        ctx.shared_store_at(shared, tile[lane]);
        ctx.shared_load_at(shared, tile[lane]);
        ctx.global_store(
            (static_cast<std::uint64_t>(t.block_id.x) * 256 +
             static_cast<std::uint64_t>(t.thread.x)) *
                4,
            4);
      },
      options);

  for (const Finding& f : findings) {
    EXPECT_NE(f.severity, Severity::kError) << f.message;
    EXPECT_NE(f.severity, Severity::kWarning) << f.message;
  }
}

TEST(AnalyzeFindings, DetectsDeadSharedWriteRegion) {
  // Two carves; the second is written and never read anywhere in the
  // kernel — shared memory spent for nothing, worth a warning.
  const KernelConfig config{.name = "dead",
                            .grid = {1, 1, 1},
                            .block = {32, 1, 1},
                            .shared_bytes = 64 * 4};
  const std::vector<Finding> findings = analyze_one(
      config,
      [](const ThreadCoord& t, LaneCtx& ctx, SharedMem& shared) {
        auto live = shared.array<std::int32_t>(32);
        auto dead = shared.array<std::int32_t>(32);
        const auto lane = static_cast<std::size_t>(t.thread.x);
        live[lane] = t.thread.x;
        ctx.shared_store_at(shared, live[lane]);
        ctx.shared_load_at(shared, live[lane]);
        dead[lane] = t.thread.x;
        ctx.shared_store_at(shared, dead[lane]);
      });

  const Finding* f = find_kind(findings, FindingKind::kDeadSharedWrite);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kWarning);
}

TEST(AnalyzeFindings, BarrierDivergenceRequiresDataDependence) {
  // Geometry-affine producer guard (tx < 16): every run has the same
  // writer set, the consumers read only written words — NOT a barrier
  // hazard. The scan kernel's tree guards rely on this distinction.
  const KernelConfig config{.name = "geom",
                            .grid = {1, 1, 1},
                            .block = {32, 1, 1},
                            .shared_bytes = 32 * 4,
                            .track_branches = true};
  const std::vector<KernelIR> irs =
      capture_kernels([&config](std::uint64_t /*seed*/) {
        const vgpu::PhaseFn produce = [](const ThreadCoord& t, LaneCtx& ctx,
                                         SharedMem&) {
          const bool low = t.thread.x < 16;
          ctx.branch(low);
          if (low) {
            ctx.shared_store(static_cast<std::size_t>(t.thread.x) * 4, 4);
          }
        };
        const vgpu::PhaseFn consume = [](const ThreadCoord& t, LaneCtx& ctx,
                                         SharedMem&) {
          ctx.shared_load(static_cast<std::size_t>(t.thread.x % 16) * 4, 4);
        };
        const std::vector<vgpu::PhaseFn> phases = {produce, consume};
        vgpu::execute_kernel(kSpec, config,
                             std::span<const vgpu::PhaseFn>(phases));
      });
  ASSERT_EQ(irs.size(), 1u);
  const std::vector<Finding> findings = analyze_kernel(irs.front());
  EXPECT_EQ(find_kind(findings, FindingKind::kBarrierDivergence), nullptr);
}

TEST(AnalyzeFindings, SuppressionsMatchKernelAndWildcard) {
  std::vector<Finding> findings(3);
  findings[0] = {.kind = FindingKind::kBankConflict,
                 .severity = Severity::kWarning,
                 .kernel = "foo",
                 .message = "m"};
  findings[1] = {.kind = FindingKind::kBankConflict,
                 .severity = Severity::kWarning,
                 .kernel = "bar",
                 .message = "m"};
  findings[2] = {.kind = FindingKind::kUncoalesced,
                 .severity = Severity::kWarning,
                 .kernel = "foo",
                 .message = "m"};

  apply_suppressions(findings, {"bank-conflict@foo"});
  EXPECT_TRUE(findings[0].suppressed);
  EXPECT_FALSE(findings[1].suppressed);
  EXPECT_FALSE(findings[2].suppressed);
  EXPECT_EQ(active_findings(findings), 2);

  apply_suppressions(findings, {"bank-conflict@*"});
  EXPECT_TRUE(findings[1].suppressed);
  EXPECT_FALSE(findings[2].suppressed);
  EXPECT_EQ(active_findings(findings), 1);
}

TEST(AnalyzeFindings, MalformedSuppressionSpecThrows) {
  std::vector<Finding> findings;
  EXPECT_THROW(apply_suppressions(findings, {"no-at-sign"}), core::CheckError);
  EXPECT_THROW(apply_suppressions(findings, {"not-a-kind@foo"}),
               core::CheckError);
}

TEST(AnalyzeFindings, SuppressedWarningsDoNotGate) {
  std::vector<Finding> findings(1);
  findings[0] = {.kind = FindingKind::kUncoalesced,
                 .severity = Severity::kWarning,
                 .kernel = "k",
                 .message = "m"};
  EXPECT_EQ(active_findings(findings), 1);
  apply_suppressions(findings, {"uncoalesced@k"});
  EXPECT_EQ(active_findings(findings), 0);
  // Info findings never gate, suppressed or not.
  findings.push_back({.kind = FindingKind::kOccupancy,
                      .severity = Severity::kInfo,
                      .kernel = "k",
                      .message = "m"});
  EXPECT_EQ(active_findings(findings), 0);
}

}  // namespace
}  // namespace fdet::analyze
