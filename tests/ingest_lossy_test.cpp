#include "ingest/lossy.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/check.h"
#include "video/decoder.h"

namespace fdet::ingest {
namespace {

video::MockH264Decoder lossy_test_decoder() {
  static const video::SyntheticTrailer trailer = [] {
    video::TrailerSpec spec;
    spec.title = "lossy-test";
    spec.width = 96;
    spec.height = 72;
    spec.frames = 48;
    spec.shot_frames = 8;
    spec.seed = 5;
    return video::SyntheticTrailer(spec);
  }();
  return video::MockH264Decoder(trailer);
}

TEST(LossyReorderSource, ZeroProbabilitiesDeliverIdentity) {
  const video::MockH264Decoder decoder = lossy_test_decoder();
  const H264FrameSource inner(decoder);
  const LossyReorderSource lossy(inner, {});

  EXPECT_EQ(lossy.frame_count(), inner.frame_count());
  EXPECT_EQ(lossy.dropped(), 0);
  EXPECT_EQ(lossy.duplicated(), 0);
  EXPECT_EQ(lossy.displaced(), 0);
  for (int i = 0; i < lossy.frame_count(); ++i) {
    EXPECT_EQ(lossy.delivered_inner_index(i), i);
    EXPECT_EQ(lossy.arrival_kind(i), FrameArrival::kInOrder);
  }
}

TEST(LossyReorderSource, DropsThrowTypedMissingFrame) {
  const video::MockH264Decoder decoder = lossy_test_decoder();
  const H264FrameSource inner(decoder);
  LossyOptions options;
  options.drop_probability = 0.3;
  options.seed = 77;
  const LossyReorderSource lossy(inner, options);

  ASSERT_GT(lossy.dropped(), 0);
  // A drop leaves a gap slot in place: the receiver notices the loss
  // where the frame should have been, so the slot count is unchanged.
  EXPECT_EQ(lossy.frame_count(), inner.frame_count());
  int gaps = 0;
  for (int i = 0; i < lossy.frame_count(); ++i) {
    if (lossy.delivered_inner_index(i) >= 0) {
      continue;
    }
    ++gaps;
    try {
      lossy.decode(i);
      FAIL() << "gap slot " << i << " decoded";
    } catch (const IngestError& error) {
      EXPECT_EQ(error.kind(), IngestErrorKind::kMissingFrame);
    }
    // No bytes arrived: a gap costs no decode latency.
    EXPECT_DOUBLE_EQ(lossy.decode_latency_ms(i), 0.0);
  }
  EXPECT_EQ(gaps, lossy.dropped());
}

TEST(LossyReorderSource, ReorderDisplacesWithoutLosingFrames) {
  const video::MockH264Decoder decoder = lossy_test_decoder();
  const H264FrameSource inner(decoder);
  LossyOptions options;
  options.reorder_probability = 0.4;
  options.max_displacement = 4;
  options.seed = 13;
  const LossyReorderSource lossy(inner, options);

  ASSERT_GT(lossy.displaced(), 0);
  EXPECT_EQ(lossy.frame_count(), inner.frame_count());
  std::set<int> seen;
  int out_of_order = 0;
  for (int i = 0; i < lossy.frame_count(); ++i) {
    const int frame = lossy.delivered_inner_index(i);
    ASSERT_GE(frame, 0);
    EXPECT_TRUE(seen.insert(frame).second) << "frame delivered twice";
    out_of_order +=
        lossy.arrival_kind(i) == FrameArrival::kOutOfOrder ? 1 : 0;
  }
  EXPECT_EQ(static_cast<int>(seen.size()), inner.frame_count());
  EXPECT_GT(out_of_order, 0);
}

TEST(LossyReorderSource, DuplicatesTagTheSecondDelivery) {
  const video::MockH264Decoder decoder = lossy_test_decoder();
  const H264FrameSource inner(decoder);
  LossyOptions options;
  options.duplicate_probability = 0.25;
  options.seed = 99;
  const LossyReorderSource lossy(inner, options);

  ASSERT_GT(lossy.duplicated(), 0);
  EXPECT_EQ(lossy.frame_count(), inner.frame_count() + lossy.duplicated());
  int duplicates = 0;
  for (int i = 0; i < lossy.frame_count(); ++i) {
    if (lossy.arrival_kind(i) != FrameArrival::kDuplicate) {
      continue;
    }
    ++duplicates;
    ASSERT_GT(i, 0);
    EXPECT_EQ(lossy.delivered_inner_index(i),
              lossy.delivered_inner_index(i - 1));
  }
  EXPECT_EQ(duplicates, lossy.duplicated());
}

TEST(LossyReorderSource, ScheduleIsDeterministicAndDecodeIsStateless) {
  const video::MockH264Decoder decoder = lossy_test_decoder();
  const H264FrameSource inner(decoder);
  LossyOptions options;
  options.drop_probability = 0.1;
  options.duplicate_probability = 0.1;
  options.reorder_probability = 0.2;
  options.seed = 42;
  const LossyReorderSource a(inner, options);
  const LossyReorderSource b(inner, options);

  ASSERT_EQ(a.frame_count(), b.frame_count());
  for (int i = 0; i < a.frame_count(); ++i) {
    EXPECT_EQ(a.delivered_inner_index(i), b.delivered_inner_index(i));
    EXPECT_EQ(a.arrival_kind(i), b.arrival_kind(i));
  }
  // Any deliverable slot decodes identically in any order.
  for (const int slot : {a.frame_count() - 1, 0, a.frame_count() / 2, 0}) {
    if (a.delivered_inner_index(slot) < 0) {
      continue;
    }
    const video::DecodedFrame x = a.decode(slot);
    const video::DecodedFrame y = b.decode(slot);
    EXPECT_EQ(x.index, slot);
    EXPECT_EQ(x.frame.luma().pixels().size(), y.frame.luma().pixels().size());
    EXPECT_TRUE(std::equal(x.frame.luma().pixels().begin(),
                           x.frame.luma().pixels().end(),
                           y.frame.luma().pixels().begin()));
  }
}

TEST(LossyReorderSource, TogglingOneProbabilityKeepsOtherDecisions) {
  const video::MockH264Decoder decoder = lossy_test_decoder();
  const H264FrameSource inner(decoder);
  LossyOptions drops_only;
  drops_only.drop_probability = 0.2;
  drops_only.seed = 7;
  LossyOptions drops_and_dups = drops_only;
  drops_and_dups.duplicate_probability = 0.2;
  const LossyReorderSource a(inner, drops_only);
  const LossyReorderSource b(inner, drops_and_dups);

  // Independent decision streams: adding duplicates never changes which
  // frames drop.
  EXPECT_EQ(a.dropped(), b.dropped());
}

TEST(LossyReorderSource, RejectsInvalidOptions) {
  const video::MockH264Decoder decoder = lossy_test_decoder();
  const H264FrameSource inner(decoder);
  LossyOptions bad_probability;
  bad_probability.drop_probability = 1.5;
  EXPECT_THROW(LossyReorderSource(inner, bad_probability), core::CheckError);
  LossyOptions bad_displacement;
  bad_displacement.max_displacement = 0;
  EXPECT_THROW(LossyReorderSource(inner, bad_displacement), core::CheckError);
}

}  // namespace
}  // namespace fdet::ingest
