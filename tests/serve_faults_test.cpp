#include "serve/faults.h"

#include <gtest/gtest.h>

#include "core/check.h"
#include "vgpu/kernel.h"

namespace fdet::serve {
namespace {

TEST(FaultPlan, ParsesEveryKindAndRoundTrips) {
  const FaultPlan plan =
      FaultPlan::parse("decode@4,corrupt@12,launch@9x2,const@17,shared@21", 1);
  ASSERT_EQ(plan.specs().size(), 5u);
  EXPECT_EQ(plan.specs()[0].kind, FaultKind::kDecodeFail);
  EXPECT_EQ(plan.specs()[0].frame, 4);
  EXPECT_EQ(plan.specs()[2].kind, FaultKind::kLaunchTransient);
  EXPECT_EQ(plan.specs()[2].burst, 2);
  EXPECT_EQ(plan.describe(),
            "decode@4,corrupt@12,launch@9x2,const@17,shared@21");
  EXPECT_EQ(plan.targeted_frames(), (std::vector<int>{4, 9, 12, 17, 21}));
}

TEST(FaultPlan, ParseNamesTheOffendingToken) {
  try {
    FaultPlan::parse("decode@4,warp@7", 1);
    FAIL() << "expected CheckError";
  } catch (const core::CheckError& error) {
    EXPECT_NE(std::string(error.what()).find("warp"), std::string::npos);
  }
  EXPECT_THROW(FaultPlan::parse("decode", 1), core::CheckError);
  EXPECT_THROW(FaultPlan::parse("decode@", 1), core::CheckError);
  EXPECT_THROW(FaultPlan::parse("decode@4x0", 1), core::CheckError);
  EXPECT_THROW(FaultPlan::parse("launch@xyz", 1), core::CheckError);
}

TEST(FaultPlan, BurstGatesRetryableKindsButNotHardOnes) {
  const FaultPlan plan = FaultPlan::parse("decode@5x2,const@5", 1);
  EXPECT_TRUE(plan.fires(FaultKind::kDecodeFail, 5, 0));
  EXPECT_TRUE(plan.fires(FaultKind::kDecodeFail, 5, 1));
  EXPECT_FALSE(plan.fires(FaultKind::kDecodeFail, 5, 2));  // retry succeeds
  EXPECT_FALSE(plan.fires(FaultKind::kDecodeFail, 6, 0));
  // Hard kinds fail every attempt: retrying cannot clear them.
  EXPECT_TRUE(plan.fires(FaultKind::kConstantOverflow, 5, 0));
  EXPECT_TRUE(plan.fires(FaultKind::kConstantOverflow, 5, 7));
}

TEST(FaultPlan, ProbabilisticFaultsAreDeterministicInSeedAndFrame) {
  const FaultPlan a = FaultPlan::parse("launch@0.25", 42);
  const FaultPlan b = FaultPlan::parse("launch@0.25", 42);
  const FaultPlan other_seed = FaultPlan::parse("launch@0.25", 43);
  int fired = 0;
  int diverged = 0;
  for (int frame = 0; frame < 2000; ++frame) {
    const bool hit = a.fires(FaultKind::kLaunchTransient, frame, 0);
    EXPECT_EQ(hit, b.fires(FaultKind::kLaunchTransient, frame, 0));
    fired += hit ? 1 : 0;
    diverged +=
        hit != other_seed.fires(FaultKind::kLaunchTransient, frame, 0) ? 1 : 0;
  }
  EXPECT_NEAR(fired, 500, 120);  // ~Binomial(2000, 0.25)
  EXPECT_GT(diverged, 0);        // a different seed is a different plan
}

TEST(CorruptLuma, IsSeededAndChangesThePlane) {
  img::ImageU8 a(64, 48, 100);
  img::ImageU8 b(64, 48, 100);
  img::ImageU8 c(64, 48, 100);
  corrupt_luma(a, 7);
  corrupt_luma(b, 7);
  corrupt_luma(c, 8);
  EXPECT_EQ(a, b);                       // deterministic in the seed
  EXPECT_NE(a, img::ImageU8(64, 48, 100));  // actually corrupted
  EXPECT_NE(a, c);
}

TEST(LaunchFaultHook, TransientFiresOnceAndClearsOnNextAttempt) {
  const FaultPlan plan = FaultPlan::parse("launch@3", 1);
  const vgpu::DeviceSpec spec;
  const vgpu::KernelConfig config{
      .name = "probe", .grid = {1, 1, 1}, .block = {32, 1, 1}};
  const auto noop = [](const vgpu::ThreadCoord&, vgpu::LaneCtx& ctx,
                       vgpu::SharedMem&) { ctx.alu(); };

  {
    const vgpu::ScopedLaunchFaultHook hook(make_launch_fault_hook(plan, 3, 0));
    try {
      vgpu::execute_kernel(spec, config, noop);
      FAIL() << "expected LaunchError";
    } catch (const vgpu::LaunchError& error) {
      EXPECT_TRUE(error.transient());
    }
    // The armed fault fired; the in-scope retry launches clean.
    EXPECT_NO_THROW(vgpu::execute_kernel(spec, config, noop));
  }
  // attempt 1 is past the burst (default 1): nothing is armed.
  const vgpu::ScopedLaunchFaultHook hook(make_launch_fault_hook(plan, 3, 1));
  EXPECT_NO_THROW(vgpu::execute_kernel(spec, config, noop));
}

TEST(LaunchFaultHook, OverflowKindsTargetMatchingLaunchesOnly) {
  const FaultPlan plan = FaultPlan::parse("const@2,shared@2", 1);
  const vgpu::DeviceSpec spec;
  const auto noop = [](const vgpu::ThreadCoord&, vgpu::LaneCtx& ctx,
                       vgpu::SharedMem&) { ctx.alu(); };
  const vgpu::ScopedLaunchFaultHook hook(make_launch_fault_hook(plan, 2, 0));

  // No constant or shared usage: the hook lets the launch through.
  vgpu::KernelConfig plain{
      .name = "plain", .grid = {1, 1, 1}, .block = {32, 1, 1}};
  EXPECT_NO_THROW(vgpu::execute_kernel(spec, plain, noop));

  vgpu::KernelConfig uses_const = plain;
  uses_const.name = "const_user";
  uses_const.constant_bytes = 128;
  try {
    vgpu::execute_kernel(spec, uses_const, noop);
    FAIL() << "expected LaunchError";
  } catch (const vgpu::LaunchError& error) {
    EXPECT_FALSE(error.transient());
    EXPECT_NE(std::string(error.what()).find("constant"), std::string::npos);
  }
}

TEST(LaunchFaultHook, UntargetedFrameArmsNothing) {
  const FaultPlan plan = FaultPlan::parse("launch@3", 1);
  EXPECT_FALSE(static_cast<bool>(make_launch_fault_hook(plan, 4, 0)));
  EXPECT_TRUE(static_cast<bool>(make_launch_fault_hook(plan, 3, 0)));
}

TEST(ScopedLaunchFaultHook, RestoresThePreviousHookOnExit) {
  const vgpu::DeviceSpec spec;
  const vgpu::KernelConfig config{
      .name = "probe", .grid = {1, 1, 1}, .block = {32, 1, 1}};
  const auto noop = [](const vgpu::ThreadCoord&, vgpu::LaneCtx& ctx,
                       vgpu::SharedMem&) { ctx.alu(); };
  int outer_calls = 0;
  {
    const vgpu::ScopedLaunchFaultHook outer(
        [&](const vgpu::KernelConfig&) { ++outer_calls; });
    vgpu::execute_kernel(spec, config, noop);
    EXPECT_EQ(outer_calls, 1);
    {
      const vgpu::ScopedLaunchFaultHook inner(
          [](const vgpu::KernelConfig&) {});
      vgpu::execute_kernel(spec, config, noop);
      EXPECT_EQ(outer_calls, 1);  // inner shadowed outer
    }
    vgpu::execute_kernel(spec, config, noop);
    EXPECT_EQ(outer_calls, 2);  // outer restored
  }
  vgpu::execute_kernel(spec, config, noop);
  EXPECT_EQ(outer_calls, 2);  // cleared after the outermost scope
}

TEST(DeviceFaultPlan, ParsesEveryFormAndRoundTrips) {
  const DeviceFaultPlan plan = DeviceFaultPlan::parse(
      "device-lost@1:2.5+1,device-hang@2:4+0.5,device-slow@0:3+2*4,"
      "device-slow@0.05*8",
      1);
  ASSERT_EQ(plan.specs().size(), 4u);
  EXPECT_EQ(plan.specs()[0].kind, DeviceFaultKind::kDeviceLost);
  EXPECT_EQ(plan.specs()[0].device, 1);
  EXPECT_DOUBLE_EQ(plan.specs()[0].start_s, 2.5);
  EXPECT_DOUBLE_EQ(plan.specs()[0].duration_s, 1.0);
  EXPECT_EQ(plan.specs()[1].kind, DeviceFaultKind::kDeviceHang);
  EXPECT_EQ(plan.specs()[2].kind, DeviceFaultKind::kDeviceSlow);
  EXPECT_DOUBLE_EQ(plan.specs()[2].factor, 4.0);
  EXPECT_EQ(plan.specs()[3].device, -1);  // probabilistic on every device
  EXPECT_DOUBLE_EQ(plan.specs()[3].probability, 0.05);
  EXPECT_DOUBLE_EQ(plan.specs()[3].factor, 8.0);
  // describe() round-trips through parse().
  const DeviceFaultPlan again = DeviceFaultPlan::parse(plan.describe(), 1);
  EXPECT_EQ(again.describe(), plan.describe());
}

TEST(DeviceFaultPlan, ParseNamesTheOffendingToken) {
  try {
    DeviceFaultPlan::parse("device-lost@1:2+1,device-warp@2:1+1", 1);
    FAIL() << "expected CheckError";
  } catch (const core::CheckError& error) {
    EXPECT_NE(std::string(error.what()).find("device-warp"),
              std::string::npos);
  }
  EXPECT_THROW(DeviceFaultPlan::parse("device-lost", 1), core::CheckError);
  EXPECT_THROW(DeviceFaultPlan::parse("device-lost@1", 1), core::CheckError);
  EXPECT_THROW(DeviceFaultPlan::parse("device-lost@1:2", 1),
               core::CheckError);
  // Only device-slow may be probabilistic.
  EXPECT_THROW(DeviceFaultPlan::parse("device-lost@0.5", 1),
               core::CheckError);
  // Outage windows on the same device must not overlap.
  EXPECT_THROW(
      DeviceFaultPlan::parse("device-lost@1:2+2,device-hang@1:3+1", 1),
      core::CheckError);
  // Slow factors must actually slow.
  EXPECT_THROW(DeviceFaultPlan::parse("device-slow@0:1+1*0.5", 1),
               core::CheckError);
}

TEST(DeviceFaultPlan, OutagesAreSortedPerDevice) {
  const DeviceFaultPlan plan = DeviceFaultPlan::parse(
      "device-lost@0:5+1,device-hang@0:1+0.5,device-lost@1:0+1", 1);
  const auto outages = plan.outages(0);
  ASSERT_EQ(outages.size(), 2u);
  EXPECT_DOUBLE_EQ(outages[0]->start_s, 1.0);
  EXPECT_DOUBLE_EQ(outages[1]->start_s, 5.0);
  EXPECT_TRUE(plan.outages(2).empty());
  // Slow specs are not outages.
  const DeviceFaultPlan slow = DeviceFaultPlan::parse("device-slow@0:1+1", 1);
  EXPECT_TRUE(slow.outages(0).empty());
}

TEST(DeviceFaultPlan, SlowFactorWindowsAndProbabilisticFiring) {
  const DeviceFaultPlan plan =
      DeviceFaultPlan::parse("device-slow@0:2+3*4", 1);
  EXPECT_DOUBLE_EQ(plan.slow_factor(0, 0, 0, 1.0), 1.0);  // before onset
  EXPECT_DOUBLE_EQ(plan.slow_factor(0, 0, 0, 2.0), 4.0);  // active
  EXPECT_DOUBLE_EQ(plan.slow_factor(0, 0, 0, 4.9), 4.0);
  EXPECT_DOUBLE_EQ(plan.slow_factor(0, 0, 0, 5.0), 1.0);  // window end
  EXPECT_DOUBLE_EQ(plan.slow_factor(1, 0, 0, 2.0), 1.0);  // other device

  const DeviceFaultPlan prob =
      DeviceFaultPlan::parse("device-slow@0.3*2", 9);
  int fired = 0;
  for (int frame = 0; frame < 400; ++frame) {
    const double factor = prob.slow_factor(0, 0, frame, 0.0);
    EXPECT_TRUE(factor == 1.0 || factor == 2.0);
    fired += factor > 1.0 ? 1 : 0;
    // Deterministic in (seed, device, stream, frame).
    EXPECT_DOUBLE_EQ(factor, prob.slow_factor(0, 0, frame, 99.0));
  }
  EXPECT_GT(fired, 400 * 0.3 / 2);
  EXPECT_LT(fired, 400 * 0.3 * 2);
  // Different streams draw independently.
  int diverged = 0;
  for (int frame = 0; frame < 100; ++frame) {
    diverged += prob.slow_factor(0, 0, frame, 0.0) !=
                        prob.slow_factor(0, 7, frame, 0.0)
                    ? 1
                    : 0;
  }
  EXPECT_GT(diverged, 0);
}

TEST(MixedFaultPlanTest, SplitsFrameAndDeviceTokens) {
  const MixedFaultPlan mixed =
      parse_mixed_fault_plan("decode@4,device-lost@1:2+1,corrupt@7", 5);
  ASSERT_EQ(mixed.frame.specs().size(), 2u);
  EXPECT_EQ(mixed.frame.specs()[0].kind, FaultKind::kDecodeFail);
  EXPECT_EQ(mixed.frame.specs()[1].kind, FaultKind::kCorruptLuma);
  ASSERT_EQ(mixed.device.specs().size(), 1u);
  EXPECT_EQ(mixed.device.specs()[0].kind, DeviceFaultKind::kDeviceLost);
  EXPECT_EQ(mixed.frame.seed(), 5u);
  EXPECT_EQ(mixed.device.seed(), 5u);

  const MixedFaultPlan frame_only = parse_mixed_fault_plan("decode@4", 5);
  EXPECT_TRUE(frame_only.device.empty());
  const MixedFaultPlan device_only =
      parse_mixed_fault_plan("device-hang@0:1+1", 5);
  EXPECT_TRUE(device_only.frame.empty());
  const MixedFaultPlan none = parse_mixed_fault_plan("", 5);
  EXPECT_TRUE(none.frame.empty());
  EXPECT_TRUE(none.device.empty());
}

}  // namespace
}  // namespace fdet::serve
