#include "vgpu/shared_mem.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "core/check.h"

namespace fdet::vgpu {
namespace {

TEST(SharedMem, MixedTypeCarvesInsertAlignmentPadding) {
  SharedMem shared;
  shared.reset(64);

  auto bytes = shared.array<std::uint8_t>(3);   // [0, 3)
  auto doubles = shared.array<double>(2);       // pads 3 -> 8, [8, 24)
  auto halves = shared.array<std::uint16_t>(1); // already 2-aligned, [24, 26)

  EXPECT_EQ(shared.offset_of(&bytes[0]), 0u);
  EXPECT_EQ(shared.offset_of(&doubles[0]), 8u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&doubles[0]) % alignof(double),
            0u);
  EXPECT_EQ(shared.offset_of(&halves[0]), 24u);

  // offset_of addresses individual elements, the unit the checker's
  // shared_load_at/shared_store_at helpers record.
  EXPECT_EQ(shared.offset_of(&doubles[1]), 16u);
}

TEST(SharedMem, ExactCapacityCarveSucceedsNextByteThrows) {
  SharedMem shared;
  shared.reset(64);
  auto full = shared.array<double>(8);  // exactly 64 bytes
  EXPECT_EQ(full.size(), 8u);
  EXPECT_EQ(shared.offset_of(&full[0]), 0u);
  EXPECT_THROW(shared.array<std::uint8_t>(1), core::CheckError);
}

TEST(SharedMem, PaddingCanPushAnOtherwiseFittingCarveOverCapacity) {
  SharedMem shared;
  shared.reset(16);
  shared.array<std::uint8_t>(1);  // cursor 1
  // 12 bytes would fit from offset 1, but 4-alignment starts them at 4.
  EXPECT_THROW(shared.array<std::int32_t>(4), core::CheckError);
  shared.rewind();
  auto ints = shared.array<std::int32_t>(4);  // from 0 they fit exactly
  EXPECT_EQ(ints.size(), 4u);
}

TEST(SharedMem, OverflowMessageNamesNeedAndHave) {
  SharedMem shared;
  shared.reset(16);
  try {
    shared.array<std::int32_t>(5);  // 20 > 16
    FAIL() << "expected core::CheckError";
  } catch (const core::CheckError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("shared memory overflow: need 20 have 16"),
              std::string::npos)
        << message;
  }
}

TEST(SharedMem, RewindReplaysTheSameStorage) {
  SharedMem shared;
  shared.reset(32);
  auto first = shared.array<std::int32_t>(4);
  first[2] = 77;
  shared.rewind();
  auto second = shared.array<std::int32_t>(4);
  EXPECT_EQ(&second[0], &first[0]);
  EXPECT_EQ(second[2], 77);  // block-lifetime storage survives the rewind
}

TEST(SharedMem, ResetZeroesAndResizes) {
  SharedMem shared;
  shared.reset(8);
  shared.array<std::int64_t>(1)[0] = -1;
  shared.reset(8);
  EXPECT_EQ(shared.array<std::int64_t>(1)[0], 0);
  shared.reset(128);
  EXPECT_EQ(shared.capacity(), 128u);
}

}  // namespace
}  // namespace fdet::vgpu
