// fdet_check — runs the production virtual-GPU kernels under the
// racecheck/memcheck verification layer (vgpu/checker.h) and prints a
// per-kernel verdict table, the moral equivalent of sweeping every kernel
// with `cuda-memcheck --tool racecheck`.
//
//   fdet_check                     verify the production kernels: integral
//                                  scan + transpose, pyramid scale/filter,
//                                  cascade evaluation, display overlay
//   fdet_check --seeded            run the seeded-defect corpus instead and
//                                  verify the checker *catches* each
//                                  planted bug (CI proof of detection)
//   fdet_check --metrics-out=f     also export vgpu.check.* metrics, which
//                                  `fdet_report show` renders as a kernel
//                                  verification table
//
// Exit codes: 0 all kernels clean (or, with --seeded, every planted defect
// detected), 1 usage error, 2 verification failure.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/check.h"
#include "core/cli.h"
#include "core/rng.h"
#include "core/table.h"
#include "detect/kernels.h"
#include "haar/encoding.h"
#include "haar/profile.h"
#include "img/image.h"
#include "integral/gpu.h"
#include "obs/metrics.h"
#include "obs/verify.h"
#include "vgpu/checker.h"
#include "vgpu/kernel.h"

namespace fdet {
namespace {

img::ImageU8 random_image(int w, int h, std::uint64_t seed) {
  core::Rng rng(seed);
  img::ImageU8 im(w, h);
  for (auto& p : im.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return im;
}

struct KernelVerdict {
  vgpu::CheckReport report;
};

/// Runs `body` inside a fresh CheckScope with the given allocations and
/// collects every launch report it produced.
template <typename Body>
std::vector<vgpu::CheckReport> run_checked(
    std::vector<vgpu::GlobalAllocation> allocations, Body&& body) {
  vgpu::CheckScope scope;
  scope.set_global_allocations(std::move(allocations));
  body();
  return scope.checker().take_reports();
}

// --- production sweep -------------------------------------------------

std::vector<vgpu::CheckReport> check_production(int width, int height,
                                                std::uint64_t seed) {
  const vgpu::DeviceSpec spec;
  std::vector<vgpu::CheckReport> reports;
  const auto append = [&reports](std::vector<vgpu::CheckReport> r) {
    for (auto& report : r) {
      reports.push_back(std::move(report));
    }
  };

  const img::ImageU8 frame = random_image(width, height, seed);
  const std::uint64_t i32_bytes =
      static_cast<std::uint64_t>(width) * height * 4;

  // Integral pipeline: scan, transpose, scan, transpose. Virtual addresses
  // are per-array byte offsets (addr_of in integral/gpu.cpp), so one range
  // sized like the largest array covers every access of these launches.
  append(run_checked({{"integral arrays", 0, i32_bytes}}, [&] {
    integral::integral_gpu(spec, frame);
  }));

  // Pyramid kernels at one representative level.
  const int lw = width / 2;
  const int lh = height / 2;
  img::ImageU8 scaled(lw, lh);
  append(run_checked(
      {{"luma plane", 0, static_cast<std::uint64_t>(width) * height}},
      [&] { detect::scale_kernel(spec, frame, scaled, "scale"); }));

  img::ImageU8 filtered_h(lw, lh);
  img::ImageU8 filtered(lw, lh);
  append(run_checked(
      {{"level plane", 0, static_cast<std::uint64_t>(lw) * lh}}, [&] {
        detect::filter_kernel(spec, scaled, filtered_h, /*horizontal=*/true,
                              "filter_h");
        detect::filter_kernel(spec, filtered_h, filtered,
                              /*horizontal=*/false, "filter_v");
      }));

  // Cascade evaluation on the filtered level, with a synthetic cascade of
  // the paper's record shape (train::get_or_train_cascades is minutes of
  // work; verification only needs the kernel's access pattern).
  const auto ii = integral::integral_cpu(filtered);
  const haar::Cascade cascade = haar::build_profile_cascade(
      "fdet-check", std::vector<int>{6, 8, 10}, seed);
  const haar::ConstantBank bank = haar::ConstantBank::build(cascade);
  detect::CascadeKernelOutput out;
  const std::uint64_t ii_bytes =
      static_cast<std::uint64_t>(ii.width()) * ii.height() * 4;
  append(run_checked({{"integral/depth/score", 0, ii_bytes}}, [&] {
    detect::cascade_kernel(spec, bank, ii, out,
                           detect::CascadeKernelOptions{}, "cascade");
  }));

  // Display overlay at frame resolution.
  img::ImageU8 overlay = frame;
  const std::uint64_t overlay_bytes =
      static_cast<std::uint64_t>(width) * height;
  append(run_checked(
      {{"depth map", 0, ii_bytes}, {"overlay", 0, overlay_bytes}}, [&] {
        detect::display_kernel(spec, out.depth,
                               static_cast<int>(cascade.stages().size()), 2.0,
                               overlay, "display");
      }));

  return reports;
}

// --- seeded-defect corpus ---------------------------------------------

struct SeededDefect {
  std::string name;
  vgpu::HazardKind expected;
  vgpu::CheckReport report;
};

std::vector<SeededDefect> check_seeded() {
  using vgpu::HazardKind;
  using vgpu::KernelConfig;
  using vgpu::LaneCtx;
  using vgpu::SharedMem;
  using vgpu::ThreadCoord;
  const vgpu::DeviceSpec spec;
  constexpr int kLanes = 32;
  const auto config = [](const std::string& name, int shared_bytes) {
    return KernelConfig{.name = name,
                        .grid = {1, 1, 1},
                        .block = {kLanes, 1, 1},
                        .shared_bytes = shared_bytes};
  };

  std::vector<SeededDefect> defects;

  // Missing barrier: write own slot, read the neighbour's in one phase.
  defects.push_back(
      {"missing barrier (neighbour read)", HazardKind::kIntraPhaseRace,
       vgpu::execute_kernel_checked(
           spec, config("seeded_race", kLanes * 4),
           [](const ThreadCoord& t, LaneCtx& ctx, SharedMem& shared) {
             auto tile = shared.array<std::int32_t>(kLanes);
             auto& mine = tile[static_cast<std::size_t>(t.thread.x)];
             mine = t.thread.x;
             ctx.shared_store_at(shared, mine);
             ctx.shared_load_at(
                 shared,
                 tile[static_cast<std::size_t>((t.thread.x + 1) % kLanes)]);
           })
           .report});

  // Read of shared bytes no phase ever wrote.
  defects.push_back(
      {"uninitialized shared read", HazardKind::kUninitializedSharedRead,
       vgpu::execute_kernel_checked(
           spec, config("seeded_uninit", kLanes * 4),
           [](const ThreadCoord& t, LaneCtx& ctx, SharedMem& shared) {
             auto tile = shared.array<std::int32_t>(kLanes);
             ctx.shared_load_at(shared,
                                tile[static_cast<std::size_t>(t.thread.x)]);
           })
           .report});

  // Lanes disagree on the static __shared__ layout.
  defects.push_back(
      {"carve divergence (odd lanes)", HazardKind::kCarveDivergence,
       vgpu::execute_kernel_checked(
           spec, config("seeded_divergence", 32),
           [](const ThreadCoord& t, LaneCtx&, SharedMem& shared) {
             shared.array<std::int32_t>(t.thread.x % 2 == 1 ? 8 : 4);
           })
           .report});

  // Carve escaping the declared static footprint.
  defects.push_back(
      {"carve past shared_bytes", HazardKind::kCarveOverflow,
       vgpu::execute_kernel_checked(
           spec, config("seeded_overflow", 64),
           [](const ThreadCoord&, LaneCtx&, SharedMem& shared) {
             shared.array<double>(100);
           })
           .report});

  // Constant-memory footprint over the device limit (Sec. III-B's reason
  // for re-encoding the cascade records).
  KernelConfig fat = config("seeded_constant", 0);
  fat.constant_bytes = 2 * spec.constant_mem_bytes;
  defects.push_back(
      {"constant footprint 2x device", HazardKind::kConstantOverflow,
       vgpu::execute_kernel_checked(
           spec, fat, [](const ThreadCoord&, LaneCtx&, SharedMem&) {})
           .report});

  // Global access outside every registered allocation.
  vgpu::CheckOptions oob_options;
  oob_options.global_allocations = {{"buf", 0, 64}};
  defects.push_back(
      {"global load past allocation", HazardKind::kGlobalOutOfBounds,
       vgpu::execute_kernel_checked(
           spec, config("seeded_global_oob", 0),
           [](const ThreadCoord&, LaneCtx& ctx, SharedMem&) {
             ctx.global_load(100, 4);
           },
           oob_options)
           .report});

  return defects;
}

bool detected(const SeededDefect& defect) {
  for (const vgpu::Hazard& hazard : defect.report.hazards) {
    if (hazard.kind == defect.expected) {
      return true;
    }
  }
  return false;
}

// --- reporting ---------------------------------------------------------

int run_production(int width, int height, int seed,
                   const std::string& metrics_out) {
  const std::vector<vgpu::CheckReport> reports =
      check_production(width, height, static_cast<std::uint64_t>(seed));

  core::Table table({"kernel", "verdict", "hazards", "shared accesses",
                     "carves", "global ops"});
  bool all_clean = true;
  for (const vgpu::CheckReport& report : reports) {
    all_clean = all_clean && report.clean();
    table.add_row(
        {report.kernel, report.clean() ? "CLEAN" : "HAZARDS",
         std::to_string(report.hazards.size() + report.suppressed_hazards),
         std::to_string(report.shared_accesses_checked),
         std::to_string(report.carves_checked),
         std::to_string(report.global_ops_checked)});
  }
  table.print(std::cout);
  for (const vgpu::CheckReport& report : reports) {
    for (const vgpu::Hazard& hazard : report.hazards) {
      std::printf("HAZARD [%s] %s\n", vgpu::hazard_name(hazard.kind),
                  hazard.message.c_str());
    }
  }

  if (!metrics_out.empty()) {
    obs::Registry registry;
    obs::publish_check_reports(registry, reports);
    registry.write_file(metrics_out);
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  std::printf("%zu kernel launches checked: %s\n", reports.size(),
              all_clean ? "ALL CLEAN" : "HAZARDS FOUND");
  return all_clean ? 0 : 2;
}

int run_seeded(const std::string& metrics_out) {
  const std::vector<SeededDefect> defects = check_seeded();

  core::Table table({"seeded defect", "expected hazard", "verdict"});
  bool all_caught = true;
  for (const SeededDefect& defect : defects) {
    const bool caught = detected(defect);
    all_caught = all_caught && caught;
    table.add_row({defect.name, vgpu::hazard_name(defect.expected),
                   caught ? "DETECTED" : "MISSED"});
  }
  table.print(std::cout);

  if (!metrics_out.empty()) {
    obs::Registry registry;
    for (const SeededDefect& defect : defects) {
      obs::publish_check_report(registry, defect.report,
                                {{"corpus", "seeded"}});
    }
    registry.write_file(metrics_out);
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  std::printf("%zu seeded defects: %s\n", defects.size(),
              all_caught ? "ALL DETECTED" : "SOME MISSED");
  return all_caught ? 0 : 2;
}

}  // namespace
}  // namespace fdet

int main(int argc, char** argv) {
  using namespace fdet;
  int width = 96;
  int height = 72;
  int seed = 42;
  bool seeded = false;
  std::string metrics_out;
  core::Cli cli("fdet_check");
  cli.flag("width", width, "test frame width");
  cli.flag("height", height, "test frame height");
  cli.flag("seed", seed, "pixel/cascade rng seed");
  cli.flag("seeded", seeded,
           "run the seeded-defect corpus instead of the production sweep");
  cli.flag("metrics-out", metrics_out,
           "export vgpu.check.* metrics (.json or .csv)");
  if (!cli.parse(argc, argv)) {
    return 1;
  }
  try {
    return seeded ? run_seeded(metrics_out)
                  : run_production(width, height, seed, metrics_out);
  } catch (const core::CheckError& error) {
    std::fprintf(stderr, "fdet_check: %s\n", error.what());
    return 1;
  }
}
