// Fuzz-style robustness harness for the ingest layer (tools/fdet_fuzz).
//
// The corpus invariant, asserted over every input this harness touches:
//
//   every byte stream either decodes completely or raises a typed
//   ingest::IngestError — never a crash, never an out-of-bounds access
//   (CI runs this under ASan/UBSan), never a silently malformed frame.
//
// Three modes:
//
//   fdet_fuzz                          seeded mutation sweep: encode a
//                                      synthetic trailer into every
//                                      container format, apply --mutants
//                                      deterministic mutations per format
//                                      (bit flips, truncation, splices,
//                                      zeroed runs, garbage tails), and
//                                      probe each mutant
//   fdet_fuzz --write-corpus=DIR       regenerate the committed seed
//                                      corpus: pristine streams (ok_*)
//                                      plus one handcrafted malformed
//                                      stream per reachable error kind
//                                      (bad_<format>_<kind>.bin)
//   fdet_fuzz --corpus=DIR             replay a corpus directory: ok_*
//                                      must decode fully (twice,
//                                      byte-identical); bad_* must raise
//                                      the exact kind its name declares
//
// Exit codes: 0 invariant holds, 1 usage, 2 invariant violated.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "core/artifact.h"
#include "core/cli.h"
#include "core/rng.h"
#include "ingest/mutate.h"
#include "ingest/quarantine.h"
#include "ingest/registry.h"
#include "video/trailer.h"

namespace {

using fdet::ingest::Format;
using fdet::ingest::IngestError;
using fdet::ingest::IngestErrorKind;
using fdet::ingest::MutationKind;

/// Outcome of probing one byte stream against the corpus invariant.
struct Probe {
  bool decoded = false;              ///< opened and every frame decoded
  bool typed_reject = false;         ///< rejected with an IngestError
  IngestErrorKind kind = IngestErrorKind::kTruncated;
  std::string what;
};

/// Opens and fully decodes `bytes`. IngestError is the *only* acceptable
/// failure; anything else escapes to the caller as a violation.
Probe probe_stream(const std::string& bytes) {
  Probe result;
  try {
    std::string copy = bytes;
    const auto source = fdet::ingest::open_stream(std::move(copy));
    for (int i = 0; i < source->frame_count(); ++i) {
      const fdet::video::DecodedFrame frame = source->decode(i);
      // A frame that comes back must match the stream's geometry — the
      // "never silently malformed" half of the invariant.
      if (frame.frame.width() != source->info().width ||
          frame.frame.height() != source->info().height) {
        throw std::runtime_error("decoded frame geometry mismatch");
      }
    }
    result.decoded = true;
  } catch (const IngestError& error) {
    result.typed_reject = true;
    result.kind = error.kind();
    result.what = error.what();
  }
  return result;
}

/// Byte-identical double decode of frame 0 — determinism spot check.
bool decode_deterministic(const std::string& bytes) {
  std::string a = bytes;
  std::string b = bytes;
  const auto first = fdet::ingest::open_stream(std::move(a))->decode(0);
  const auto second = fdet::ingest::open_stream(std::move(b))->decode(0);
  return first.frame.luma() == second.frame.luma() &&
         first.frame.chroma() == second.frame.chroma();
}

fdet::video::TrailerSpec fuzz_spec() {
  fdet::video::TrailerSpec spec;
  spec.title = "fuzz";
  spec.width = 64;
  spec.height = 48;
  spec.frames = 8;
  spec.fps = 24.0;
  spec.shot_frames = 4;
  spec.face_density = 1.0;
  spec.seed = 0xf0220;
  return spec;
}

// ---------------------------------------------------------------------------
// Handcrafted malformed streams: one per (format, reachable error kind).
// Offsets lean on the fixed 20-byte header every format shares:
//   [0,3) magic  [3] version  [4,8) width  [8,12) height
//   [12,16) frames  [16,20) fps_milli
// ---------------------------------------------------------------------------

std::string patch(std::string bytes, std::size_t offset, char value) {
  bytes.at(offset) = value;
  return bytes;
}

std::string patch_u32(std::string bytes, std::size_t offset,
                      std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    bytes.at(offset + static_cast<std::size_t>(i)) =
        static_cast<char>((value >> (8 * i)) & 0xff);
  }
  return bytes;
}

/// XOR-damage one byte — guaranteed to differ from the original.
std::string patch_xor(std::string bytes, std::size_t offset, char mask) {
  bytes.at(offset) = static_cast<char>(bytes.at(offset) ^ mask);
  return bytes;
}

struct CorpusEntry {
  std::string name;  ///< file stem, e.g. "bad_raw_bad-magic"
  std::string bytes;
};

std::vector<CorpusEntry> build_bad_corpus(
    const std::map<Format, std::string>& pristine) {
  std::vector<CorpusEntry> out;
  const auto add = [&out](Format format, IngestErrorKind kind,
                          std::string bytes) {
    out.push_back({std::string("bad_") +
                       std::string(fdet::ingest::format_name(format)) + "_" +
                       fdet::ingest::ingest_error_kind_name(kind),
                   std::move(bytes)});
  };

  for (const auto& [format, bytes] : pristine) {
    // Shared header wounds, one per format.
    add(format, IngestErrorKind::kBadMagic, patch(bytes, 0, 'Z'));
    add(format, IngestErrorKind::kBadVersion, patch(bytes, 3, '9'));
    add(format, IngestErrorKind::kDimensionOverflow,
        patch_u32(bytes, 4, 63));  // odd width
    add(format, IngestErrorKind::kAbsurdMetadata,
        patch_u32(bytes, 12, 1u << 30));  // absurd frame count
    add(format, IngestErrorKind::kTruncated,
        bytes.substr(0, bytes.size() - 7));
    add(format, IngestErrorKind::kTrailingGarbage, bytes + "EXTRA");
  }

  // Raw: flip one payload byte behind frame 0's CRC.
  add(Format::kRaw, IngestErrorKind::kChecksumMismatch,
      patch_xor(pristine.at(Format::kRaw), 24 + 100, '\x5a'));
  // Mjpeg: zero frame 0's first RLE count byte (runs must be >= 1).
  // Frame 0 starts at 20: SOI(2) + rle_len(4), RLE at 26.
  add(Format::kMjpeg, IngestErrorKind::kPlaneSizeMismatch,
      patch(pristine.at(Format::kMjpeg), 26, '\0'));
  {
    // Gif: point a keyframe pixel past the 64-entry palette, and bend a
    // delta rect outside the canvas. Keyframe indices start after the
    // header (20), palette_size byte (1), palette (64), pixel count (4).
    const std::string& gif = pristine.at(Format::kGif);
    const std::size_t key_pixels = 20 + 1 + 64 + 4;
    add(Format::kGif, IngestErrorKind::kPaletteOverflow,
        patch(gif, key_pixels + 5, '\xff'));
    // Frame 1's rect starts right after the 64*48 keyframe pixels:
    // u16 x at that offset — push x past the 64-wide canvas.
    const std::size_t rect_x = key_pixels + 64 * 48;
    add(Format::kGif, IngestErrorKind::kBadSubRect,
        patch(gif, rect_x, '\xff'));
  }
  return out;
}

int write_corpus(const std::string& dir,
                 const std::map<Format, std::string>& pristine) {
  std::filesystem::create_directories(dir);
  int written = 0;
  const auto emit = [&](const std::string& stem, const std::string& bytes) {
    fdet::core::atomic_write_file(dir + "/" + stem + ".bin", bytes);
    ++written;
  };
  for (const auto& [format, bytes] : pristine) {
    emit(std::string("ok_") + std::string(fdet::ingest::format_name(format)),
         bytes);
  }
  for (const CorpusEntry& entry : build_bad_corpus(pristine)) {
    emit(entry.name, entry.bytes);
  }
  std::printf("wrote %d corpus file(s) to %s\n", written, dir.c_str());
  return 0;
}

std::string read_file(const std::filesystem::path& path) {
  std::string out;
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    char buffer[4096];
    std::size_t n;
    while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
      out.append(buffer, n);
    }
    std::fclose(f);
  }
  return out;
}

int run_corpus(const std::string& dir) {
  int checked = 0;
  int violations = 0;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".bin") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    const std::string stem = path.stem().string();
    const std::string bytes = read_file(path);
    ++checked;
    try {
      const Probe probe = probe_stream(bytes);
      if (stem.rfind("ok_", 0) == 0) {
        if (!probe.decoded) {
          std::printf("VIOLATION %s: pristine stream rejected: %s\n",
                      stem.c_str(), probe.what.c_str());
          ++violations;
        } else if (!decode_deterministic(bytes)) {
          std::printf("VIOLATION %s: decode(0) not byte-identical twice\n",
                      stem.c_str());
          ++violations;
        }
      } else {
        // bad_<format>_<kind>: the rejection must carry the named kind.
        const std::string expected = stem.substr(stem.rfind('_') + 1);
        if (!probe.typed_reject) {
          std::printf("VIOLATION %s: malformed stream decoded cleanly\n",
                      stem.c_str());
          ++violations;
        } else if (expected !=
                   fdet::ingest::ingest_error_kind_name(probe.kind)) {
          std::printf("VIOLATION %s: expected kind %s, got %s (%s)\n",
                      stem.c_str(), expected.c_str(),
                      fdet::ingest::ingest_error_kind_name(probe.kind),
                      probe.what.c_str());
          ++violations;
        }
      }
    } catch (const std::exception& error) {
      std::printf("VIOLATION %s: untyped failure escaped: %s\n", stem.c_str(),
                  error.what());
      ++violations;
    }
  }
  std::printf("corpus: %d file(s), %d violation(s)\n", checked, violations);
  return violations == 0 && checked > 0 ? 0 : 2;
}

int run_mutation_sweep(const std::map<Format, std::string>& pristine,
                       int mutants, std::uint64_t seed,
                       const std::string& quarantine_dir) {
  fdet::ingest::StreamQuarantine quarantine(quarantine_dir,
                                            /*max_records=*/16);
  int violations = 0;
  for (const auto& [format, bytes] : pristine) {
    const std::string name(fdet::ingest::format_name(format));
    int decoded = 0;
    std::map<std::string, int> rejects;
    for (int i = 0; i < mutants; ++i) {
      const MutationKind kind =
          fdet::ingest::kAllMutations[static_cast<std::size_t>(i) %
                                      std::size(fdet::ingest::kAllMutations)];
      const std::uint64_t mutant_seed = fdet::core::hash_combine(
          fdet::core::hash_combine(seed, static_cast<std::uint64_t>(format)),
          static_cast<std::uint64_t>(i));
      const std::string mutant =
          fdet::ingest::mutate_stream(bytes, kind, mutant_seed);
      try {
        const Probe probe = probe_stream(mutant);
        if (probe.decoded) {
          ++decoded;
        } else {
          ++rejects[fdet::ingest::ingest_error_kind_name(probe.kind)];
        }
      } catch (const std::exception& error) {
        // Untyped escape: the exact bug class this harness exists to
        // catch. Quarantine the mutant so CI uploads it for triage.
        std::printf("VIOLATION %s mutant %d (%s, seed %llu): %s\n",
                    name.c_str(), i,
                    std::string(fdet::ingest::mutation_kind_name(kind)).c_str(),
                    static_cast<unsigned long long>(mutant_seed),
                    error.what());
        quarantine.record(
            name + "_mutant_" + std::to_string(i),
            IngestError(IngestErrorKind::kUnsupported, name, 0,
                        std::string("untyped escape: ") + error.what()),
            mutant);
        ++violations;
      }
    }
    std::printf("%-6s %5d mutants: %5d decoded, %5d typed reject(s)\n",
                name.c_str(), mutants, decoded, mutants - decoded);
    for (const auto& [kind, n] : rejects) {
      std::printf("         %-20s %5d\n", kind.c_str(), n);
    }
  }
  if (violations > 0) {
    std::printf("INVARIANT VIOLATED: %d untyped escape(s)\n", violations);
    return 2;
  }
  std::printf("invariant holds: every mutant decoded or raised a typed "
              "IngestError\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  fdet::core::Cli cli("fdet_fuzz");
  int mutants = 1000;
  int seed = 0xf022;
  std::string write_dir;
  std::string corpus_dir;
  std::string quarantine_dir;
  cli.flag("mutants", mutants, "mutated inputs per format (sweep mode)");
  cli.flag("seed", seed, "mutation seed base");
  cli.flag("write-corpus", write_dir, "regenerate the seed corpus here");
  cli.flag("corpus", corpus_dir, "replay this corpus directory");
  cli.flag("quarantine-dir", quarantine_dir,
           "dump untyped-escape mutants here (CI artifact)");
  if (!cli.parse(argc, argv)) {
    return 1;
  }

  const fdet::video::SyntheticTrailer trailer(fuzz_spec());
  std::map<Format, std::string> pristine;
  for (const Format format : fdet::ingest::kAllFormats) {
    pristine[format] = fdet::ingest::encode_stream(format, trailer);
  }
  // The pristine encodes must satisfy the invariant before any mutation
  // is worth running.
  for (const auto& [format, bytes] : pristine) {
    const Probe probe = probe_stream(bytes);
    if (!probe.decoded || !decode_deterministic(bytes)) {
      std::printf("VIOLATION: pristine %s stream failed: %s\n",
                  std::string(fdet::ingest::format_name(format)).c_str(),
                  probe.what.c_str());
      return 2;
    }
  }

  if (!write_dir.empty()) {
    return write_corpus(write_dir, pristine);
  }
  if (!corpus_dir.empty()) {
    return run_corpus(corpus_dir);
  }
  return run_mutation_sweep(pristine, mutants,
                            static_cast<std::uint64_t>(seed), quarantine_dir);
}
