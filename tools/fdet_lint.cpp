// fdet_lint — static kernel analyzer for the virtual GPU. Captures every
// registered production kernel's lane program as a symbolic IR
// (analyze/capture.h) and runs the static analyses (analyze/analyses.h):
// shared/global out-of-bounds proofs, barrier-divergence detection,
// bank-conflict degree and coalescing predictions, dead-shared-write and
// occupancy advisories — no kernel code is trusted, no data is executed
// twice beyond the two capture seeds.
//
//   fdet_lint                      lint the production kernels across the
//                                  geometry sweep (base + odd-sized frame)
//   fdet_lint --seeded             run the seeded-defect corpus: each
//                                  planted bug must produce its expected
//                                  finding kind (CI proof of detection)
//   fdet_lint --suppress=k@n,...   extra suppressions (kind@kernel or
//                                  kind@*) on top of registry ones
//   fdet_lint --metrics-out=f      export analyze.lint.* metrics, which
//                                  `fdet_report lint` renders as a table
//
// Exit codes: 0 production kernels clean, 1 usage error, 2 findings
// (for --seeded: 2 means every planted defect was detected — the gate
// asserts exit 2; a missed defect exits 4).
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyses.h"
#include "analyze/capture.h"
#include "analyze/registry.h"
#include "analyze/report.h"
#include "core/check.h"
#include "core/cli.h"
#include "core/rng.h"
#include "core/table.h"
#include "obs/metrics.h"
#include "vgpu/kernel.h"

namespace fdet {
namespace {

std::vector<std::string> split_commas(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream stream(csv);
  for (std::string item; std::getline(stream, item, ',');) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

// --- production sweep ---------------------------------------------------

std::vector<analyze::KernelLintResult> lint_geometry(
    int width, int height, const std::vector<std::string>& cli_suppressions,
    int& shadowed_launches) {
  std::vector<analyze::KernelLintResult> results;
  for (analyze::LintTarget& target : analyze::production_targets(width, height)) {
    int shadowed = 0;
    const std::vector<analyze::KernelIR> irs = analyze::capture_kernels(
        target.driver, /*seed_a=*/0x5eed0001, /*seed_b=*/0x5eed0002,
        analyze::CaptureOptions{}, &shadowed);
    shadowed_launches += shadowed;
    analyze::AnalysisOptions options;
    options.allocations = target.allocations;
    std::vector<std::string> suppressions = target.suppressions;
    suppressions.insert(suppressions.end(), cli_suppressions.begin(),
                        cli_suppressions.end());
    for (const analyze::KernelIR& ir : irs) {
      std::vector<analyze::Finding> findings =
          analyze::analyze_kernel(ir, options);
      analyze::apply_suppressions(findings, suppressions);
      results.push_back(
          analyze::summarize(target.name, ir, std::move(findings)));
    }
  }
  return results;
}

int run_production(int width, int height, bool sweep,
                   const std::string& suppress,
                   const std::string& metrics_out) {
  const std::vector<std::string> cli_suppressions = split_commas(suppress);
  std::vector<std::pair<int, int>> geometries = {{width, height}};
  if (sweep) {
    // Odd frame: ragged last blocks on every axis, odd strides — the
    // geometry where off-by-one index bugs surface.
    geometries.emplace_back(width + 5, height - 3 - height % 2);
  }

  std::vector<analyze::KernelLintResult> results;
  int shadowed = 0;
  for (const auto& [w, h] : geometries) {
    std::printf("## lint sweep at %dx%d\n", w, h);
    const auto geometry_results = lint_geometry(w, h, cli_suppressions,
                                                shadowed);
    analyze::print_lint_table(std::cout, geometry_results);
    results.insert(results.end(), geometry_results.begin(),
                   geometry_results.end());
  }
  std::printf("\n");
  analyze::print_findings(std::cout, results);

  if (!metrics_out.empty()) {
    obs::Registry registry;
    analyze::publish_lint_results(registry, results);
    registry.write_file(metrics_out);
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }

  int gating = 0;
  for (const analyze::KernelLintResult& r : results) {
    gating += analyze::active_findings(r.findings);
  }
  if (shadowed > 0) {
    std::printf(
        "WARNING: %d launches ran under an active CheckScope and were not "
        "captured (checker precedence, vgpu/tap.h) — lint coverage is "
        "incomplete\n",
        shadowed);
    gating += shadowed;
  }
  std::printf("%zu kernel launches analyzed: %s\n", results.size(),
              gating == 0 ? "ALL CLEAN" : "FINDINGS");
  return gating == 0 ? 0 : 2;
}

// --- seeded-defect corpus -----------------------------------------------

struct SeededDefect {
  std::string name;
  analyze::FindingKind expected;
  std::vector<analyze::Finding> findings;
};

/// Captures one single-kernel driver under both seeds and analyzes it.
template <typename Driver>
std::vector<analyze::Finding> capture_and_analyze(
    Driver&& driver, const analyze::AnalysisOptions& options = {}) {
  const std::vector<analyze::KernelIR> irs =
      analyze::capture_kernels(std::forward<Driver>(driver));
  FDET_CHECK(irs.size() == 1) << "seeded defect must launch exactly once";
  return analyze::analyze_kernel(irs.front(), options);
}

std::vector<SeededDefect> lint_seeded() {
  using vgpu::KernelConfig;
  using vgpu::LaneCtx;
  using vgpu::SharedMem;
  using vgpu::ThreadCoord;
  const vgpu::DeviceSpec spec;
  std::vector<SeededDefect> defects;

  // Off-by-one shared read: every lane of an odd-sized block reads its
  // right neighbour's word — the last lane's read lands one word past the
  // declared footprint. The analyzer must PROVE this from the affine form
  // (the capture seeds never change the address).
  {
    constexpr int kLanes = 33;  // odd block: the ragged case the sweep hunts
    const KernelConfig config{.name = "seeded_oob",
                              .grid = {1, 1, 1},
                              .block = {kLanes, 1, 1},
                              .shared_bytes = kLanes * 4};
    defects.push_back(
        {"shared off-by-one at odd block dim",
         analyze::FindingKind::kSharedOutOfBounds,
         capture_and_analyze([&spec, &config](std::uint64_t /*seed*/) {
           vgpu::execute_kernel(
               spec, config,
               [](const ThreadCoord& t, LaneCtx& ctx, SharedMem&) {
                 // Raw offset report: the planted bug is the index math,
                 // not a host access, so no real span is dereferenced.
                 ctx.shared_load(
                     (static_cast<std::size_t>(t.thread.x) + 1) * 4, 4);
               });
         })});
  }

  // Barrier divergence: lanes store to shared memory only when their
  // input byte passes a threshold, then every lane reads after the
  // barrier. The writing lane set follows the data.
  {
    const KernelConfig config{.name = "seeded_barrier",
                              .grid = {1, 1, 1},
                              .block = {32, 1, 1},
                              .shared_bytes = 32 * 4,
                              .track_branches = true};
    defects.push_back(
        {"barrier in data-dependent branch",
         analyze::FindingKind::kBarrierDivergence,
         capture_and_analyze([&spec, &config](std::uint64_t seed) {
           core::Rng rng(seed);
           std::vector<int> input(32);
           for (int& v : input) {
             v = rng.uniform_int(0, 255);
           }
           const vgpu::PhaseFn produce = [&input](const ThreadCoord& t,
                                                  LaneCtx& ctx, SharedMem&) {
             const bool hot = input[static_cast<std::size_t>(t.thread.x)] > 127;
             ctx.branch(hot);
             if (hot) {
               ctx.shared_store(static_cast<std::size_t>(t.thread.x) * 4, 4);
             }
           };
           const vgpu::PhaseFn consume = [](const ThreadCoord& t, LaneCtx& ctx,
                                            SharedMem&) {
             ctx.shared_load(static_cast<std::size_t>(t.thread.x) * 4, 4);
           };
           const std::vector<vgpu::PhaseFn> phases = {produce, consume};
           vgpu::execute_kernel(spec, config,
                                std::span<const vgpu::PhaseFn>(phases));
         })});
  }

  // Stride-32 shared access: every lane of the warp hits bank 0 — the
  // worst-case 32-way serialization the padding idiom exists to avoid.
  {
    const KernelConfig config{.name = "seeded_stride",
                              .grid = {1, 1, 1},
                              .block = {32, 1, 1},
                              .shared_bytes = 32 * 32 * 4};
    defects.push_back(
        {"stride-32 shared access (single bank)",
         analyze::FindingKind::kBankConflict,
         capture_and_analyze([&spec, &config](std::uint64_t /*seed*/) {
           vgpu::execute_kernel(
               spec, config,
               [](const ThreadCoord& t, LaneCtx& ctx, SharedMem&) {
                 ctx.shared_load(
                     static_cast<std::size_t>(t.thread.x) * 32 * 4, 4);
               });
         })});
  }

  // Column-major global read: consecutive lanes stride by the image pitch,
  // so a warp touches 32 distinct 128-byte segments where packed access
  // needs one.
  {
    const KernelConfig config{.name = "seeded_column",
                              .grid = {1, 1, 1},
                              .block = {32, 1, 1}};
    defects.push_back(
        {"uncoalesced column-major read",
         analyze::FindingKind::kUncoalesced,
         capture_and_analyze([&spec, &config](std::uint64_t /*seed*/) {
           constexpr std::uint64_t kPitch = 512;
           vgpu::execute_kernel(
               spec, config,
               [](const ThreadCoord& t, LaneCtx& ctx, SharedMem&) {
                 ctx.global_load(
                     static_cast<std::uint64_t>(t.thread.x) * kPitch, 4);
               });
         })});
  }

  return defects;
}

bool detected(const SeededDefect& defect) {
  for (const analyze::Finding& f : defect.findings) {
    if (f.kind == defect.expected && !f.suppressed &&
        f.severity != analyze::Severity::kInfo) {
      return true;
    }
  }
  return false;
}

int run_seeded(const std::string& metrics_out) {
  const std::vector<SeededDefect> defects = lint_seeded();

  core::Table table({"seeded defect", "expected finding", "verdict"});
  bool all_caught = true;
  for (const SeededDefect& defect : defects) {
    const bool caught = detected(defect);
    all_caught = all_caught && caught;
    table.add_row({defect.name, analyze::finding_kind_name(defect.expected),
                   caught ? "DETECTED" : "MISSED"});
  }
  table.print(std::cout);

  if (!metrics_out.empty()) {
    obs::Registry registry;
    for (const SeededDefect& defect : defects) {
      for (const analyze::Finding& f : defect.findings) {
        obs::Labels labels = {{"corpus", "seeded"},
                              {"kernel", f.kernel},
                              {"kind", analyze::finding_kind_name(f.kind)},
                              {"severity", analyze::severity_name(f.severity)}};
        registry.counter("analyze.lint.findings", labels).increment();
      }
    }
    registry.write_file(metrics_out);
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }

  std::printf("%zu seeded defects: %s\n", defects.size(),
              all_caught ? "ALL DETECTED (exit 2: findings found)"
                         : "SOME MISSED (exit 4)");
  // Exit-code contract: 2 = the corpus produced findings as planted (the
  // ctest gate asserts exactly this); 4 = the analyzer MISSED a planted
  // defect and the gate must fail.
  return all_caught ? 2 : 4;
}

}  // namespace
}  // namespace fdet

int main(int argc, char** argv) {
  using namespace fdet;
  int width = 96;
  int height = 72;
  bool sweep = true;
  bool seeded = false;
  std::string suppress;
  std::string metrics_out;
  core::Cli cli("fdet_lint");
  cli.flag("width", width, "base frame width");
  cli.flag("height", height, "base frame height");
  cli.flag("sweep", sweep, "also lint an odd-sized frame geometry");
  cli.flag("seeded", seeded,
           "run the seeded-defect corpus instead of the production sweep");
  cli.flag("suppress", suppress,
           "comma-separated suppressions (kind@kernel or kind@*)");
  cli.flag("metrics-out", metrics_out,
           "export analyze.lint.* metrics (.json or .csv)");
  if (!cli.parse(argc, argv)) {
    return 1;
  }
  try {
    return seeded ? run_seeded(metrics_out)
                  : run_production(width, height, sweep, suppress, metrics_out);
  } catch (const core::CheckError& error) {
    std::fprintf(stderr, "fdet_lint: %s\n", error.what());
    return 1;
  }
}
