// fdet_report — consumes the machine-readable artifacts the bench
// binaries emit (BENCH_<artifact>.json run records via --record-out,
// metrics registries via --metrics-out) and turns them into
// EXPERIMENTS.md-style markdown or a CI regression gate.
//
//   fdet_report show <file.json>...        render records/metrics as
//                                          markdown, metric names mapped
//                                          back to the paper's artifacts
//   fdet_report diff <baseline> <current>  statistical comparison
//                                          (obs::compare_runs); exit 2
//                                          when a metric regressed or
//                                          went missing
//   fdet_report selftest                   gate logic self-check used by
//                                          the bench_regression_gate
//                                          ctest target
//   fdet_report profile show <p.json>...   paper-style detection-time
//                                          breakdown of a kernel profile
//                                          (PROFILE_<artifact>.json from
//                                          --profile-out)
//   fdet_report profile diff <base> <cur>  differential profiler: gates
//                                          per-kernel/per-stage cycles,
//                                          conflicts and occupancy with
//                                          the same direction-aware
//                                          verdicts as `diff`; exit 2 on
//                                          regression
//   fdet_report fleet show <f.json>...     per-tenant QoS table plus
//                                          fleet-wide fault/batching
//                                          summary from a fleet chaos
//                                          record (fdet_chaos fleet)
//   fdet_report fleet diff <base> <cur>    regression-gates the fleet
//                                          record (latency/miss growth
//                                          regresses); exit 2
//
// Exit codes: 0 success/gate-clean, 1 usage error, 2 regression gate
// failed, 3 a run-record operand is missing or corrupt (distinct from 2
// so CI can tell "perf regressed" from "baseline file is broken").
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/check.h"
#include "core/cli.h"
#include "core/table.h"
#include "obs/compare.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/runrecord.h"

namespace fdet {
namespace {

/// Maps a metric name back to the paper artifact it reproduces — the
/// same correspondence EXPERIMENTS.md tabulates. Longest matching prefix
/// wins; unknown names map to "—".
const char* paper_artifact(const std::string& name) {
  struct Mapping {
    const char* prefix;
    const char* artifact;
  };
  // Ordered longest-prefix-first within a shared stem.
  static constexpr Mapping kMappings[] = {
      {"vgpu.check.", "kernel verification (racecheck/memcheck)"},
      {"vgpu.makespan_ms", "Table II per-config ms/frame"},
      {"vgpu.multi_makespan_ms", "multi-GPU extension"},
      {"vgpu.sm_utilization", "Fig. 6 occupancy contrast"},
      {"vgpu.kernel_duration_ms", "Fig. 6 occupancy contrast"},
      {"vgpu.branch_efficiency", "Sec. VI-A 98.9% branch efficiency"},
      {"vgpu.simd_efficiency", "Sec. VI-A SIMD utilization"},
      {"vgpu.dram_read_gbps", "Sec. VI-A cascade DRAM reads"},
      {"detect.frame_latency_ms", "Fig. 5 latency distribution"},
      {"detect.rejection_depth", "Fig. 7 per-scale rejection depths"},
      {"detect.cascade_branch_efficiency", "Sec. VI-A 98.9% branch efficiency"},
      {"detect.cascade_simd_efficiency", "Sec. VI-A SIMD utilization"},
      {"detect.busy_share", "Sec. VI-A integral ≈ 20%"},
      {"bench.concurrent_speedup", "Table II aggregate ratios"},
      {"bench.combined_speedup", "Table II aggregate ratios"},
      {"bench.deadline_violations", "Fig. 5 40 ms deadline count"},
      {"bench.stage_rejection_rate", "Fig. 7 stage-1 94.52%"},
      {"train.modeled_iteration_s", "Fig. 8 training scalability"},
      {"train.measured_iteration_s", "Fig. 8 training scalability"},
      {"eval.tpr_at_0fp", "Fig. 9 ROC points"},
      {"eval.max_tpr", "Fig. 9 ROC points"},
      {"integral.", "Sec. III-B integral image study"},
      {"haar.", "Table I feature combinations"},
      {"softcascade.", "soft-cascade extension (future work)"},
      {"slo.", "serving SLO engine (DESIGN.md §8)"},
      {"serve.fleet.", "fleet serving (DESIGN.md §12)"},
      {"serve.", "serving layer (chaos invariants)"},
      {"ingest.", "ingest hardening (DESIGN.md §11)"},
      {"obs.overhead", "observability overhead gate"},
  };
  const Mapping* best = nullptr;
  for (const Mapping& m : kMappings) {
    const std::string_view prefix(m.prefix);
    if (name.compare(0, prefix.size(), prefix) == 0 &&
        (best == nullptr || prefix.size() > std::string_view(best->prefix).size())) {
      best = &m;
    }
  }
  return best != nullptr ? best->artifact : "—";
}

std::string format_number(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

void show_run_record(const obs::RunRecord& record) {
  std::printf("### Run record `%s` (variant `%s`, schema v%d, %d repeat%s",
              record.artifact.c_str(), record.variant.c_str(),
              record.schema_version, record.repeats,
              record.repeats == 1 ? "" : "s");
  const std::string labels = obs::format_labels(record.labels);
  if (!labels.empty()) {
    std::printf(", %s", labels.c_str());
  }
  std::printf(")\n\n");
  core::Table table({"metric", "labels", "median", "MAD", "n", "paper artifact"});
  for (const obs::MetricSeries& series : record.metrics) {
    table.add_row({series.name, obs::format_labels(series.labels),
                   format_number(series.median), format_number(series.mad),
                   std::to_string(series.samples.size()),
                   paper_artifact(series.name)});
  }
  table.print_markdown(std::cout);
  std::printf("\n");
}

/// Per-kernel rollup of the `vgpu.check.*` family (obs/verify.h). Keyed
/// by the kernel label; filled from whichever of the family's metrics are
/// present in the export.
struct KernelVerification {
  double clean = -1.0;  ///< -1 = no vgpu.check.clean gauge seen
  double hazards = 0.0;
  std::string hazard_kinds;
  double shared_accesses = 0.0;
  double carves = 0.0;
  double global_ops = 0.0;
};

void show_verification_table(
    const std::map<std::string, KernelVerification>& verification) {
  std::printf("#### Kernel verification\n\n");
  core::Table table({"kernel", "verdict", "hazards", "shared accesses",
                     "carves", "global ops"});
  for (const auto& [kernel, v] : verification) {
    std::string verdict = "—";
    if (v.clean >= 0.0) {
      verdict = v.clean > 0.0 ? "CLEAN" : "HAZARDS";
    }
    std::string hazards = format_number(v.hazards);
    if (!v.hazard_kinds.empty()) {
      hazards += " (" + v.hazard_kinds + ")";
    }
    table.add_row({kernel, verdict, hazards, format_number(v.shared_accesses),
                   format_number(v.carves), format_number(v.global_ops)});
  }
  table.print_markdown(std::cout);
  std::printf("\n");
}

/// Per-format rollup of the `ingest.frames` / `ingest.rejects` counters the
/// serving layer publishes per decode attempt (serve/service.cpp).
struct IngestRollup {
  double accepted = 0.0;
  double rejected = 0.0;
  std::string reject_kinds;  ///< "kind×n, kind×n" breakdown
};

void show_ingest_table(const std::map<std::string, IngestRollup>& rollup) {
  std::printf("#### Ingest accept/reject by format\n\n");
  core::Table table(
      {"format", "accepted", "rejected", "reject breakdown"});
  for (const auto& [format, v] : rollup) {
    table.add_row({format, format_number(v.accepted),
                   format_number(v.rejected),
                   v.reject_kinds.empty() ? "—" : v.reject_kinds});
  }
  table.print_markdown(std::cout);
  std::printf("\n");
}

void show_metrics_file(const obs::json::Value& doc) {
  std::printf("### Metrics registry export\n\n");
  core::Table table({"metric", "kind", "labels", "value", "paper artifact"});
  std::map<std::string, KernelVerification> verification;
  std::map<std::string, IngestRollup> ingest;
  for (const obs::json::Value& entry : doc.at("metrics").as_array()) {
    const std::string& name = entry.at("name").as_string();
    std::string labels;
    std::string kernel_label;
    std::string kind_label;
    std::string format_label;
    for (const auto& [key, value] : entry.at("labels").as_object()) {
      if (!labels.empty()) {
        labels += ',';
      }
      labels += key + "=" + value.as_string();
      if (key == "kernel") {
        kernel_label = value.as_string();
      } else if (key == "kind") {
        kind_label = value.as_string();
      } else if (key == "format") {
        format_label = value.as_string();
      }
    }
    std::string value;
    if (const obs::json::Value* v = entry.find("value")) {
      value = v->is_null() ? "null" : format_number(v->as_number());
    } else {
      // Histogram: summarize as sum/count, buckets stay in the file.
      value = "sum " + format_number(entry.at("sum").as_number()) + ", n " +
              format_number(entry.at("count").as_number());
    }
    table.add_row({name, entry.at("kind").as_string(), labels, value,
                   paper_artifact(name)});

    if (name.starts_with("vgpu.check.") && !kernel_label.empty()) {
      KernelVerification& v = verification[kernel_label];
      const obs::json::Value* raw = entry.find("value");
      const double number =
          raw != nullptr && !raw->is_null() ? raw->as_number() : 0.0;
      if (name == "vgpu.check.clean") {
        v.clean = number;
      } else if (name == "vgpu.check.hazards") {
        v.hazards += number;
        if (!kind_label.empty()) {
          if (!v.hazard_kinds.empty()) {
            v.hazard_kinds += ", ";
          }
          v.hazard_kinds += kind_label;
        }
      } else if (name == "vgpu.check.shared_accesses") {
        v.shared_accesses = number;
      } else if (name == "vgpu.check.carves") {
        v.carves = number;
      } else if (name == "vgpu.check.global_ops") {
        v.global_ops = number;
      }
    }

    if (!format_label.empty() &&
        (name == "ingest.frames" || name == "ingest.rejects")) {
      IngestRollup& r = ingest[format_label];
      const obs::json::Value* raw = entry.find("value");
      const double number =
          raw != nullptr && !raw->is_null() ? raw->as_number() : 0.0;
      if (name == "ingest.frames") {
        r.accepted = number;
      } else {
        r.rejected += number;
        if (!kind_label.empty()) {
          if (!r.reject_kinds.empty()) {
            r.reject_kinds += ", ";
          }
          r.reject_kinds += kind_label + "×" + format_number(number);
        }
      }
    }
  }
  table.print_markdown(std::cout);
  std::printf("\n");
  if (!verification.empty()) {
    show_verification_table(verification);
  }
  if (!ingest.empty()) {
    show_ingest_table(ingest);
  }
}

int run_show(const std::vector<std::string>& files) {
  if (files.empty()) {
    std::fprintf(stderr, "fdet_report show: no input files\n");
    return 1;
  }
  for (const std::string& path : files) {
    const obs::json::Value doc = obs::json::parse_file(path);
    std::printf("<!-- %s -->\n", path.c_str());
    if (doc.find("schema_version") != nullptr) {
      show_run_record(obs::RunRecord::from_json(doc));
    } else if (doc.find("metrics") != nullptr) {
      show_metrics_file(doc);
    } else {
      std::fprintf(stderr,
                   "%s: neither a run record nor a metrics export\n",
                   path.c_str());
      return 1;
    }
  }
  return 0;
}

/// Per-kernel rollup of the `analyze.lint.*` family (analyze/report.h):
/// the static analyzer's verdicts, captured slot counts and predicted
/// traffic, keyed by target/kernel labels.
struct KernelLintRollup {
  double clean = -1.0;  ///< -1 = no analyze.lint.clean gauge seen
  double shared_slots = 0.0;
  double global_slots = 0.0;
  double predicted_conflicts = 0.0;
  double predicted_transactions = 0.0;
  double findings = 0.0;
  double suppressed = 0.0;
  std::string finding_kinds;
};

void show_lint_table(const std::map<std::string, KernelLintRollup>& rollup) {
  std::printf("#### Static kernel lint (fdet_lint)\n\n");
  core::Table table({"target/kernel", "verdict", "findings", "slots s/g",
                     "pred conflicts", "pred transactions"});
  for (const auto& [kernel, v] : rollup) {
    std::string verdict = "—";
    if (v.clean >= 0.0) {
      verdict = v.clean > 0.0 ? "CLEAN" : "FINDINGS";
    }
    std::string findings = format_number(v.findings);
    if (v.suppressed > 0.0) {
      findings += " (+" + format_number(v.suppressed) + " suppressed)";
    }
    if (!v.finding_kinds.empty()) {
      findings += " [" + v.finding_kinds + "]";
    }
    table.add_row({kernel, verdict, findings,
                   format_number(v.shared_slots) + "/" +
                       format_number(v.global_slots),
                   format_number(v.predicted_conflicts),
                   format_number(v.predicted_transactions)});
  }
  table.print_markdown(std::cout);
  std::printf("\n");
}

/// Renders the static-analyzer view of a metrics export: one row per
/// linted kernel from the analyze.lint.* family fdet_lint publishes with
/// --metrics-out. Returns 1 when a file carries no analyze.lint.* metrics
/// — wrong file, not a clean lint.
int run_lint(const std::vector<std::string>& files) {
  if (files.empty()) {
    std::fprintf(stderr, "fdet_report lint: no input files\n");
    return 1;
  }
  for (const std::string& path : files) {
    const obs::json::Value doc = obs::json::parse_file(path);
    if (doc.find("metrics") == nullptr) {
      std::fprintf(stderr, "%s: not a metrics export\n", path.c_str());
      return 1;
    }
    std::printf("<!-- %s -->\n", path.c_str());
    std::map<std::string, KernelLintRollup> rollup;
    for (const obs::json::Value& entry : doc.at("metrics").as_array()) {
      const std::string& name = entry.at("name").as_string();
      if (!name.starts_with("analyze.lint.")) {
        continue;
      }
      std::string target_label;
      std::string kernel_label;
      std::string kind_label;
      std::string severity_label;
      for (const auto& [key, value] : entry.at("labels").as_object()) {
        if (key == "target") {
          target_label = value.as_string();
        } else if (key == "kernel") {
          kernel_label = value.as_string();
        } else if (key == "kind") {
          kind_label = value.as_string();
        } else if (key == "severity") {
          severity_label = value.as_string();
        }
      }
      if (kernel_label.empty()) {
        continue;
      }
      const std::string key = target_label.empty()
                                  ? kernel_label
                                  : target_label + "/" + kernel_label;
      KernelLintRollup& v = rollup[key];
      const obs::json::Value* raw = entry.find("value");
      const double number =
          raw != nullptr && !raw->is_null() ? raw->as_number() : 0.0;
      if (name == "analyze.lint.clean") {
        v.clean = number;
      } else if (name == "analyze.lint.shared_slots") {
        v.shared_slots += number;
      } else if (name == "analyze.lint.global_slots") {
        v.global_slots += number;
      } else if (name == "analyze.lint.predicted_bank_conflicts") {
        v.predicted_conflicts += number;
      } else if (name == "analyze.lint.predicted_global_transactions") {
        v.predicted_transactions += number;
      } else if (name == "analyze.lint.findings") {
        if (severity_label == "suppressed") {
          v.suppressed += number;
        } else {
          v.findings += number;
        }
        if (!kind_label.empty() &&
            v.finding_kinds.find(kind_label) == std::string::npos) {
          if (!v.finding_kinds.empty()) {
            v.finding_kinds += ", ";
          }
          v.finding_kinds += kind_label;
        }
      }
    }
    if (rollup.empty()) {
      std::fprintf(stderr, "%s: no analyze.lint.* metrics in export\n",
                   path.c_str());
      return 1;
    }
    show_lint_table(rollup);
  }
  return 0;
}

/// Renders the serving-SLO view of a run record: percentiles, miss
/// ratio, burn rates and per-stage latencies from the `slo.*` series the
/// SLO engine publishes (obs::SloEngine::publish). Returns 1 when the
/// record carries no slo.* series — wrong file, not an empty SLO.
int run_slo(const std::vector<std::string>& files) {
  if (files.empty()) {
    std::fprintf(stderr, "fdet_report slo: no input files\n");
    return 1;
  }
  for (const std::string& path : files) {
    obs::RunRecord record;
    try {
      record = obs::RunRecord::load_file(path);
    } catch (const core::CheckError& error) {
      std::fprintf(stderr, "fdet_report: cannot load run record: %s\n",
                   error.what());
      return 3;
    }
    std::printf("### Serving SLO — `%s` (variant `%s`, %d repeat%s)\n\n",
                record.artifact.c_str(), record.variant.c_str(),
                record.repeats, record.repeats == 1 ? "" : "s");
    const auto find = [&record](const char* name,
                                const obs::Labels& labels =
                                    {}) -> const obs::MetricSeries* {
      return record.find(name, labels);
    };
    const obs::MetricSeries* deadline = find("slo.deadline_ms");
    const obs::MetricSeries* frames = find("slo.frames");
    if (frames == nullptr) {
      std::fprintf(stderr,
                   "%s: no slo.* series — not a serving SLO record "
                   "(generate one with bench_serving_slo)\n",
                   path.c_str());
      return 1;
    }
    if (deadline != nullptr) {
      std::printf("deadline budget: %s ms, %s frames observed\n\n",
                  format_number(deadline->median).c_str(),
                  format_number(frames->median).c_str());
    }

    core::Table table({"quantity", "labels", "median", "MAD"});
    // Stable presentation order: percentiles, then ratios/burn, then
    // stage and queue series, then anything else slo.*.
    static constexpr const char* kFirst[] = {
        "slo.latency_p50_ms",  "slo.latency_p95_ms", "slo.latency_p99_ms",
        "slo.latency_p999_ms", "slo.deadline_miss_ratio",
        "slo.window_miss_ratio", "slo.burn_rate"};
    const auto add_series = [&table](const obs::MetricSeries& series) {
      table.add_row({series.name, obs::format_labels(series.labels),
                     format_number(series.median),
                     format_number(series.mad)});
    };
    for (const char* name : kFirst) {
      for (const obs::MetricSeries& series : record.metrics) {
        if (series.name == name) {
          add_series(series);
        }
      }
    }
    for (const obs::MetricSeries& series : record.metrics) {
      const bool listed =
          std::find_if(std::begin(kFirst), std::end(kFirst),
                       [&series](const char* name) {
                         return series.name == name;
                       }) != std::end(kFirst);
      if (series.name.starts_with("slo.") && !listed) {
        add_series(series);
      }
    }
    table.print_markdown(std::cout);
    std::printf("\n");
  }
  return 0;
}

/// Summarizes a flight-recorder anomaly dump: the root anomaly header
/// (which frame, which causal chain, which trace id) plus per-kind event
/// counts — the quick look before loading the dump in ui.perfetto.dev.
int run_flight(const std::vector<std::string>& files) {
  if (files.empty()) {
    std::fprintf(stderr, "fdet_report flight: no input files\n");
    return 1;
  }
  for (const std::string& path : files) {
    const obs::json::Value doc = obs::json::parse_file(path);
    const obs::json::Value* anomaly = doc.find("anomaly");
    if (anomaly == nullptr || doc.find("traceEvents") == nullptr) {
      std::fprintf(stderr, "%s: not a flight-recorder dump (no anomaly "
                           "header)\n",
                   path.c_str());
      return 1;
    }
    std::printf("### Flight dump `%s`\n\n", path.c_str());
    std::printf("- anomaly: **%s** at frame %s\n",
                anomaly->at("kind").as_string().c_str(),
                format_number(anomaly->at("frame").as_number()).c_str());
    std::printf("- cause: `%s`\n", anomaly->at("cause").as_string().c_str());
    if (const obs::json::Value* trace_id = anomaly->find("trace_id")) {
      std::printf("- trace id: `%s`\n", trace_id->as_string().c_str());
    }

    std::map<std::string, int> kinds;
    double first_us = 0.0;
    double last_us = 0.0;
    bool any = false;
    for (const obs::json::Value& event : doc.at("traceEvents").as_array()) {
      if (event.at("ph").as_string() == "M") {
        continue;
      }
      std::string kind = "?";
      if (const obs::json::Value* args = event.find("args")) {
        if (const obs::json::Value* k = args->find("kind")) {
          kind = k->as_string();
        }
      }
      ++kinds[kind];
      const double ts = event.at("ts").as_number();
      double end = ts;
      if (const obs::json::Value* dur = event.find("dur")) {
        end += dur->as_number();
      }
      if (!any) {
        first_us = ts;
        last_us = end;
        any = true;
      } else {
        first_us = std::min(first_us, ts);
        last_us = std::max(last_us, end);
      }
    }
    std::printf("- window: %s ms of virtual time, %s events\n\n",
                format_number((last_us - first_us) / 1e3).c_str(),
                format_number(anomaly->at("events").as_number()).c_str());
    core::Table table({"event kind", "count"});
    for (const auto& [kind, count] : kinds) {
      table.add_row({kind, std::to_string(count)});
    }
    table.print_markdown(std::cout);
    std::printf("\n");
  }
  return 0;
}

/// Markdown verdict table plus explicit REGRESSED/MISSING lines (so CI
/// logs name the offending metric without markdown rendering), then the
/// gate exit code. Shared by `diff` and `selftest`.
int run_diff(const obs::RunRecord& baseline, const obs::RunRecord& current,
             const obs::CompareOptions& options, bool show_unchanged) {
  const obs::CompareReport report =
      obs::compare_runs(baseline, current, options);

  std::printf("### `%s` (%s) vs baseline (%d vs %d repeats)\n\n",
              current.artifact.c_str(), current.variant.c_str(),
              current.repeats, baseline.repeats);
  core::Table table(
      {"verdict", "metric", "labels", "baseline", "current", "Δ%"});
  for (const obs::MetricVerdict& v : report.verdicts) {
    if (!show_unchanged && v.verdict == obs::Verdict::kUnchanged) {
      continue;
    }
    table.add_row({obs::verdict_name(v.verdict), v.name,
                   obs::format_labels(v.labels),
                   format_number(v.baseline_median),
                   format_number(v.current_median),
                   format_number(v.relative_change * 100.0)});
  }
  table.print_markdown(std::cout);
  std::printf("\n");
  for (const obs::MetricVerdict& v : report.verdicts) {
    if (v.verdict == obs::Verdict::kRegressed ||
        v.verdict == obs::Verdict::kMissing) {
      std::printf("%s\n", obs::describe(v).c_str());
    }
  }
  std::printf("verdicts: %d regressed, %d missing, %d improved, %d new, "
              "%d unchanged — %s\n",
              report.regressed, report.missing, report.improved, report.added,
              report.unchanged, report.ok() ? "OK" : "GATE FAILED");
  return report.ok() ? 0 : 2;
}

/// `fdet_report profile show|diff`: the kernel-profiler views.
/// `show` renders the paper-style detection-time breakdown
/// (obs::render_profile_text) plus the per-metric mapping table; `diff`
/// projects both profiles into run records (ProfileRecord::to_run_record)
/// and reuses the direction-aware gate, so cycle/conflict/transaction
/// growth and occupancy loss regress while improvements pass.
int run_profile(const std::vector<std::string>& operands,
                const obs::CompareOptions& options, bool show_unchanged) {
  if (operands.empty()) {
    std::fprintf(stderr, "fdet_report profile: missing subcommand "
                         "(show|diff)\n");
    return 1;
  }
  const std::string& sub = operands[0];
  const std::vector<std::string> files(operands.begin() + 1, operands.end());
  if (sub == "show") {
    if (files.empty()) {
      std::fprintf(stderr, "fdet_report profile show: no input files\n");
      return 1;
    }
    for (const std::string& path : files) {
      obs::ProfileRecord record;
      try {
        record = obs::ProfileRecord::load_file(path);
      } catch (const core::CheckError& error) {
        std::fprintf(stderr, "fdet_report: cannot load profile record: %s\n",
                     error.what());
        return 3;
      }
      std::printf("<!-- %s -->\n```\n%s```\n", path.c_str(),
                  obs::render_profile_text(record).c_str());
    }
    return 0;
  }
  if (sub == "diff") {
    if (files.size() != 2) {
      std::fprintf(stderr, "fdet_report profile diff: expected "
                           "<baseline.json> <current.json>\n");
      return 1;
    }
    obs::ProfileRecord baseline;
    obs::ProfileRecord current;
    try {
      baseline = obs::ProfileRecord::load_file(files[0]);
      current = obs::ProfileRecord::load_file(files[1]);
    } catch (const core::CheckError& error) {
      std::fprintf(stderr, "fdet_report: cannot load profile record: %s\n",
                   error.what());
      return 3;
    }
    return run_diff(baseline.to_run_record(), current.to_run_record(),
                    options, show_unchanged);
  }
  std::fprintf(stderr, "fdet_report profile: unknown subcommand '%s'\n",
               sub.c_str());
  return 1;
}

/// Per-tenant rollup of the `serve.fleet.*` family a fleet chaos run
/// records (serve::FleetScheduler::run): admission, deadline and
/// failover counters plus the latency percentiles, keyed by the tenant
/// label.
struct FleetTenantRollup {
  std::string cls;
  double frames = 0.0;
  double rejects = 0.0;
  double misses = 0.0;
  double failovers = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_shed = 0.0;
};

/// `fdet_report fleet show|diff`: the fleet-serving views over
/// BENCH_fleet_chaos.json. `show` renders the per-tenant QoS table plus
/// the fleet-wide fault/batching summary; `diff` reuses the
/// direction-aware regression gate (latency/miss growth regresses,
/// exit 2) — the fleet_record_gate ctest target runs it against the
/// committed baseline.
int run_fleet(const std::vector<std::string>& operands,
              const obs::CompareOptions& options, bool show_unchanged) {
  if (operands.empty()) {
    std::fprintf(stderr, "fdet_report fleet: missing subcommand "
                         "(show|diff)\n");
    return 1;
  }
  const std::string& sub = operands[0];
  const std::vector<std::string> files(operands.begin() + 1, operands.end());
  if (sub == "diff") {
    if (files.size() != 2) {
      std::fprintf(stderr, "fdet_report fleet diff: expected "
                           "<baseline.json> <current.json>\n");
      return 1;
    }
    obs::RunRecord baseline;
    obs::RunRecord current;
    try {
      baseline = obs::RunRecord::load_file(files[0]);
      current = obs::RunRecord::load_file(files[1]);
    } catch (const core::CheckError& error) {
      std::fprintf(stderr, "fdet_report: cannot load run record: %s\n",
                   error.what());
      return 3;
    }
    return run_diff(baseline, current, options, show_unchanged);
  }
  if (sub != "show") {
    std::fprintf(stderr, "fdet_report fleet: unknown subcommand '%s'\n",
                 sub.c_str());
    return 1;
  }
  if (files.empty()) {
    std::fprintf(stderr, "fdet_report fleet show: no input files\n");
    return 1;
  }
  for (const std::string& path : files) {
    obs::RunRecord record;
    try {
      record = obs::RunRecord::load_file(path);
    } catch (const core::CheckError& error) {
      std::fprintf(stderr, "fdet_report: cannot load run record: %s\n",
                   error.what());
      return 3;
    }
    std::map<std::string, FleetTenantRollup> tenants;
    std::map<std::string, double> fleet_wide;
    std::map<std::string, double> device_state;
    for (const obs::MetricSeries& series : record.metrics) {
      if (!series.name.starts_with("serve.fleet.")) {
        continue;
      }
      std::string tenant_label;
      std::string class_label;
      std::string device_label;
      for (const auto& [key, value] : series.labels) {
        if (key == "tenant") {
          tenant_label = value;
        } else if (key == "class") {
          class_label = value;
        } else if (key == "device") {
          device_label = value;
        }
      }
      if (!tenant_label.empty()) {
        FleetTenantRollup& t = tenants[tenant_label];
        t.cls = class_label;
        if (series.name == "serve.fleet.frames") {
          t.frames = series.median;
        } else if (series.name == "serve.fleet.admission_rejects") {
          t.rejects = series.median;
        } else if (series.name == "serve.fleet.deadline_misses") {
          t.misses = series.median;
        } else if (series.name == "serve.fleet.failovers") {
          t.failovers = series.median;
        } else if (series.name == "serve.fleet.latency_p50_ms") {
          t.p50_ms = series.median;
        } else if (series.name == "serve.fleet.latency_p99_ms") {
          t.p99_ms = series.median;
        } else if (series.name == "serve.fleet.max_shed_level") {
          t.max_shed = series.median;
        }
      } else if (series.name == "serve.fleet.device.state") {
        device_state[device_label] = series.median;
      } else {
        fleet_wide[series.name.substr(std::string("serve.fleet.").size())] =
            series.median;
      }
    }
    if (tenants.empty()) {
      std::fprintf(stderr,
                   "%s: no serve.fleet.* series — not a fleet chaos record "
                   "(generate one with `fdet_chaos fleet --record-out=...`)\n",
                   path.c_str());
      return 1;
    }
    std::printf("### Fleet serving — `%s` (variant `%s`)\n\n",
                record.artifact.c_str(), record.variant.c_str());
    core::Table table({"tenant", "class", "frames", "rejected", "misses",
                       "failovers", "p50 ms", "p99 ms", "max shed"});
    for (const auto& [tenant, t] : tenants) {
      table.add_row({tenant, t.cls, format_number(t.frames),
                     format_number(t.rejects), format_number(t.misses),
                     format_number(t.failovers), format_number(t.p50_ms),
                     format_number(t.p99_ms), format_number(t.max_shed)});
    }
    table.print_markdown(std::cout);
    std::printf("\n");
    if (!fleet_wide.empty()) {
      core::Table summary({"fleet-wide", "value"});
      for (const auto& [name, value] : fleet_wide) {
        summary.add_row({name, format_number(value)});
      }
      summary.print_markdown(std::cout);
      std::printf("\n");
    }
    if (!device_state.empty()) {
      // DeviceState enum order: 0 healthy, 1 lost, 2 probation.
      static constexpr const char* kStates[] = {"healthy", "lost",
                                                "probation"};
      core::Table devices({"device", "final state"});
      for (const auto& [dev, state] : device_state) {
        const int s = static_cast<int>(state);
        devices.add_row({dev, s >= 0 && s <= 2 ? kStates[s]
                                               : format_number(state)});
      }
      devices.print_markdown(std::cout);
      std::printf("\n");
    }
  }
  return 0;
}

/// Synthetic fig5-shaped record for the gate self-check.
obs::RunRecord synthetic_record() {
  obs::RunRecord record;
  record.artifact = "selftest";
  record.repeats = 3;
  const auto series = [](std::string name, std::string kind,
                         obs::Labels labels, std::vector<double> samples) {
    obs::MetricSeries s;
    s.name = std::move(name);
    s.kind = std::move(kind);
    s.labels = std::move(labels);
    s.samples = std::move(samples);
    s.median = obs::median_of(s.samples);
    s.mad = obs::mad_of(s.samples, s.median);
    return s;
  };
  record.metrics = {
      series("detect.frames", "counter", {{"mode", "concurrent"}}, {36, 36, 36}),
      series("vgpu.branch_efficiency", "gauge", {{"mode", "concurrent"}},
             {0.982, 0.982, 0.981}),
      series("vgpu.makespan_ms", "gauge", {{"mode", "concurrent"}},
             {4.00, 4.01, 3.99}),
  };
  return record;
}

int run_selftest() {
  const obs::RunRecord baseline = synthetic_record();

  // Round-trip through the serializer: the gate must behave identically
  // on a record that went to disk and back.
  const obs::RunRecord reparsed = obs::RunRecord::parse(baseline.dump());

  obs::RunRecord regressed = synthetic_record();
  for (obs::MetricSeries& series : regressed.metrics) {
    if (series.name == "vgpu.makespan_ms") {
      for (double& sample : series.samples) {
        sample *= 1.20;  // the injected 20% makespan regression
      }
      series.median = obs::median_of(series.samples);
      series.mad = obs::mad_of(series.samples, series.median);
    }
  }

  std::printf("--- selftest: identical records ---\n");
  const int clean = run_diff(baseline, reparsed, {}, true);
  std::printf("\n--- selftest: injected +20%% vgpu.makespan_ms ---\n");
  const int gated = run_diff(baseline, regressed, {}, false);

  const obs::CompareReport report = obs::compare_runs(baseline, regressed, {});
  const bool names_metric =
      !report.verdicts.empty() &&
      report.verdicts.front().verdict == obs::Verdict::kRegressed &&
      report.verdicts.front().name == "vgpu.makespan_ms";
  if (clean != 0 || gated == 0 || !names_metric) {
    std::fprintf(stderr,
                 "selftest FAILED: clean=%d gated=%d names_metric=%d\n",
                 clean, gated, names_metric);
    return 1;
  }
  std::printf("\nselftest ok: identical -> exit 0, regression -> exit %d "
              "naming vgpu.makespan_ms\n",
              gated);
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: fdet_report [flags] show <file.json>...\n"
      "       fdet_report [flags] diff <baseline.json> <current.json>\n"
      "       fdet_report lint <LINT_metrics.json>...\n"
      "       fdet_report slo <BENCH_serving_slo.json>...\n"
      "       fdet_report flight <flight_dump.json>...\n"
      "       fdet_report profile show <PROFILE_x.json>...\n"
      "       fdet_report profile diff <baseline.json> <current.json>\n"
      "       fdet_report fleet show <BENCH_fleet_chaos.json>...\n"
      "       fdet_report fleet diff <baseline.json> <current.json>\n"
      "       fdet_report selftest\n"
      "flags: --threshold=R --mad-mult=M --ignore=prefix1,prefix2\n"
      "       --show-unchanged\n");
  return 1;
}

}  // namespace
}  // namespace fdet

int main(int argc, char** argv) {
  using namespace fdet;
  double threshold = obs::CompareOptions{}.relative_threshold;
  double mad_mult = obs::CompareOptions{}.mad_multiplier;
  std::string ignore = "bench.wall_seconds,host_wall";
  bool show_unchanged = false;
  core::Cli cli("fdet_report");
  cli.flag("threshold", threshold, "relative shift tolerated before a verdict");
  cli.flag("mad-mult", mad_mult, "noise band in multiples of the repeat MAD");
  cli.flag("ignore", ignore, "comma-separated metric-name substrings to skip");
  cli.flag("show-unchanged", show_unchanged, "list unchanged metrics in diffs");
  std::vector<std::string> args;
  if (!cli.parse_known(argc, argv, args)) {
    return 1;
  }
  // args[0] is argv[0]; the subcommand and its operands follow.
  if (args.size() < 2) {
    return usage();
  }
  const std::string command = args[1];
  const std::vector<std::string> operands(args.begin() + 2, args.end());

  obs::CompareOptions options;
  options.relative_threshold = threshold;
  options.mad_multiplier = mad_mult;
  options.ignore.clear();
  std::istringstream prefixes(ignore);
  for (std::string prefix; std::getline(prefixes, prefix, ',');) {
    if (!prefix.empty()) {
      options.ignore.push_back(prefix);
    }
  }

  try {
    if (command == "show") {
      return run_show(operands);
    }
    if (command == "diff") {
      if (operands.size() != 2) {
        return usage();
      }
      obs::RunRecord baseline;
      obs::RunRecord current;
      try {
        baseline = obs::RunRecord::load_file(operands[0]);
        current = obs::RunRecord::load_file(operands[1]);
      } catch (const core::CheckError& error) {
        std::fprintf(stderr, "fdet_report: cannot load run record: %s\n",
                     error.what());
        return 3;
      }
      return run_diff(baseline, current, options, show_unchanged);
    }
    if (command == "lint") {
      return run_lint(operands);
    }
    if (command == "slo") {
      return run_slo(operands);
    }
    if (command == "profile") {
      return run_profile(operands, options, show_unchanged);
    }
    if (command == "fleet") {
      return run_fleet(operands, options, show_unchanged);
    }
    if (command == "flight") {
      return run_flight(operands);
    }
    if (command == "selftest") {
      return run_selftest();
    }
  } catch (const core::CheckError& error) {
    std::fprintf(stderr, "fdet_report: %s\n", error.what());
    return 1;
  }
  return usage();
}
