// Chaos soak for the streaming serving layer (serve::StreamingService).
//
// Trains a small cascade in-process, streams a SyntheticTrailer through the
// service twice — once fault-free, once under a seeded FaultPlan — and
// asserts the serving-layer invariants:
//
//   1. the service never crashes: every frame yields a ServedFrame record;
//   2. the fault-free run is healthy (no failures, no drops, level 0);
//   3. the faulted run injects the plan (it actually fired);
//   4. consecutive unserved frames (failed or dropped) stay bounded;
//   5. after each deterministic fault burst the service recovers: a frame
//      is served clean at degradation level 0 before the next burst, and
//      the run ends back at level 0;
//   6. clean frames — served at level 0 in both runs and not targeted by
//      the plan — produce detections identical to the fault-free run;
//   7. with --dump-dir set (default), every injected deterministic fault's
//      frame yields a flight-recorder dump whose causal chain names the
//      fault kind, every provoked anomaly class is covered, and each dump
//      on disk is a parseable Perfetto document.
//
// Exit codes: 0 all invariants hold, 1 usage error, 2 invariant violated
// (or the harness itself crashed, which is invariant 1 failing).
//
// The default plan exercises every fault kind: transient decode failures,
// a decode burst long enough to trip the circuit breaker, luma corruption,
// transient launch faults (whose backoff blows the deadline and walks the
// degradation ladder), the two hard overflow kinds, and a malformed-
// bitstream fault (typed ingest rejection, quarantined without retry).
//
// `fdet_chaos fleet` is the fleet-scale soak (serve::FleetScheduler,
// DESIGN.md §12): 200+ streams in a gold/silver/best-effort tenant mix
// over a virtual device fleet, replayed twice — once clean, once under a
// seeded device-loss/hang/slow schedule — asserting the fleet invariants:
//
//   F1. gold protection: no gold-tenant deadline violation on healthy
//       capacity while best-effort still has shedding room (a frame held
//       hostage by a lost/hanging device or a slowed dispatch misses on
//       physics, not policy, and is excused as failed_over /
//       fault_injected);
//   F2. terminal status: every admitted frame of both runs settles into
//       a terminal FrameStatus — nothing stranded in the event queue;
//   F3. failover identity: frames re-dispatched after losing their
//       device produce byte-identical detections to the unfaulted twin
//       (compared at equal degradation level), and are served solo —
//       a batch never crosses the fault-domain boundary;
//   F4. shed ordering: the deepest ladder rung reached is monotone in
//       QoS class (best-effort >= silver >= gold), and admission rejects
//       are identical across the twin runs (admission is arrival-time
//       deterministic, untouched by device faults).
//
// The fleet run calibrates itself: stream rate is derived from a
// single-frame service probe at a target utilization, the deadline from
// a clean fleet probe run at an unbounded budget. Everything downstream
// of the seeds is virtual-time deterministic, so the emitted
// BENCH_fleet_chaos.json run record is byte-stable and record-gated.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "core/cli.h"
#include "facegen/dataset.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/runrecord.h"
#include "obs/trace.h"
#include "serve/fleet.h"
#include "serve/service.h"
#include "train/boost.h"
#include "video/decoder.h"

namespace fdet {
namespace {

haar::Cascade chaos_cascade() {
  const auto set = facegen::build_training_set(200, 30, 64, 31337);
  train::TrainOptions options;
  options.stage_sizes = {6, 10, 14, 18};
  options.feature_pool = 300;
  options.negatives_per_stage = 250;
  options.stage_hit_target = 0.99;
  options.seed = 13;
  return train::train_cascade(set, options, "chaos").cascade;
}

struct Violation {
  std::string what;
};

void check(bool ok, const std::string& what, std::vector<Violation>& out) {
  if (!ok) {
    out.push_back({what});
    std::fprintf(stderr, "INVARIANT VIOLATED: %s\n", what.c_str());
  }
}

/// Deterministic fault bursts, clustered: targeted frames closer than 3
/// apart count as one burst (e.g. the breaker-tripping decode run).
std::vector<std::pair<int, int>> burst_clusters(const std::vector<int>& t) {
  std::vector<std::pair<int, int>> clusters;
  for (const int frame : t) {
    if (!clusters.empty() && frame - clusters.back().second <= 3) {
      clusters.back().second = frame;
    } else {
      clusters.emplace_back(frame, frame);
    }
  }
  return clusters;
}

int run_chaos(int argc, char** argv) {
  int frames = 72;
  int width = 320;
  int height = 240;
  double fps = 24.0;
  double deadline_ms = 0.0;  // 0 = auto from the fault-free run
  std::string faults =
      "decode@6x2,corrupt@12,launch@18x2,const@26,shared@34,"
      "decode@44x3,decode@45x3,decode@46x3,bitstream@64";
  double seed = 20120926;
  int max_unserved = 8;
  std::string metrics_out;
  std::string trace_out;
  std::string dump_dir = "chaos_dumps";
  bool verbose = false;

  core::Cli cli("fdet_chaos");
  cli.flag("frames", frames, "frames to stream through the service");
  cli.flag("width", width, "trailer width");
  cli.flag("height", height, "trailer height");
  cli.flag("fps", fps, "stream arrival rate");
  cli.flag("deadline-ms", deadline_ms,
           "per-frame latency budget (0 = derive from the fault-free run)");
  cli.flag("faults", faults, "fault plan spec (see serve/faults.h)");
  cli.flag("seed", seed, "fault-plan + jitter seed");
  cli.flag("max-unserved", max_unserved,
           "invariant: longest tolerated failed/dropped streak");
  cli.flag("metrics-out", metrics_out, "write serve.* metrics JSON/CSV here");
  cli.flag("trace-out", trace_out, "write the chaos-run Chrome trace here");
  cli.flag("dump-dir", dump_dir,
           "flight-recorder anomaly dump directory (\"\" disables dumps "
           "and invariant 7)");
  cli.flag("verbose", verbose, "per-frame log of the faulted run");
  if (!cli.parse(argc, argv)) {
    return 1;
  }

  const auto plan =
      serve::FaultPlan::parse(faults, static_cast<std::uint64_t>(seed));
  std::printf("fault plan: %s\n", plan.describe().c_str());

  video::TrailerSpec spec;
  spec.title = "chaos";
  spec.width = width;
  spec.height = height;
  spec.frames = frames;
  spec.shot_frames = 12;
  spec.face_density = 1.5;
  spec.seed = 7;
  const video::SyntheticTrailer trailer(spec);
  const video::MockH264Decoder decoder(trailer);
  const vgpu::DeviceSpec device;
  const haar::Cascade cascade = chaos_cascade();

  serve::ServiceOptions options;
  options.fps = fps;
  options.seed = static_cast<std::uint64_t>(seed);

  // Fault-free calibration run: find the healthy latency envelope, then
  // place the deadline above it (so the clean run sits at level 0) but
  // low enough that retry backoff pushes a faulted frame over it. The
  // deadline must also clear the *serial* envelope, or a breaker-forced
  // serial fallback could never recover: every serial frame would miss the
  // deadline and pin the ladder at its deepest rung.
  {
    serve::StreamingService probe(device, cascade, {}, options);
    const serve::ServiceReport calib = probe.run(decoder, frames);
    double max_ms = 0.0;
    for (const auto& frame : calib.frames) {
      max_ms = std::max(max_ms, frame.latency_ms);
    }
    detect::PipelineOptions serial_opts;
    serial_opts.mode = vgpu::ExecMode::kSerial;
    const detect::Pipeline serial_probe(device, cascade, serial_opts);
    const double serial_ms =
        serial_probe.process(decoder.decode(0).frame.luma()).detect_ms +
        decoder.decode_latency_ms(0);
    if (deadline_ms <= 0.0) {
      deadline_ms = std::max(2.0 * max_ms, serial_ms / 0.6);
    }
    // Retry backoff must overshoot the budget: one retry's worth of
    // backoff on top of a healthy frame has to cross the deadline.
    options.retry.base_backoff_ms = deadline_ms;
    options.retry.max_backoff_ms = 4.0 * deadline_ms;
    std::printf(
        "calibration: healthy max %.3f ms, serial %.3f ms -> deadline %.3f ms\n",
        max_ms, serial_ms, deadline_ms);
  }
  options.deadline_ms = deadline_ms;
  // Dumps stay off for the calibration probe above; only the real runs
  // carry a flight-recorder dump directory.
  options.obs.dump_dir = dump_dir;

  obs::Registry registry;
  obs::TraceSession trace;
  trace.install();

  serve::StreamingService service(device, cascade, {}, options, &registry);
  const serve::ServiceReport clean = service.run(decoder, frames);
  const serve::ServiceReport chaos = service.run(decoder, frames, &plan);

  std::printf(
      "fault-free: ok=%d degraded=%d dropped=%d failed=%d misses=%d\n",
      clean.ok, clean.degraded, clean.dropped, clean.failed,
      clean.deadline_misses);
  std::printf(
      "chaos:      ok=%d degraded=%d dropped=%d failed=%d misses=%d "
      "retries=%d faults=%d trips=%d shifts=%d max_unserved=%d level=%d\n",
      chaos.ok, chaos.degraded, chaos.dropped, chaos.failed,
      chaos.deadline_misses, chaos.retries, chaos.faults_injected,
      chaos.breaker_trips, chaos.degradation_shifts,
      chaos.max_consecutive_unserved, chaos.final_degradation_level);
  if (verbose) {
    for (const auto& frame : chaos.frames) {
      std::printf(
          "  frame %3d %-8s level=%d retries=%d latency=%7.3f ms dets=%zu%s\n",
          frame.index, serve::frame_status_name(frame.status),
          frame.degradation_level, frame.retries, frame.latency_ms,
          frame.detections.size(),
          frame.error ? ("  [" + frame.error->stage + "/" +
                         serve::error_class_name(frame.error->cls) + ": " +
                         frame.error->message + "]")
                            .c_str()
                      : "");
    }
  }

  std::vector<Violation> violations;
  const auto expect = [&](bool ok, const std::string& what) {
    check(ok, what, violations);
  };

  // 1. Every frame produced a record, in order.
  expect(static_cast<int>(clean.frames.size()) == frames &&
             static_cast<int>(chaos.frames.size()) == frames,
         "every frame must yield a ServedFrame record");

  // 2. The fault-free run is healthy.
  expect(clean.failed == 0 && clean.dropped == 0 &&
             clean.final_degradation_level == 0 && clean.faults_injected == 0,
         "fault-free run must serve every frame at level 0");

  // 3. The plan actually fired.
  expect(plan.empty() || chaos.faults_injected > 0,
         "fault plan injected nothing");

  // 4. Bounded consecutive unserved frames.
  expect(chaos.max_consecutive_unserved <= max_unserved,
         "unserved streak " + std::to_string(chaos.max_consecutive_unserved) +
             " exceeds bound " + std::to_string(max_unserved));

  // 5. Recovery after each deterministic burst, and at end of stream.
  expect(chaos.final_degradation_level == 0,
         "service must end back at degradation level 0, ended at level " +
             std::to_string(chaos.final_degradation_level));
  for (const auto& [first, last] : burst_clusters(plan.targeted_frames())) {
    bool recovered = false;
    for (int i = last + 1; i < frames && !recovered; ++i) {
      if (plan.targets_frame(i)) {
        break;  // next burst started first: judged by its own window
      }
      const serve::ServedFrame& frame = chaos.frames[i];
      recovered = frame.status == serve::FrameStatus::kOk &&
                  frame.degradation_level == 0;
    }
    expect(recovered, "no clean level-0 frame after fault burst [" +
                          std::to_string(first) + ", " +
                          std::to_string(last) + "]");
  }

  // 6. Clean frames detect identically to the fault-free run.
  int compared = 0;
  for (int i = 0; i < frames && i < static_cast<int>(chaos.frames.size());
       ++i) {
    const serve::ServedFrame& a = clean.frames[i];
    const serve::ServedFrame& b = chaos.frames[i];
    if (plan.targets_frame(i) || a.status != serve::FrameStatus::kOk ||
        b.status != serve::FrameStatus::kOk || b.degradation_level != 0) {
      continue;
    }
    ++compared;
    bool same = a.detections.size() == b.detections.size();
    for (std::size_t d = 0; same && d < a.detections.size(); ++d) {
      same = a.detections[d].box == b.detections[d].box &&
             a.detections[d].neighbors == b.detections[d].neighbors;
    }
    expect(same, "clean frame " + std::to_string(i) +
                     " detections diverge from the fault-free run");
  }
  expect(compared > 0, "no clean frames were comparable");
  std::printf("clean-frame comparison: %d frames identical\n", compared);

  // 7. Causal flight dumps: the fault-free run writes none; every
  //    injected deterministic fault's frame produces a dump whose causal
  //    chain names the fault kind; every anomaly class the default plan
  //    provokes is covered; and each dump file on disk is a parseable
  //    Perfetto document whose anomaly header matches the served frame.
  if (!dump_dir.empty()) {
    expect(clean.dumps.empty(),
           "fault-free run wrote " + std::to_string(clean.dumps.size()) +
               " flight dump(s); expected none");
    for (const serve::FaultSpec& fault : plan.specs()) {
      if (fault.frame < 0 || fault.frame >= frames) {
        continue;  // probabilistic specs are judged by the class check
      }
      if (!chaos.frames[fault.frame].fault_injected) {
        continue;  // breaker fail-fast: the faulted stage never ran
      }
      const std::string token =
          std::string("fault:") + serve::fault_kind_name(fault.kind);
      bool named = false;
      for (const serve::AnomalyDump& dump : chaos.dumps) {
        named = named || (dump.frame == fault.frame &&
                          dump.cause.find(token) != std::string::npos);
      }
      expect(named, "frame " + std::to_string(fault.frame) + " injected " +
                        token + " but no flight dump names it");
    }
    std::set<std::string> classes;
    for (const serve::AnomalyDump& dump : chaos.dumps) {
      classes.insert(obs::anomaly_name(dump.kind));
      try {
        const obs::json::Value doc = obs::json::parse_file(dump.path);
        const obs::json::Value& anomaly = doc.at("anomaly");
        expect(static_cast<int>(anomaly.at("frame").as_number()) ==
                   dump.frame,
               dump.path + ": anomaly header frame mismatch");
        expect(anomaly.at("cause").as_string() == dump.cause,
               dump.path + ": anomaly header cause mismatch");
        expect(anomaly.at("kind").as_string() ==
                   obs::anomaly_name(dump.kind),
               dump.path + ": anomaly header kind mismatch");
        expect(!doc.at("traceEvents").as_array().empty(),
               dump.path + ": empty traceEvents");
      } catch (const std::exception& error) {
        expect(false, dump.path + " is not a valid flight dump: " +
                          error.what());
      }
    }
    for (const char* cls :
         {"deadline-miss", "quarantine", "breaker-open", "ladder-climb"}) {
      expect(classes.count(cls) == 1,
             std::string("no flight dump covers anomaly class ") + cls);
    }
    std::printf("flight dumps: %zu in %s covering %zu anomaly class(es)\n",
                chaos.dumps.size(), dump_dir.c_str(), classes.size());
  }

  if (!metrics_out.empty()) {
    registry.write_file(metrics_out);
    std::printf("metrics -> %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    trace.write_file(trace_out);
    std::printf("trace -> %s\n", trace_out.c_str());
  }

  if (violations.empty()) {
    std::printf("chaos soak PASSED (%d frames, plan %s)\n", frames,
                plan.describe().c_str());
    return 0;
  }
  std::fprintf(stderr, "chaos soak FAILED: %zu invariant(s) violated\n",
               violations.size());
  return 2;
}

// ---------------------------------------------------------------------------
// Fleet-scale soak (`fdet_chaos fleet`).

/// Builds the tenant/stream topology into `fleet`: one tenant per mix
/// entry, `streams` streams each, all reading the shared `source` at
/// `fps` with a small deterministic phase stagger so arrivals interleave
/// instead of stampeding.
void build_fleet(serve::FleetScheduler& fleet,
                 const std::vector<serve::TenantMixEntry>& mix,
                 const ingest::FrameSource& source, double fps, int frames) {
  int stream_id = 0;
  for (const serve::TenantMixEntry& entry : mix) {
    const int tenant = fleet.add_tenant(entry.spec);
    for (int s = 0; s < entry.streams; ++s, ++stream_id) {
      const double phase = (stream_id % 17) * (1.0 / fps) / 17.0;
      fleet.add_stream(tenant, source, fps, frames, phase);
    }
  }
}

int run_fleet_chaos(int argc, char** argv) {
  std::string tenant_mix = "gold:48,silver:64,best-effort:96";
  int devices = 4;
  int frames = 24;  // per stream
  double fps = 0.0;
  double utilization = 0.55;
  double deadline_ms = 0.0;
  double margin = 6.0;
  double admit_fraction = 0.9;
  std::string device_faults;
  double seed = 20120926;
  std::string record_out;
  std::string metrics_out;
  std::string dump_dir = "fleet_dumps";
  bool verbose = false;

  core::Cli cli("fdet_chaos fleet");
  cli.flag("tenant-mix", tenant_mix,
           "class:streams[,class:streams...] fleet topology");
  cli.flag("devices", devices, "virtual devices in the fleet (>= 2)");
  cli.flag("frames", frames, "frames per stream");
  cli.flag("fps", fps,
           "per-stream arrival rate (0 = derive from --utilization)");
  cli.flag("utilization", utilization,
           "target fleet utilization when deriving --fps");
  cli.flag("deadline-ms", deadline_ms,
           "per-frame budget (0 = margin x clean-probe max latency)");
  cli.flag("margin", margin, "deadline headroom over the clean probe");
  cli.flag("admit-fraction", admit_fraction,
           "best-effort admission rate as a fraction of its offered load "
           "(>= 1 admits everything)");
  cli.flag("device-faults", device_faults,
           "device fault schedule (see serve/faults.h; \"\" = auto over "
           "the run span)");
  cli.flag("seed", seed, "fault-plan seed");
  cli.flag("record-out", record_out, "write BENCH_fleet_chaos.json here");
  cli.flag("metrics-out", metrics_out, "write serve.fleet.* metrics here");
  cli.flag("dump-dir", dump_dir,
           "flight-recorder dump directory on invariant failure "
           "(\"\" disables)");
  cli.flag("verbose", verbose, "per-frame log of the faulted run");
  if (!cli.parse(argc, argv)) {
    return 1;
  }
  if (devices < 2) {
    std::fprintf(stderr, "fdet_chaos fleet: --devices must be >= 2 "
                         "(failover needs somewhere to go)\n");
    return 1;
  }

  const std::vector<serve::TenantMixEntry> mix =
      serve::parse_tenant_mix(tenant_mix);
  int total_streams = 0;
  for (const serve::TenantMixEntry& entry : mix) {
    total_streams += entry.streams;
  }

  // Shared footage: every stream replays the same synthetic trailer, so
  // the scheduler's decode/detect caches keep the wall-clock cost of a
  // 200-stream fleet near that of one stream.
  video::TrailerSpec spec;
  spec.title = "fleet-chaos";
  spec.width = 96;
  spec.height = 72;
  spec.frames = frames;
  spec.shot_frames = 8;
  spec.face_density = 1.5;
  spec.seed = 7;
  const video::SyntheticTrailer trailer(spec);
  const video::MockH264Decoder decoder(trailer);
  const ingest::H264FrameSource source(decoder);
  const vgpu::DeviceSpec device;
  const haar::Cascade cascade = chaos_cascade();

  // Per-frame service-time probe -> arrival rate at the target
  // utilization. Virtual time throughout: the derived fps is
  // deterministic, so the whole soak (and its run record) replays.
  {
    const detect::Pipeline probe(device, cascade, {});
    double service_ms = 0.0;
    for (int f = 0; f < std::min(frames, 4); ++f) {
      const video::DecodedFrame decoded = decoder.decode(f);
      service_ms = std::max(service_ms,
                            decoded.decode_ms +
                                probe.process(decoded.frame.luma()).detect_ms);
    }
    if (fps <= 0.0) {
      fps = utilization * devices * 1000.0 /
            (static_cast<double>(total_streams) * service_ms);
    }
    std::printf("calibration: service %.3f ms/frame -> %.2f fps/stream "
                "(%d streams, %d devices, target utilization %.2f)\n",
                service_ms, fps, total_streams, devices, utilization);
  }
  const double span_s = frames / fps;

  serve::FleetOptions fleet_options;
  fleet_options.devices = devices;
  fleet_options.seed = static_cast<std::uint64_t>(seed);

  // Finite admission for best-effort tenants: the typed
  // kAdmissionRejected path must fire in the soak, and identically in
  // both runs (admission depends only on arrival times).
  std::vector<serve::TenantMixEntry> admitted_mix = mix;
  if (admit_fraction < 1.0) {
    for (serve::TenantMixEntry& entry : admitted_mix) {
      if (entry.spec.cls == serve::QosClass::kBestEffort) {
        entry.spec.admission.rate_per_s =
            admit_fraction * fps * entry.streams;
        entry.spec.admission.burst = entry.streams;
      }
    }
  }

  // Clean fleet probe at an unbounded budget: the latency envelope with
  // queueing and batching included. The real deadline sits `margin`
  // above it, so the clean twin is healthy by construction.
  {
    serve::FleetOptions probe_options = fleet_options;
    probe_options.deadline_ms = 1e9;
    probe_options.flight_recorder = false;
    serve::FleetScheduler probe(device, cascade, {}, probe_options);
    build_fleet(probe, admitted_mix, source, fps, frames);
    const serve::FleetReport envelope = probe.run();
    double max_ms = 0.0;
    for (const serve::FleetFrame& frame : envelope.frames) {
      if (frame.status == serve::FrameStatus::kOk ||
          frame.status == serve::FrameStatus::kDegraded) {
        max_ms = std::max(max_ms, frame.latency_ms);
      }
    }
    if (deadline_ms <= 0.0) {
      deadline_ms = margin * max_ms;
    }
    std::printf("calibration: clean-probe max latency %.3f ms -> "
                "deadline %.3f ms, run span %.2f s\n",
                max_ms, deadline_ms, span_s);
  }
  fleet_options.deadline_ms = deadline_ms;

  // Seeded device-loss/recovery schedule. The auto plan covers every
  // device fault kind inside the arrival span: a slow window early, a
  // hard loss mid-run, a hang long enough for the watchdog, and a second
  // loss near the tail.
  if (device_faults.empty()) {
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "device-slow@%d:%.3f+%.3f*4,device-lost@%d:%.3f+%.3f,"
                  "device-lost@0:%.3f+%.3f,device-hang@%d:%.3f+%.3f,"
                  "device-lost@%d:%.3f+%.3f,device-lost@%d:%.3f+%.3f",
                  2 % devices, 0.10 * span_s, 0.45 * span_s, 1 % devices,
                  0.12 * span_s, 0.06 * span_s, 0.30 * span_s, 0.15 * span_s,
                  1 % devices, 0.55 * span_s, 0.15 * span_s, 2 % devices,
                  0.68 * span_s, 0.08 * span_s, 3 % devices, 0.82 * span_s,
                  0.10 * span_s);
    device_faults = buf;
  }
  const serve::DeviceFaultPlan plan = serve::DeviceFaultPlan::parse(
      device_faults, static_cast<std::uint64_t>(seed));
  std::printf("device fault plan: %s\n", plan.describe().c_str());
  int planned_outages = 0;
  for (const serve::DeviceFaultSpec& fault : plan.specs()) {
    planned_outages += fault.kind != serve::DeviceFaultKind::kDeviceSlow;
  }

  // Twin runs: identical topology, identical seeds; only the device
  // fault plan differs. Separate scheduler instances so the chaos run's
  // metrics registry is not polluted by the clean twin.
  serve::FleetScheduler clean_fleet(device, cascade, {}, fleet_options);
  build_fleet(clean_fleet, admitted_mix, source, fps, frames);
  const serve::FleetReport clean = clean_fleet.run();

  obs::Registry registry;
  serve::FleetScheduler chaos_fleet(device, cascade, {}, fleet_options,
                                    &registry);
  build_fleet(chaos_fleet, admitted_mix, source, fps, frames);
  const serve::FleetReport chaos = chaos_fleet.run(&plan);

  const auto print_report = [](const char* tag,
                               const serve::FleetReport& report) {
    std::printf("%s: served=%d (ok+degraded) rejected=%d dropped=%d "
                "failed=%d misses=%d failovers=%d device_faults=%d "
                "watchdog=%d batches=%d shed=%d recover=%d stranded=%d\n",
                tag, report.served, report.admission_rejected, report.dropped,
                report.failed, report.deadline_misses, report.failovers,
                report.device_faults, report.watchdog_fires, report.batches,
                report.shed_steps, report.recover_steps, report.stranded);
  };
  print_report("fault-free", clean);
  print_report("fleet chaos", chaos);
  for (const serve::TenantReport& tenant : chaos.tenants) {
    std::printf("  tenant %-12s %-11s streams=%3d frames=%5d admitted=%5d "
                "rejected=%4d misses=%4d failovers=%3d max_shed=%d "
                "p50=%7.3f ms p99=%7.3f ms\n",
                tenant.name.c_str(), serve::qos_class_name(tenant.cls),
                tenant.streams, tenant.frames, tenant.admitted,
                tenant.admission_rejected, tenant.deadline_misses,
                tenant.failovers, tenant.max_shed_level, tenant.p50_ms,
                tenant.p99_ms);
  }
  for (std::size_t d = 0; d < chaos.devices.size(); ++d) {
    const serve::DeviceReport& dev = chaos.devices[d];
    std::printf("  device %zu: frames=%5d faults=%d failovers_out=%3d "
                "busy=%8.1f ms final=%s\n",
                d, dev.frames, dev.faults, dev.failovers_out, dev.busy_ms,
                serve::device_state_name(dev.final_state));
  }
  if (verbose) {
    for (const serve::FleetFrame& frame : chaos.frames) {
      if (frame.status == serve::FrameStatus::kOk && frame.cause.empty()) {
        continue;  // only the interesting frames
      }
      std::printf("  s%03d f%02d %-8s dev=%d level=%d batch=%d "
                  "latency=%8.3f ms%s%s\n",
                  frame.stream, frame.index,
                  serve::frame_status_name(frame.status), frame.device,
                  frame.degradation_level, frame.batch_size, frame.latency_ms,
                  frame.cause.empty() ? "" : "  ",
                  frame.cause.c_str());
    }
  }

  std::vector<Violation> violations;
  const auto expect = [&](bool ok, const std::string& what) {
    check(ok, what, violations);
  };

  const int expected_frames = total_streams * frames;

  // Sanity: the clean twin is healthy by construction.
  expect(static_cast<int>(clean.frames.size()) == expected_frames &&
             static_cast<int>(chaos.frames.size()) == expected_frames,
         "every stream frame must yield a FleetFrame record");
  expect(clean.failed == 0 && clean.device_faults == 0 &&
             clean.failovers == 0 && clean.deadline_misses == 0,
         "fault-free run must serve cleanly under the calibrated deadline");
  expect(chaos.device_faults == planned_outages,
         "device plan injected " + std::to_string(chaos.device_faults) +
             " outages, planned " + std::to_string(planned_outages));

  // F1. Gold protection: while best-effort still has ladder room, every
  // gold deadline miss must be excused by a device fault — a failover, a
  // slowed dispatch, or a service interval overlapping an outage window
  // (a frame queued on a hanging device can only wait for the watchdog;
  // that is physics, not scheduling policy). A miss on healthy capacity
  // is the policy violation this invariant exists to catch.
  bool best_effort_exhausted = true;
  for (const serve::TenantReport& tenant : chaos.tenants) {
    if (tenant.cls == serve::QosClass::kBestEffort) {
      best_effort_exhausted =
          best_effort_exhausted &&
          tenant.max_shed_level == serve::DegradationLadder::max_level();
    }
  }
  // Outage windows widened by the watchdog delay plus one deadline of
  // post-recovery drain: the interval during which latency is
  // fault-dominated.
  std::vector<std::pair<double, double>> outage_windows;
  const double drain_s =
      (fleet_options.hang_watchdog_ms + deadline_ms) / 1e3;
  for (const serve::DeviceFaultSpec& fault : plan.specs()) {
    if (fault.kind != serve::DeviceFaultKind::kDeviceSlow) {
      outage_windows.emplace_back(fault.start_s,
                                  fault.start_s + fault.duration_s + drain_s);
    }
  }
  const auto in_outage = [&outage_windows](const serve::FleetFrame& frame) {
    for (const auto& [start, end] : outage_windows) {
      if (frame.arrival_s < end && frame.completion_s >= start) {
        return true;
      }
    }
    return false;
  };
  int gold_excused = 0;
  if (!best_effort_exhausted) {
    for (const serve::FleetFrame& frame : chaos.frames) {
      if (chaos.tenants[frame.tenant].cls != serve::QosClass::kGold ||
          !frame.deadline_miss) {
        continue;
      }
      if (frame.failed_over || frame.fault_injected || in_outage(frame)) {
        ++gold_excused;
        continue;
      }
      expect(false, "gold frame s" + std::to_string(frame.stream) + "/f" +
                        std::to_string(frame.index) +
                        " missed its deadline on healthy capacity while "
                        "best-effort had shedding room");
    }
    std::printf("gold protection: %d miss(es), all inside fault windows\n",
                gold_excused);
  }

  // F2. Every admitted frame reaches a terminal status.
  expect(clean.stranded == 0 && chaos.stranded == 0,
         "event queue drained with stranded frames (clean=" +
             std::to_string(clean.stranded) +
             ", chaos=" + std::to_string(chaos.stranded) + ")");
  for (const serve::FleetFrame& frame : chaos.frames) {
    if (!frame.settled) {
      expect(false, "frame s" + std::to_string(frame.stream) + "/f" +
                        std::to_string(frame.index) +
                        " never reached a terminal status");
    }
  }
  expect(chaos.admitted + chaos.admission_rejected == expected_frames,
         "admitted + rejected must account for every offered frame");

  // F3. Failover preserves detection identity and the batching boundary.
  expect(chaos.failovers > 0,
         "device losses produced no failovers (plan missed all in-flight "
         "work; widen the outage windows)");
  int compared = 0;
  for (const serve::FleetFrame& frame : chaos.frames) {
    if (!frame.failed_over) {
      continue;
    }
    expect(frame.batch_size == 1,
           "failed-over frame s" + std::to_string(frame.stream) + "/f" +
               std::to_string(frame.index) +
               " was batched across the fault-domain boundary");
    if (frame.status != serve::FrameStatus::kOk &&
        frame.status != serve::FrameStatus::kDegraded) {
      continue;
    }
    const serve::FleetFrame* twin = clean.frame(frame.stream, frame.index);
    if (twin == nullptr || twin->degradation_level != frame.degradation_level ||
        (twin->status != serve::FrameStatus::kOk &&
         twin->status != serve::FrameStatus::kDegraded)) {
      continue;  // served at a different rung: not comparable byte-for-byte
    }
    ++compared;
    bool same = frame.detections.size() == twin->detections.size();
    for (std::size_t i = 0; same && i < frame.detections.size(); ++i) {
      const detect::Detection& a = frame.detections[i];
      const detect::Detection& b = twin->detections[i];
      same = a.box == b.box && a.score == b.score &&
             a.neighbors == b.neighbors && a.scale_index == b.scale_index;
    }
    expect(same, "failed-over frame s" + std::to_string(frame.stream) + "/f" +
                     std::to_string(frame.index) +
                     " detections diverge from the unfaulted run");
  }
  expect(compared > 0, "no failed-over frame was comparable to its twin");
  std::printf("failover comparison: %d frames byte-identical\n", compared);

  // F4. Shed ordering is monotone in QoS class, and admission is
  // untouched by device faults.
  int max_shed_by_class[serve::kQosClassCount] = {0, 0, 0};
  for (const serve::TenantReport& tenant : chaos.tenants) {
    int& slot = max_shed_by_class[static_cast<int>(tenant.cls)];
    slot = std::max(slot, tenant.max_shed_level);
  }
  expect(max_shed_by_class[static_cast<int>(serve::QosClass::kGold)] <=
                 max_shed_by_class[static_cast<int>(serve::QosClass::kSilver)] &&
             max_shed_by_class[static_cast<int>(serve::QosClass::kSilver)] <=
                 max_shed_by_class[static_cast<int>(
                     serve::QosClass::kBestEffort)],
         "shed depth must be monotone best-effort >= silver >= gold");
  expect(chaos.admission_rejected == clean.admission_rejected,
         "admission decisions diverged between the twin runs");
  if (admit_fraction < 1.0) {
    expect(chaos.admission_rejected > 0,
           "finite best-effort admission never rejected a frame");
    for (const serve::FleetFrame& frame : chaos.frames) {
      if (frame.status != serve::FrameStatus::kAdmissionRejected) {
        continue;
      }
      expect(frame.error.has_value() &&
                 frame.error->cls == serve::ErrorClass::kRejected &&
                 frame.error->stage == "admission",
             "rejected frame s" + std::to_string(frame.stream) + "/f" +
                 std::to_string(frame.index) +
                 " lacks the typed admission error");
      break;  // one structural spot-check is enough
    }
  }

  // Cross-stream batching actually engaged (the fleet's reason to exist).
  expect(chaos.batches > 0 && chaos.batched_frames > chaos.batches,
         "cross-stream batching never fused frames");

  if (!metrics_out.empty()) {
    registry.write_file(metrics_out);
    std::printf("metrics -> %s\n", metrics_out.c_str());
  }
  if (!record_out.empty()) {
    registry.gauge("serve.fleet.deadline_ms").set(deadline_ms);
    registry.gauge("serve.fleet.fps_per_stream").set(fps);
    registry.gauge("serve.fleet.streams").set(total_streams);
    registry.gauge("serve.fleet.devices").set(devices);
    obs::RunRecord record = obs::build_run_record(
        "fleet_chaos", "default", {{"plan", plan.describe()}}, {&registry});
    record.write_file(record_out);
    std::printf("run record -> %s\n", record_out.c_str());
  }

  if (violations.empty()) {
    std::printf("fleet chaos soak PASSED (%d streams x %d frames, "
                "%d devices)\n",
                total_streams, frames, devices);
    return 0;
  }
  if (!dump_dir.empty() && chaos_fleet.recorder() != nullptr) {
    // Post-mortem: the chaos run's flight ring, loadable in Perfetto.
    std::filesystem::create_directories(dump_dir);
    obs::AnomalyInfo anomaly;
    anomaly.kind = obs::Anomaly::kFaultInjected;
    anomaly.cause = "fleet invariant violated: " + violations.front().what;
    const std::string path = dump_dir + "/fleet_failure.json";
    obs::write_flight_dump(path, chaos_fleet.recorder()->snapshot(), anomaly);
    std::fprintf(stderr, "flight dump -> %s\n", path.c_str());
  }
  std::fprintf(stderr, "fleet chaos soak FAILED: %zu invariant(s) violated\n",
               violations.size());
  return 2;
}

}  // namespace
}  // namespace fdet

int main(int argc, char** argv) {
  try {
    if (argc > 1 && std::string(argv[1]) == "fleet") {
      // Shift out the subcommand so the flag parser sees only flags.
      std::vector<char*> args;
      args.push_back(argv[0]);
      for (int i = 2; i < argc; ++i) {
        args.push_back(argv[i]);
      }
      return fdet::run_fleet_chaos(static_cast<int>(args.size()),
                                   args.data());
    }
    return fdet::run_chaos(argc, argv);
  } catch (const std::exception& error) {
    // Invariant 1: the serving layer must never let an exception escape.
    std::fprintf(stderr, "chaos harness crashed: %s\n", error.what());
    return 2;
  }
}
