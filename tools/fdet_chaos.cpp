// Chaos soak for the streaming serving layer (serve::StreamingService).
//
// Trains a small cascade in-process, streams a SyntheticTrailer through the
// service twice — once fault-free, once under a seeded FaultPlan — and
// asserts the serving-layer invariants:
//
//   1. the service never crashes: every frame yields a ServedFrame record;
//   2. the fault-free run is healthy (no failures, no drops, level 0);
//   3. the faulted run injects the plan (it actually fired);
//   4. consecutive unserved frames (failed or dropped) stay bounded;
//   5. after each deterministic fault burst the service recovers: a frame
//      is served clean at degradation level 0 before the next burst, and
//      the run ends back at level 0;
//   6. clean frames — served at level 0 in both runs and not targeted by
//      the plan — produce detections identical to the fault-free run;
//   7. with --dump-dir set (default), every injected deterministic fault's
//      frame yields a flight-recorder dump whose causal chain names the
//      fault kind, every provoked anomaly class is covered, and each dump
//      on disk is a parseable Perfetto document.
//
// Exit codes: 0 all invariants hold, 1 usage error, 2 invariant violated
// (or the harness itself crashed, which is invariant 1 failing).
//
// The default plan exercises every fault kind: transient decode failures,
// a decode burst long enough to trip the circuit breaker, luma corruption,
// transient launch faults (whose backoff blows the deadline and walks the
// degradation ladder), the two hard overflow kinds, and a malformed-
// bitstream fault (typed ingest rejection, quarantined without retry).
#include <cstdio>
#include <exception>
#include <set>
#include <string>
#include <vector>

#include "core/cli.h"
#include "facegen/dataset.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/service.h"
#include "train/boost.h"
#include "video/decoder.h"

namespace fdet {
namespace {

haar::Cascade chaos_cascade() {
  const auto set = facegen::build_training_set(200, 30, 64, 31337);
  train::TrainOptions options;
  options.stage_sizes = {6, 10, 14, 18};
  options.feature_pool = 300;
  options.negatives_per_stage = 250;
  options.stage_hit_target = 0.99;
  options.seed = 13;
  return train::train_cascade(set, options, "chaos").cascade;
}

struct Violation {
  std::string what;
};

void check(bool ok, const std::string& what, std::vector<Violation>& out) {
  if (!ok) {
    out.push_back({what});
    std::fprintf(stderr, "INVARIANT VIOLATED: %s\n", what.c_str());
  }
}

/// Deterministic fault bursts, clustered: targeted frames closer than 3
/// apart count as one burst (e.g. the breaker-tripping decode run).
std::vector<std::pair<int, int>> burst_clusters(const std::vector<int>& t) {
  std::vector<std::pair<int, int>> clusters;
  for (const int frame : t) {
    if (!clusters.empty() && frame - clusters.back().second <= 3) {
      clusters.back().second = frame;
    } else {
      clusters.emplace_back(frame, frame);
    }
  }
  return clusters;
}

int run_chaos(int argc, char** argv) {
  int frames = 72;
  int width = 320;
  int height = 240;
  double fps = 24.0;
  double deadline_ms = 0.0;  // 0 = auto from the fault-free run
  std::string faults =
      "decode@6x2,corrupt@12,launch@18x2,const@26,shared@34,"
      "decode@44x3,decode@45x3,decode@46x3,bitstream@64";
  double seed = 20120926;
  int max_unserved = 8;
  std::string metrics_out;
  std::string trace_out;
  std::string dump_dir = "chaos_dumps";
  bool verbose = false;

  core::Cli cli("fdet_chaos");
  cli.flag("frames", frames, "frames to stream through the service");
  cli.flag("width", width, "trailer width");
  cli.flag("height", height, "trailer height");
  cli.flag("fps", fps, "stream arrival rate");
  cli.flag("deadline-ms", deadline_ms,
           "per-frame latency budget (0 = derive from the fault-free run)");
  cli.flag("faults", faults, "fault plan spec (see serve/faults.h)");
  cli.flag("seed", seed, "fault-plan + jitter seed");
  cli.flag("max-unserved", max_unserved,
           "invariant: longest tolerated failed/dropped streak");
  cli.flag("metrics-out", metrics_out, "write serve.* metrics JSON/CSV here");
  cli.flag("trace-out", trace_out, "write the chaos-run Chrome trace here");
  cli.flag("dump-dir", dump_dir,
           "flight-recorder anomaly dump directory (\"\" disables dumps "
           "and invariant 7)");
  cli.flag("verbose", verbose, "per-frame log of the faulted run");
  if (!cli.parse(argc, argv)) {
    return 1;
  }

  const auto plan =
      serve::FaultPlan::parse(faults, static_cast<std::uint64_t>(seed));
  std::printf("fault plan: %s\n", plan.describe().c_str());

  video::TrailerSpec spec;
  spec.title = "chaos";
  spec.width = width;
  spec.height = height;
  spec.frames = frames;
  spec.shot_frames = 12;
  spec.face_density = 1.5;
  spec.seed = 7;
  const video::SyntheticTrailer trailer(spec);
  const video::MockH264Decoder decoder(trailer);
  const vgpu::DeviceSpec device;
  const haar::Cascade cascade = chaos_cascade();

  serve::ServiceOptions options;
  options.fps = fps;
  options.seed = static_cast<std::uint64_t>(seed);

  // Fault-free calibration run: find the healthy latency envelope, then
  // place the deadline above it (so the clean run sits at level 0) but
  // low enough that retry backoff pushes a faulted frame over it. The
  // deadline must also clear the *serial* envelope, or a breaker-forced
  // serial fallback could never recover: every serial frame would miss the
  // deadline and pin the ladder at its deepest rung.
  {
    serve::StreamingService probe(device, cascade, {}, options);
    const serve::ServiceReport calib = probe.run(decoder, frames);
    double max_ms = 0.0;
    for (const auto& frame : calib.frames) {
      max_ms = std::max(max_ms, frame.latency_ms);
    }
    detect::PipelineOptions serial_opts;
    serial_opts.mode = vgpu::ExecMode::kSerial;
    const detect::Pipeline serial_probe(device, cascade, serial_opts);
    const double serial_ms =
        serial_probe.process(decoder.decode(0).frame.luma()).detect_ms +
        decoder.decode_latency_ms(0);
    if (deadline_ms <= 0.0) {
      deadline_ms = std::max(2.0 * max_ms, serial_ms / 0.6);
    }
    // Retry backoff must overshoot the budget: one retry's worth of
    // backoff on top of a healthy frame has to cross the deadline.
    options.retry.base_backoff_ms = deadline_ms;
    options.retry.max_backoff_ms = 4.0 * deadline_ms;
    std::printf(
        "calibration: healthy max %.3f ms, serial %.3f ms -> deadline %.3f ms\n",
        max_ms, serial_ms, deadline_ms);
  }
  options.deadline_ms = deadline_ms;
  // Dumps stay off for the calibration probe above; only the real runs
  // carry a flight-recorder dump directory.
  options.obs.dump_dir = dump_dir;

  obs::Registry registry;
  obs::TraceSession trace;
  trace.install();

  serve::StreamingService service(device, cascade, {}, options, &registry);
  const serve::ServiceReport clean = service.run(decoder, frames);
  const serve::ServiceReport chaos = service.run(decoder, frames, &plan);

  std::printf(
      "fault-free: ok=%d degraded=%d dropped=%d failed=%d misses=%d\n",
      clean.ok, clean.degraded, clean.dropped, clean.failed,
      clean.deadline_misses);
  std::printf(
      "chaos:      ok=%d degraded=%d dropped=%d failed=%d misses=%d "
      "retries=%d faults=%d trips=%d shifts=%d max_unserved=%d level=%d\n",
      chaos.ok, chaos.degraded, chaos.dropped, chaos.failed,
      chaos.deadline_misses, chaos.retries, chaos.faults_injected,
      chaos.breaker_trips, chaos.degradation_shifts,
      chaos.max_consecutive_unserved, chaos.final_degradation_level);
  if (verbose) {
    for (const auto& frame : chaos.frames) {
      std::printf(
          "  frame %3d %-8s level=%d retries=%d latency=%7.3f ms dets=%zu%s\n",
          frame.index, serve::frame_status_name(frame.status),
          frame.degradation_level, frame.retries, frame.latency_ms,
          frame.detections.size(),
          frame.error ? ("  [" + frame.error->stage + "/" +
                         serve::error_class_name(frame.error->cls) + ": " +
                         frame.error->message + "]")
                            .c_str()
                      : "");
    }
  }

  std::vector<Violation> violations;
  const auto expect = [&](bool ok, const std::string& what) {
    check(ok, what, violations);
  };

  // 1. Every frame produced a record, in order.
  expect(static_cast<int>(clean.frames.size()) == frames &&
             static_cast<int>(chaos.frames.size()) == frames,
         "every frame must yield a ServedFrame record");

  // 2. The fault-free run is healthy.
  expect(clean.failed == 0 && clean.dropped == 0 &&
             clean.final_degradation_level == 0 && clean.faults_injected == 0,
         "fault-free run must serve every frame at level 0");

  // 3. The plan actually fired.
  expect(plan.empty() || chaos.faults_injected > 0,
         "fault plan injected nothing");

  // 4. Bounded consecutive unserved frames.
  expect(chaos.max_consecutive_unserved <= max_unserved,
         "unserved streak " + std::to_string(chaos.max_consecutive_unserved) +
             " exceeds bound " + std::to_string(max_unserved));

  // 5. Recovery after each deterministic burst, and at end of stream.
  expect(chaos.final_degradation_level == 0,
         "service must end back at degradation level 0, ended at level " +
             std::to_string(chaos.final_degradation_level));
  for (const auto& [first, last] : burst_clusters(plan.targeted_frames())) {
    bool recovered = false;
    for (int i = last + 1; i < frames && !recovered; ++i) {
      if (plan.targets_frame(i)) {
        break;  // next burst started first: judged by its own window
      }
      const serve::ServedFrame& frame = chaos.frames[i];
      recovered = frame.status == serve::FrameStatus::kOk &&
                  frame.degradation_level == 0;
    }
    expect(recovered, "no clean level-0 frame after fault burst [" +
                          std::to_string(first) + ", " +
                          std::to_string(last) + "]");
  }

  // 6. Clean frames detect identically to the fault-free run.
  int compared = 0;
  for (int i = 0; i < frames && i < static_cast<int>(chaos.frames.size());
       ++i) {
    const serve::ServedFrame& a = clean.frames[i];
    const serve::ServedFrame& b = chaos.frames[i];
    if (plan.targets_frame(i) || a.status != serve::FrameStatus::kOk ||
        b.status != serve::FrameStatus::kOk || b.degradation_level != 0) {
      continue;
    }
    ++compared;
    bool same = a.detections.size() == b.detections.size();
    for (std::size_t d = 0; same && d < a.detections.size(); ++d) {
      same = a.detections[d].box == b.detections[d].box &&
             a.detections[d].neighbors == b.detections[d].neighbors;
    }
    expect(same, "clean frame " + std::to_string(i) +
                     " detections diverge from the fault-free run");
  }
  expect(compared > 0, "no clean frames were comparable");
  std::printf("clean-frame comparison: %d frames identical\n", compared);

  // 7. Causal flight dumps: the fault-free run writes none; every
  //    injected deterministic fault's frame produces a dump whose causal
  //    chain names the fault kind; every anomaly class the default plan
  //    provokes is covered; and each dump file on disk is a parseable
  //    Perfetto document whose anomaly header matches the served frame.
  if (!dump_dir.empty()) {
    expect(clean.dumps.empty(),
           "fault-free run wrote " + std::to_string(clean.dumps.size()) +
               " flight dump(s); expected none");
    for (const serve::FaultSpec& fault : plan.specs()) {
      if (fault.frame < 0 || fault.frame >= frames) {
        continue;  // probabilistic specs are judged by the class check
      }
      if (!chaos.frames[fault.frame].fault_injected) {
        continue;  // breaker fail-fast: the faulted stage never ran
      }
      const std::string token =
          std::string("fault:") + serve::fault_kind_name(fault.kind);
      bool named = false;
      for (const serve::AnomalyDump& dump : chaos.dumps) {
        named = named || (dump.frame == fault.frame &&
                          dump.cause.find(token) != std::string::npos);
      }
      expect(named, "frame " + std::to_string(fault.frame) + " injected " +
                        token + " but no flight dump names it");
    }
    std::set<std::string> classes;
    for (const serve::AnomalyDump& dump : chaos.dumps) {
      classes.insert(obs::anomaly_name(dump.kind));
      try {
        const obs::json::Value doc = obs::json::parse_file(dump.path);
        const obs::json::Value& anomaly = doc.at("anomaly");
        expect(static_cast<int>(anomaly.at("frame").as_number()) ==
                   dump.frame,
               dump.path + ": anomaly header frame mismatch");
        expect(anomaly.at("cause").as_string() == dump.cause,
               dump.path + ": anomaly header cause mismatch");
        expect(anomaly.at("kind").as_string() ==
                   obs::anomaly_name(dump.kind),
               dump.path + ": anomaly header kind mismatch");
        expect(!doc.at("traceEvents").as_array().empty(),
               dump.path + ": empty traceEvents");
      } catch (const std::exception& error) {
        expect(false, dump.path + " is not a valid flight dump: " +
                          error.what());
      }
    }
    for (const char* cls :
         {"deadline-miss", "quarantine", "breaker-open", "ladder-climb"}) {
      expect(classes.count(cls) == 1,
             std::string("no flight dump covers anomaly class ") + cls);
    }
    std::printf("flight dumps: %zu in %s covering %zu anomaly class(es)\n",
                chaos.dumps.size(), dump_dir.c_str(), classes.size());
  }

  if (!metrics_out.empty()) {
    registry.write_file(metrics_out);
    std::printf("metrics -> %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    trace.write_file(trace_out);
    std::printf("trace -> %s\n", trace_out.c_str());
  }

  if (violations.empty()) {
    std::printf("chaos soak PASSED (%d frames, plan %s)\n", frames,
                plan.describe().c_str());
    return 0;
  }
  std::fprintf(stderr, "chaos soak FAILED: %zu invariant(s) violated\n",
               violations.size());
  return 2;
}

}  // namespace
}  // namespace fdet

int main(int argc, char** argv) {
  try {
    return fdet::run_chaos(argc, argv);
  } catch (const std::exception& error) {
    // Invariant 1: the serving layer must never let an exception escape.
    std::fprintf(stderr, "chaos harness crashed: %s\n", error.what());
    return 2;
  }
}
