// Kill-point chaos harness for the durable training layer
// (train/checkpoint.h + core/artifact.h).
//
// Trains a small GentleBoost cascade once, fault-free, to establish the
// reference artifact, then replays training under every kill point and
// write fault the durability layer claims to survive:
//
//   1. kill-after-stage-N — a simulated crash at every stage boundary;
//      training restarts with --resume and must reproduce the reference
//      `.cascade` byte-for-byte (the resume-identity invariant);
//   2. write-fault matrix — short write (ENOSPC tail), torn write (crash
//      mid-write), and ENOSPC injected into the checkpoint save via the
//      core::artifact WriteFaultHook seam, followed by a kill; no corrupt
//      checkpoint may ever be visible under a durable name, and resume
//      from the surviving checkpoints must still reproduce the reference;
//   3. corrupt-checkpoint fallback — the newest checkpoint is bit-flipped
//      on disk; resume must quarantine it (`*.corrupt`), fall back to the
//      next newest, and still reproduce the reference;
//   4. final-artifact fault — a fault injected into save_cascade() must
//      leave no torn `.cascade` visible (previous contents intact), and a
//      retry must produce the reference bytes.
//
// Observability: each scenario runs against a fresh obs::Registry; the
// harness asserts the train.checkpoint.* counters/gauges fired
// (saved/save_failed/corrupt_quarantined/resumed_stage), and --metrics-out
// dumps the final scenario's registry for CI artifacts.
//
// Exit codes: 0 all invariants hold, 1 usage error, 2 invariant violated
// (or the harness itself crashed, which is a durability bug by definition).
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/artifact.h"
#include "core/cli.h"
#include "facegen/dataset.h"
#include "haar/cascade.h"
#include "obs/metrics.h"
#include "train/boost.h"
#include "train/checkpoint.h"

namespace fdet {
namespace {

namespace fs = std::filesystem;

/// Thrown from the after-stage seam to simulate a crash.
struct SimulatedKill {
  int stage;
};

struct Violation {
  std::string what;
};

void check(bool ok, const std::string& what, std::vector<Violation>& out) {
  if (!ok) {
    out.push_back({what});
    std::fprintf(stderr, "INVARIANT VIOLATED: %s\n", what.c_str());
  }
}

std::optional<std::string> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

/// Every durable checkpoint in `dir` must be intact: readable, CRC-clean,
/// parseable. `.tmp` staging debris and `.corrupt` quarantine files are
/// the two (legitimate) exceptions a crash can leave behind.
void check_no_corrupt_checkpoints(const std::string& dir,
                                  const std::string& scenario,
                                  std::vector<Violation>& violations) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.ends_with(".tmp") || name.ends_with(".corrupt")) {
      continue;
    }
    if (!name.ends_with(".fdetckpt")) {
      check(false, scenario + ": unexpected durable file " + name,
            violations);
      continue;
    }
    try {
      const core::Artifact artifact = core::read_artifact(
          entry.path().string(), train::kCheckpointArtifactKind);
      train::parse_checkpoint(entry.path().string(), artifact.payload);
    } catch (const core::ArtifactError& error) {
      check(false,
            scenario + ": corrupt checkpoint visible under a durable name: " +
                error.what(),
            violations);
    }
  }
}

struct Scenario {
  train::TrainOptions options;
  std::string name;
  obs::Registry registry;

  train::TrainOptions configured(const std::string& checkpoint_dir) {
    train::TrainOptions configured = options;
    configured.checkpoint_dir = checkpoint_dir;
    configured.metrics = &registry;
    return configured;
  }
};

int run_chaos(int argc, char** argv) {
  int faces = 120;
  int backgrounds = 20;
  int seed = 2012;
  std::string dir = "train_chaos_artifacts";
  std::string metrics_out;
  core::Cli cli("fdet_train_chaos");
  cli.flag("faces", faces, "training faces per run");
  cli.flag("backgrounds", backgrounds, "background images");
  cli.flag("seed", seed, "master seed");
  cli.flag("dir", dir, "working directory for checkpoints and artifacts");
  cli.flag("metrics-out", metrics_out,
           "write the final scenario's train.checkpoint.* metrics here");
  if (!cli.parse(argc, argv)) {
    return 1;
  }

  std::vector<Violation> violations;
  fs::remove_all(dir);
  fs::create_directories(dir);

  const facegen::TrainingSet set = facegen::build_training_set(
      faces, backgrounds, 48, static_cast<std::uint64_t>(seed));

  train::TrainOptions base;
  base.stage_sizes = {3, 4, 5, 6};
  base.feature_pool = 120;
  base.negatives_per_stage = 120;
  base.stage_hit_target = 0.99;
  base.seed = static_cast<std::uint64_t>(seed);
  const int total_stages = static_cast<int>(base.stage_sizes.size());

  // ---- Reference run (fault-free, checkpointed like every other run).
  std::printf("[chaos] reference run (%d stages)...\n", total_stages);
  Scenario reference{base, "reference", {}};
  const train::TrainResult reference_result = train::train_cascade(
      set, reference.configured(dir + "/reference_ckpt"), "train-chaos");
  const std::string reference_bytes =
      haar::cascade_to_string(reference_result.cascade);
  const std::uint32_t reference_digest = core::crc32(reference_bytes);
  const std::string reference_path = dir + "/reference.cascade";
  haar::save_cascade(reference_path, reference_result.cascade);
  check(file_bytes(reference_path) == reference_bytes,
        "reference: saved .cascade differs from in-memory serialization",
        violations);
  check(reference.registry.counter("train.checkpoint.saved").value() ==
            total_stages,
        "reference: expected one checkpoint save per stage", violations);
  std::printf("[chaos] reference digest crc32=%08x (%d classifiers)\n",
              reference_digest, reference_result.cascade.classifier_count());

  // ---- 1. Kill after every stage boundary, then resume.
  for (int kill_stage = 0; kill_stage < total_stages; ++kill_stage) {
    const std::string scenario =
        "kill-after-stage-" + std::to_string(kill_stage);
    const std::string ckpt_dir = dir + "/" + scenario;
    Scenario killed{base, scenario, {}};
    train::TrainOptions opts = killed.configured(ckpt_dir);
    opts.after_stage = [kill_stage](int stage) {
      if (stage == kill_stage) {
        throw SimulatedKill{stage};
      }
    };
    bool died = false;
    try {
      train::train_cascade(set, opts, "train-chaos");
    } catch (const SimulatedKill&) {
      died = true;
    }
    check(died, scenario + ": kill point did not fire", violations);
    check_no_corrupt_checkpoints(ckpt_dir, scenario, violations);

    Scenario resumed{base, scenario + "/resume", {}};
    const train::TrainResult result = train::train_cascade(
        set, resumed.configured(ckpt_dir), "train-chaos");
    const std::string bytes = haar::cascade_to_string(result.cascade);
    check(bytes == reference_bytes,
          scenario + ": resumed cascade is not bit-identical to the "
                     "fault-free run (crc32 " +
              std::to_string(core::crc32(bytes)) + " vs " +
              std::to_string(reference_digest) + ")",
          violations);
    check(resumed.registry.gauge("train.checkpoint.resumed_stage").value() ==
              kill_stage + 1,
          scenario + ": resume did not start from the killed stage",
          violations);
    std::printf("[chaos] %-22s resumed at stage %d, digest %s\n",
                scenario.c_str(), kill_stage + 1,
                bytes == reference_bytes ? "identical" : "MISMATCH");
  }

  // ---- 2. Write faults during a checkpoint save, then a kill.
  const std::pair<core::WriteFault, const char*> fault_kinds[] = {
      {core::WriteFault::kShortWrite, "short-write"},
      {core::WriteFault::kTornWrite, "torn-write"},
      {core::WriteFault::kNoSpace, "enospc"},
  };
  for (const auto& [fault, fault_name] : fault_kinds) {
    const std::string scenario = std::string("write-fault-") + fault_name;
    const std::string ckpt_dir = dir + "/" + scenario;
    Scenario faulted{base, scenario, {}};
    train::TrainOptions opts = faulted.configured(ckpt_dir);
    // The stage-1 checkpoint (stages_done == 2) is the victim; the kill
    // lands right after the failed save.
    const std::string victim = "checkpoint-0002.fdetckpt";
    int fault_fires = 0;
    opts.after_stage = [](int stage) {
      if (stage == 1) {
        throw SimulatedKill{stage};
      }
    };
    {
      const core::ScopedWriteFaultHook hook(
          [&](const std::string& path, core::WriteOp op) {
            if (op == core::WriteOp::kWrite &&
                path.find(victim) != std::string::npos) {
              ++fault_fires;
              return fault;
            }
            return core::WriteFault::kNone;
          });
      bool died = false;
      try {
        train::train_cascade(set, opts, "train-chaos");
      } catch (const SimulatedKill&) {
        died = true;
      }
      check(died, scenario + ": kill point did not fire", violations);
    }
    check(fault_fires == 1, scenario + ": write fault did not fire exactly "
                                       "once",
          violations);
    check(faulted.registry.counter("train.checkpoint.save_failed").value() ==
              1,
          scenario + ": failed save was not counted", violations);
    check(!fs::exists(ckpt_dir + "/" + victim),
          scenario + ": a faulted write became visible under the durable "
                     "checkpoint name",
          violations);
    check_no_corrupt_checkpoints(ckpt_dir, scenario, violations);

    Scenario resumed{base, scenario + "/resume", {}};
    const train::TrainResult result = train::train_cascade(
        set, resumed.configured(ckpt_dir), "train-chaos");
    check(haar::cascade_to_string(result.cascade) == reference_bytes,
          scenario + ": resume after write fault lost bit-identity",
          violations);
    // Only the stage-0 checkpoint survived, so resume restarts stage 1.
    check(resumed.registry.gauge("train.checkpoint.resumed_stage").value() ==
              1,
          scenario + ": resume did not fall back to the surviving "
                     "checkpoint",
          violations);
    std::printf("[chaos] %-22s fault contained, resume identical\n",
                scenario.c_str());
  }

  // ---- 3. Corrupt the newest checkpoint; resume must quarantine it and
  //         fall back.
  {
    const std::string scenario = "corrupt-newest-checkpoint";
    const std::string ckpt_dir = dir + "/" + scenario;
    Scenario seeded{base, scenario, {}};
    train::TrainOptions opts = seeded.configured(ckpt_dir);
    opts.after_stage = [](int stage) {
      if (stage == 2) {
        throw SimulatedKill{stage};
      }
    };
    try {
      train::train_cascade(set, opts, "train-chaos");
    } catch (const SimulatedKill&) {
    }
    const std::string newest = ckpt_dir + "/checkpoint-0003.fdetckpt";
    std::optional<std::string> bytes = file_bytes(newest);
    check(bytes.has_value(), scenario + ": expected checkpoint missing",
          violations);
    if (bytes) {
      (*bytes)[bytes->size() / 2] ^= 0x20;  // single-bit-ish corruption
      std::ofstream out(newest, std::ios::binary | std::ios::trunc);
      out << *bytes;
    }

    Scenario resumed{base, scenario + "/resume", {}};
    const train::TrainResult result = train::train_cascade(
        set, resumed.configured(ckpt_dir), "train-chaos");
    check(haar::cascade_to_string(result.cascade) == reference_bytes,
          scenario + ": resume from fallback checkpoint lost bit-identity",
          violations);
    check(resumed.registry.counter("train.checkpoint.corrupt_quarantined")
                  .value() == 1,
          scenario + ": corrupt checkpoint was not quarantined", violations);
    check(fs::exists(newest + ".corrupt"),
          scenario + ": quarantine file missing", violations);
    check(resumed.registry.gauge("train.checkpoint.resumed_stage").value() ==
              2,
          scenario + ": resume did not fall back to stage 2", violations);
    std::printf("[chaos] %-22s quarantined, fallback resume identical\n",
                scenario.c_str());

    if (!metrics_out.empty()) {
      resumed.registry.write_file(metrics_out);
    }
  }

  // ---- 4. Fault injected into the final artifact save.
  {
    const std::string scenario = "final-artifact-fault";
    const std::string path = dir + "/final_fault.cascade";
    haar::save_cascade(path, reference_result.cascade);  // previous version
    bool threw = false;
    {
      const core::ScopedWriteFaultHook hook(
          [&](const std::string& hook_path, core::WriteOp) {
            return hook_path == path ? core::WriteFault::kTornWrite
                                     : core::WriteFault::kNone;
          });
      try {
        haar::save_cascade(path, reference_result.cascade);
      } catch (const core::ArtifactError&) {
        threw = true;
      }
    }
    check(threw, scenario + ": faulted save did not report failure",
          violations);
    check(file_bytes(path) == reference_bytes,
          scenario + ": torn write damaged the previously durable .cascade",
          violations);
    haar::save_cascade(path, reference_result.cascade);  // retry, no fault
    check(file_bytes(path) == reference_bytes,
          scenario + ": retry after fault did not produce the reference "
                     "bytes",
          violations);
    std::printf("[chaos] %-22s previous artifact intact, retry clean\n",
                scenario.c_str());
  }

  if (violations.empty()) {
    std::printf(
        "[chaos] all durability invariants hold: %d kill points, %zu write "
        "faults, corrupt fallback, final-artifact fault\n",
        total_stages, std::size(fault_kinds));
    return 0;
  }
  std::fprintf(stderr, "[chaos] %zu invariant violation(s)\n",
               violations.size());
  return 2;
}

}  // namespace
}  // namespace fdet

int main(int argc, char** argv) {
  try {
    return fdet::run_chaos(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fdet_train_chaos crashed: %s\n", error.what());
    return 2;
  }
}
