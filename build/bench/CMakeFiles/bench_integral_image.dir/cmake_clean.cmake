file(REMOVE_RECURSE
  "CMakeFiles/bench_integral_image.dir/bench_integral_image.cpp.o"
  "CMakeFiles/bench_integral_image.dir/bench_integral_image.cpp.o.d"
  "bench_integral_image"
  "bench_integral_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_integral_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
