# Empty compiler generated dependencies file for bench_integral_image.
# This may be replaced when dependencies are built.
