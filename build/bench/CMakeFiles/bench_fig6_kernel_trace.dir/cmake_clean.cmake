file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_kernel_trace.dir/bench_fig6_kernel_trace.cpp.o"
  "CMakeFiles/bench_fig6_kernel_trace.dir/bench_fig6_kernel_trace.cpp.o.d"
  "bench_fig6_kernel_trace"
  "bench_fig6_kernel_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_kernel_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
