
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_kernel_trace.cpp" "bench/CMakeFiles/bench_fig6_kernel_trace.dir/bench_fig6_kernel_trace.cpp.o" "gcc" "bench/CMakeFiles/bench_fig6_kernel_trace.dir/bench_fig6_kernel_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fdet_train.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdet_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdet_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdet_haar.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdet_integral.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdet_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdet_video.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdet_facegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdet_img.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdet_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
