# Empty dependencies file for bench_table2_detection_time.
# This may be replaced when dependencies are built.
