# Empty dependencies file for bench_fig9_roc_curves.
# This may be replaced when dependencies are built.
