file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_roc_curves.dir/bench_fig9_roc_curves.cpp.o"
  "CMakeFiles/bench_fig9_roc_curves.dir/bench_fig9_roc_curves.cpp.o.d"
  "bench_fig9_roc_curves"
  "bench_fig9_roc_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_roc_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
