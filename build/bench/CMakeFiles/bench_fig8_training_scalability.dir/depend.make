# Empty dependencies file for bench_fig8_training_scalability.
# This may be replaced when dependencies are built.
