file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_training_scalability.dir/bench_fig8_training_scalability.cpp.o"
  "CMakeFiles/bench_fig8_training_scalability.dir/bench_fig8_training_scalability.cpp.o.d"
  "bench_fig8_training_scalability"
  "bench_fig8_training_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_training_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
