# Empty dependencies file for bench_fig7_rejection_rates.
# This may be replaced when dependencies are built.
