file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_feature_combinations.dir/bench_table1_feature_combinations.cpp.o"
  "CMakeFiles/bench_table1_feature_combinations.dir/bench_table1_feature_combinations.cpp.o.d"
  "bench_table1_feature_combinations"
  "bench_table1_feature_combinations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_feature_combinations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
