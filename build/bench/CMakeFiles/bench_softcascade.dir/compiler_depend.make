# Empty compiler generated dependencies file for bench_softcascade.
# This may be replaced when dependencies are built.
