file(REMOVE_RECURSE
  "CMakeFiles/bench_softcascade.dir/bench_softcascade.cpp.o"
  "CMakeFiles/bench_softcascade.dir/bench_softcascade.cpp.o.d"
  "bench_softcascade"
  "bench_softcascade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_softcascade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
