file(REMOVE_RECURSE
  "CMakeFiles/test_img.dir/img_image_test.cpp.o"
  "CMakeFiles/test_img.dir/img_image_test.cpp.o.d"
  "CMakeFiles/test_img.dir/img_io_edge_test.cpp.o"
  "CMakeFiles/test_img.dir/img_io_edge_test.cpp.o.d"
  "CMakeFiles/test_img.dir/img_ops_test.cpp.o"
  "CMakeFiles/test_img.dir/img_ops_test.cpp.o.d"
  "test_img"
  "test_img.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_img.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
