file(REMOVE_RECURSE
  "CMakeFiles/test_haar.dir/haar_cascade_test.cpp.o"
  "CMakeFiles/test_haar.dir/haar_cascade_test.cpp.o.d"
  "CMakeFiles/test_haar.dir/haar_encoding_test.cpp.o"
  "CMakeFiles/test_haar.dir/haar_encoding_test.cpp.o.d"
  "CMakeFiles/test_haar.dir/haar_enumerate_test.cpp.o"
  "CMakeFiles/test_haar.dir/haar_enumerate_test.cpp.o.d"
  "CMakeFiles/test_haar.dir/haar_feature_test.cpp.o"
  "CMakeFiles/test_haar.dir/haar_feature_test.cpp.o.d"
  "CMakeFiles/test_haar.dir/haar_profile_test.cpp.o"
  "CMakeFiles/test_haar.dir/haar_profile_test.cpp.o.d"
  "CMakeFiles/test_haar.dir/haar_tilted_test.cpp.o"
  "CMakeFiles/test_haar.dir/haar_tilted_test.cpp.o.d"
  "test_haar"
  "test_haar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_haar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
