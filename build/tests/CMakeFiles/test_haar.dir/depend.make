# Empty dependencies file for test_haar.
# This may be replaced when dependencies are built.
