file(REMOVE_RECURSE
  "CMakeFiles/test_facegen.dir/facegen_test.cpp.o"
  "CMakeFiles/test_facegen.dir/facegen_test.cpp.o.d"
  "test_facegen"
  "test_facegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_facegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
