file(REMOVE_RECURSE
  "CMakeFiles/test_detect.dir/detect_kernel_test.cpp.o"
  "CMakeFiles/test_detect.dir/detect_kernel_test.cpp.o.d"
  "CMakeFiles/test_detect.dir/detect_metric_test.cpp.o"
  "CMakeFiles/test_detect.dir/detect_metric_test.cpp.o.d"
  "CMakeFiles/test_detect.dir/detect_pipeline_test.cpp.o"
  "CMakeFiles/test_detect.dir/detect_pipeline_test.cpp.o.d"
  "CMakeFiles/test_detect.dir/detect_soft_extra_test.cpp.o"
  "CMakeFiles/test_detect.dir/detect_soft_extra_test.cpp.o.d"
  "CMakeFiles/test_detect.dir/detect_softcascade_test.cpp.o"
  "CMakeFiles/test_detect.dir/detect_softcascade_test.cpp.o.d"
  "test_detect"
  "test_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
