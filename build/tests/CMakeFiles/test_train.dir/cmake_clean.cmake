file(REMOVE_RECURSE
  "CMakeFiles/test_train.dir/train_boost_test.cpp.o"
  "CMakeFiles/test_train.dir/train_boost_test.cpp.o.d"
  "CMakeFiles/test_train.dir/train_matrix_test.cpp.o"
  "CMakeFiles/test_train.dir/train_matrix_test.cpp.o.d"
  "CMakeFiles/test_train.dir/train_pretrained_test.cpp.o"
  "CMakeFiles/test_train.dir/train_pretrained_test.cpp.o.d"
  "CMakeFiles/test_train.dir/train_stump_test.cpp.o"
  "CMakeFiles/test_train.dir/train_stump_test.cpp.o.d"
  "test_train"
  "test_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
