file(REMOVE_RECURSE
  "CMakeFiles/test_vgpu.dir/vgpu_dim_test.cpp.o"
  "CMakeFiles/test_vgpu.dir/vgpu_dim_test.cpp.o.d"
  "CMakeFiles/test_vgpu.dir/vgpu_kernel_test.cpp.o"
  "CMakeFiles/test_vgpu.dir/vgpu_kernel_test.cpp.o.d"
  "CMakeFiles/test_vgpu.dir/vgpu_occupancy_test.cpp.o"
  "CMakeFiles/test_vgpu.dir/vgpu_occupancy_test.cpp.o.d"
  "CMakeFiles/test_vgpu.dir/vgpu_scheduler_test.cpp.o"
  "CMakeFiles/test_vgpu.dir/vgpu_scheduler_test.cpp.o.d"
  "test_vgpu"
  "test_vgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
