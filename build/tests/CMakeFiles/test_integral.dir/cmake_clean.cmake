file(REMOVE_RECURSE
  "CMakeFiles/test_integral.dir/integral_rotated_test.cpp.o"
  "CMakeFiles/test_integral.dir/integral_rotated_test.cpp.o.d"
  "CMakeFiles/test_integral.dir/integral_test.cpp.o"
  "CMakeFiles/test_integral.dir/integral_test.cpp.o.d"
  "test_integral"
  "test_integral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
