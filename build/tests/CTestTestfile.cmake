# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(core "/root/repo/build/tests/test_core")
set_tests_properties(core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;fdet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(vgpu "/root/repo/build/tests/test_vgpu")
set_tests_properties(vgpu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;12;fdet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(img "/root/repo/build/tests/test_img")
set_tests_properties(img PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;13;fdet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integral "/root/repo/build/tests/test_integral")
set_tests_properties(integral PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;14;fdet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(haar "/root/repo/build/tests/test_haar")
set_tests_properties(haar PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;15;fdet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(facegen "/root/repo/build/tests/test_facegen")
set_tests_properties(facegen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;16;fdet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(train "/root/repo/build/tests/test_train")
set_tests_properties(train PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;17;fdet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(video "/root/repo/build/tests/test_video")
set_tests_properties(video PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;18;fdet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(detect "/root/repo/build/tests/test_detect")
set_tests_properties(detect PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;19;fdet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(eval "/root/repo/build/tests/test_eval")
set_tests_properties(eval PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;20;fdet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pipeline "/root/repo/build/tests/test_pipeline")
set_tests_properties(pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;21;fdet_test;/root/repo/tests/CMakeLists.txt;0;")
