# Empty compiler generated dependencies file for example_train_cascade.
# This may be replaced when dependencies are built.
