file(REMOVE_RECURSE
  "CMakeFiles/example_train_cascade.dir/train_cascade.cpp.o"
  "CMakeFiles/example_train_cascade.dir/train_cascade.cpp.o.d"
  "example_train_cascade"
  "example_train_cascade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_train_cascade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
