# Empty dependencies file for example_gpu_playground.
# This may be replaced when dependencies are built.
