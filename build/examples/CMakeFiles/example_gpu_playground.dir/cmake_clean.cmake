file(REMOVE_RECURSE
  "CMakeFiles/example_gpu_playground.dir/gpu_playground.cpp.o"
  "CMakeFiles/example_gpu_playground.dir/gpu_playground.cpp.o.d"
  "example_gpu_playground"
  "example_gpu_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gpu_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
