
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/img/draw.cpp" "src/CMakeFiles/fdet_img.dir/img/draw.cpp.o" "gcc" "src/CMakeFiles/fdet_img.dir/img/draw.cpp.o.d"
  "/root/repo/src/img/filter.cpp" "src/CMakeFiles/fdet_img.dir/img/filter.cpp.o" "gcc" "src/CMakeFiles/fdet_img.dir/img/filter.cpp.o.d"
  "/root/repo/src/img/image.cpp" "src/CMakeFiles/fdet_img.dir/img/image.cpp.o" "gcc" "src/CMakeFiles/fdet_img.dir/img/image.cpp.o.d"
  "/root/repo/src/img/io.cpp" "src/CMakeFiles/fdet_img.dir/img/io.cpp.o" "gcc" "src/CMakeFiles/fdet_img.dir/img/io.cpp.o.d"
  "/root/repo/src/img/nv12.cpp" "src/CMakeFiles/fdet_img.dir/img/nv12.cpp.o" "gcc" "src/CMakeFiles/fdet_img.dir/img/nv12.cpp.o.d"
  "/root/repo/src/img/pyramid.cpp" "src/CMakeFiles/fdet_img.dir/img/pyramid.cpp.o" "gcc" "src/CMakeFiles/fdet_img.dir/img/pyramid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fdet_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
