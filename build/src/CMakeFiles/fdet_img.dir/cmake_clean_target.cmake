file(REMOVE_RECURSE
  "libfdet_img.a"
)
