# Empty compiler generated dependencies file for fdet_img.
# This may be replaced when dependencies are built.
