file(REMOVE_RECURSE
  "CMakeFiles/fdet_img.dir/img/draw.cpp.o"
  "CMakeFiles/fdet_img.dir/img/draw.cpp.o.d"
  "CMakeFiles/fdet_img.dir/img/filter.cpp.o"
  "CMakeFiles/fdet_img.dir/img/filter.cpp.o.d"
  "CMakeFiles/fdet_img.dir/img/image.cpp.o"
  "CMakeFiles/fdet_img.dir/img/image.cpp.o.d"
  "CMakeFiles/fdet_img.dir/img/io.cpp.o"
  "CMakeFiles/fdet_img.dir/img/io.cpp.o.d"
  "CMakeFiles/fdet_img.dir/img/nv12.cpp.o"
  "CMakeFiles/fdet_img.dir/img/nv12.cpp.o.d"
  "CMakeFiles/fdet_img.dir/img/pyramid.cpp.o"
  "CMakeFiles/fdet_img.dir/img/pyramid.cpp.o.d"
  "libfdet_img.a"
  "libfdet_img.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdet_img.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
