file(REMOVE_RECURSE
  "libfdet_facegen.a"
)
