
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/facegen/background.cpp" "src/CMakeFiles/fdet_facegen.dir/facegen/background.cpp.o" "gcc" "src/CMakeFiles/fdet_facegen.dir/facegen/background.cpp.o.d"
  "/root/repo/src/facegen/dataset.cpp" "src/CMakeFiles/fdet_facegen.dir/facegen/dataset.cpp.o" "gcc" "src/CMakeFiles/fdet_facegen.dir/facegen/dataset.cpp.o.d"
  "/root/repo/src/facegen/face.cpp" "src/CMakeFiles/fdet_facegen.dir/facegen/face.cpp.o" "gcc" "src/CMakeFiles/fdet_facegen.dir/facegen/face.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fdet_img.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdet_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
