file(REMOVE_RECURSE
  "CMakeFiles/fdet_facegen.dir/facegen/background.cpp.o"
  "CMakeFiles/fdet_facegen.dir/facegen/background.cpp.o.d"
  "CMakeFiles/fdet_facegen.dir/facegen/dataset.cpp.o"
  "CMakeFiles/fdet_facegen.dir/facegen/dataset.cpp.o.d"
  "CMakeFiles/fdet_facegen.dir/facegen/face.cpp.o"
  "CMakeFiles/fdet_facegen.dir/facegen/face.cpp.o.d"
  "libfdet_facegen.a"
  "libfdet_facegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdet_facegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
