# Empty compiler generated dependencies file for fdet_facegen.
# This may be replaced when dependencies are built.
