# Empty dependencies file for fdet_video.
# This may be replaced when dependencies are built.
