file(REMOVE_RECURSE
  "CMakeFiles/fdet_video.dir/video/decoder.cpp.o"
  "CMakeFiles/fdet_video.dir/video/decoder.cpp.o.d"
  "CMakeFiles/fdet_video.dir/video/trailer.cpp.o"
  "CMakeFiles/fdet_video.dir/video/trailer.cpp.o.d"
  "libfdet_video.a"
  "libfdet_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdet_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
