file(REMOVE_RECURSE
  "libfdet_video.a"
)
