
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/decoder.cpp" "src/CMakeFiles/fdet_video.dir/video/decoder.cpp.o" "gcc" "src/CMakeFiles/fdet_video.dir/video/decoder.cpp.o.d"
  "/root/repo/src/video/trailer.cpp" "src/CMakeFiles/fdet_video.dir/video/trailer.cpp.o" "gcc" "src/CMakeFiles/fdet_video.dir/video/trailer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fdet_img.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdet_facegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdet_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
