# Empty compiler generated dependencies file for fdet_train.
# This may be replaced when dependencies are built.
