file(REMOVE_RECURSE
  "CMakeFiles/fdet_train.dir/train/boost.cpp.o"
  "CMakeFiles/fdet_train.dir/train/boost.cpp.o.d"
  "CMakeFiles/fdet_train.dir/train/dataset_matrix.cpp.o"
  "CMakeFiles/fdet_train.dir/train/dataset_matrix.cpp.o.d"
  "CMakeFiles/fdet_train.dir/train/pretrained.cpp.o"
  "CMakeFiles/fdet_train.dir/train/pretrained.cpp.o.d"
  "CMakeFiles/fdet_train.dir/train/smp_model.cpp.o"
  "CMakeFiles/fdet_train.dir/train/smp_model.cpp.o.d"
  "CMakeFiles/fdet_train.dir/train/stump.cpp.o"
  "CMakeFiles/fdet_train.dir/train/stump.cpp.o.d"
  "libfdet_train.a"
  "libfdet_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdet_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
