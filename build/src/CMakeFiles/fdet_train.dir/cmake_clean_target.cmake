file(REMOVE_RECURSE
  "libfdet_train.a"
)
