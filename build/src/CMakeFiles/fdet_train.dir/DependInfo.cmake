
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/boost.cpp" "src/CMakeFiles/fdet_train.dir/train/boost.cpp.o" "gcc" "src/CMakeFiles/fdet_train.dir/train/boost.cpp.o.d"
  "/root/repo/src/train/dataset_matrix.cpp" "src/CMakeFiles/fdet_train.dir/train/dataset_matrix.cpp.o" "gcc" "src/CMakeFiles/fdet_train.dir/train/dataset_matrix.cpp.o.d"
  "/root/repo/src/train/pretrained.cpp" "src/CMakeFiles/fdet_train.dir/train/pretrained.cpp.o" "gcc" "src/CMakeFiles/fdet_train.dir/train/pretrained.cpp.o.d"
  "/root/repo/src/train/smp_model.cpp" "src/CMakeFiles/fdet_train.dir/train/smp_model.cpp.o" "gcc" "src/CMakeFiles/fdet_train.dir/train/smp_model.cpp.o.d"
  "/root/repo/src/train/stump.cpp" "src/CMakeFiles/fdet_train.dir/train/stump.cpp.o" "gcc" "src/CMakeFiles/fdet_train.dir/train/stump.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fdet_haar.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdet_facegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdet_integral.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdet_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdet_img.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdet_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
