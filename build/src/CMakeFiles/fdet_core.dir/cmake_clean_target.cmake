file(REMOVE_RECURSE
  "libfdet_core.a"
)
