# Empty dependencies file for fdet_core.
# This may be replaced when dependencies are built.
