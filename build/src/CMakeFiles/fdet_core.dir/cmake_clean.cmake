file(REMOVE_RECURSE
  "CMakeFiles/fdet_core.dir/core/check.cpp.o"
  "CMakeFiles/fdet_core.dir/core/check.cpp.o.d"
  "CMakeFiles/fdet_core.dir/core/cli.cpp.o"
  "CMakeFiles/fdet_core.dir/core/cli.cpp.o.d"
  "CMakeFiles/fdet_core.dir/core/table.cpp.o"
  "CMakeFiles/fdet_core.dir/core/table.cpp.o.d"
  "CMakeFiles/fdet_core.dir/core/thread_pool.cpp.o"
  "CMakeFiles/fdet_core.dir/core/thread_pool.cpp.o.d"
  "libfdet_core.a"
  "libfdet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
