
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/check.cpp" "src/CMakeFiles/fdet_core.dir/core/check.cpp.o" "gcc" "src/CMakeFiles/fdet_core.dir/core/check.cpp.o.d"
  "/root/repo/src/core/cli.cpp" "src/CMakeFiles/fdet_core.dir/core/cli.cpp.o" "gcc" "src/CMakeFiles/fdet_core.dir/core/cli.cpp.o.d"
  "/root/repo/src/core/table.cpp" "src/CMakeFiles/fdet_core.dir/core/table.cpp.o" "gcc" "src/CMakeFiles/fdet_core.dir/core/table.cpp.o.d"
  "/root/repo/src/core/thread_pool.cpp" "src/CMakeFiles/fdet_core.dir/core/thread_pool.cpp.o" "gcc" "src/CMakeFiles/fdet_core.dir/core/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
