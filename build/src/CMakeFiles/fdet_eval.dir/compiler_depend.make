# Empty compiler generated dependencies file for fdet_eval.
# This may be replaced when dependencies are built.
