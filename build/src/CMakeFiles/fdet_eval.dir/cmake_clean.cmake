file(REMOVE_RECURSE
  "CMakeFiles/fdet_eval.dir/eval/accuracy.cpp.o"
  "CMakeFiles/fdet_eval.dir/eval/accuracy.cpp.o.d"
  "CMakeFiles/fdet_eval.dir/eval/hungarian.cpp.o"
  "CMakeFiles/fdet_eval.dir/eval/hungarian.cpp.o.d"
  "libfdet_eval.a"
  "libfdet_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdet_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
