file(REMOVE_RECURSE
  "libfdet_eval.a"
)
