file(REMOVE_RECURSE
  "CMakeFiles/fdet_detect.dir/detect/detection.cpp.o"
  "CMakeFiles/fdet_detect.dir/detect/detection.cpp.o.d"
  "CMakeFiles/fdet_detect.dir/detect/grouping.cpp.o"
  "CMakeFiles/fdet_detect.dir/detect/grouping.cpp.o.d"
  "CMakeFiles/fdet_detect.dir/detect/kernels.cpp.o"
  "CMakeFiles/fdet_detect.dir/detect/kernels.cpp.o.d"
  "CMakeFiles/fdet_detect.dir/detect/pipeline.cpp.o"
  "CMakeFiles/fdet_detect.dir/detect/pipeline.cpp.o.d"
  "CMakeFiles/fdet_detect.dir/detect/soft_cascade.cpp.o"
  "CMakeFiles/fdet_detect.dir/detect/soft_cascade.cpp.o.d"
  "libfdet_detect.a"
  "libfdet_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdet_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
