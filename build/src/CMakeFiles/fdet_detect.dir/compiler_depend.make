# Empty compiler generated dependencies file for fdet_detect.
# This may be replaced when dependencies are built.
