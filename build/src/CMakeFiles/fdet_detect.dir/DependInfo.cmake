
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/detection.cpp" "src/CMakeFiles/fdet_detect.dir/detect/detection.cpp.o" "gcc" "src/CMakeFiles/fdet_detect.dir/detect/detection.cpp.o.d"
  "/root/repo/src/detect/grouping.cpp" "src/CMakeFiles/fdet_detect.dir/detect/grouping.cpp.o" "gcc" "src/CMakeFiles/fdet_detect.dir/detect/grouping.cpp.o.d"
  "/root/repo/src/detect/kernels.cpp" "src/CMakeFiles/fdet_detect.dir/detect/kernels.cpp.o" "gcc" "src/CMakeFiles/fdet_detect.dir/detect/kernels.cpp.o.d"
  "/root/repo/src/detect/pipeline.cpp" "src/CMakeFiles/fdet_detect.dir/detect/pipeline.cpp.o" "gcc" "src/CMakeFiles/fdet_detect.dir/detect/pipeline.cpp.o.d"
  "/root/repo/src/detect/soft_cascade.cpp" "src/CMakeFiles/fdet_detect.dir/detect/soft_cascade.cpp.o" "gcc" "src/CMakeFiles/fdet_detect.dir/detect/soft_cascade.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fdet_integral.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdet_haar.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdet_video.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdet_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdet_facegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdet_img.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdet_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
