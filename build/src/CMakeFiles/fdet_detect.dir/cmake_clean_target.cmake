file(REMOVE_RECURSE
  "libfdet_detect.a"
)
