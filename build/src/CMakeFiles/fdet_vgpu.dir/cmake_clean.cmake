file(REMOVE_RECURSE
  "CMakeFiles/fdet_vgpu.dir/vgpu/device.cpp.o"
  "CMakeFiles/fdet_vgpu.dir/vgpu/device.cpp.o.d"
  "CMakeFiles/fdet_vgpu.dir/vgpu/kernel.cpp.o"
  "CMakeFiles/fdet_vgpu.dir/vgpu/kernel.cpp.o.d"
  "CMakeFiles/fdet_vgpu.dir/vgpu/scheduler.cpp.o"
  "CMakeFiles/fdet_vgpu.dir/vgpu/scheduler.cpp.o.d"
  "libfdet_vgpu.a"
  "libfdet_vgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdet_vgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
