# Empty dependencies file for fdet_vgpu.
# This may be replaced when dependencies are built.
