
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vgpu/device.cpp" "src/CMakeFiles/fdet_vgpu.dir/vgpu/device.cpp.o" "gcc" "src/CMakeFiles/fdet_vgpu.dir/vgpu/device.cpp.o.d"
  "/root/repo/src/vgpu/kernel.cpp" "src/CMakeFiles/fdet_vgpu.dir/vgpu/kernel.cpp.o" "gcc" "src/CMakeFiles/fdet_vgpu.dir/vgpu/kernel.cpp.o.d"
  "/root/repo/src/vgpu/scheduler.cpp" "src/CMakeFiles/fdet_vgpu.dir/vgpu/scheduler.cpp.o" "gcc" "src/CMakeFiles/fdet_vgpu.dir/vgpu/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fdet_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
