file(REMOVE_RECURSE
  "libfdet_vgpu.a"
)
