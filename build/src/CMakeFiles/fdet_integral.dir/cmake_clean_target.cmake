file(REMOVE_RECURSE
  "libfdet_integral.a"
)
