# Empty dependencies file for fdet_integral.
# This may be replaced when dependencies are built.
