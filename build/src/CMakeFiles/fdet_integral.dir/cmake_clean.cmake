file(REMOVE_RECURSE
  "CMakeFiles/fdet_integral.dir/integral/gpu.cpp.o"
  "CMakeFiles/fdet_integral.dir/integral/gpu.cpp.o.d"
  "CMakeFiles/fdet_integral.dir/integral/integral.cpp.o"
  "CMakeFiles/fdet_integral.dir/integral/integral.cpp.o.d"
  "CMakeFiles/fdet_integral.dir/integral/rotated.cpp.o"
  "CMakeFiles/fdet_integral.dir/integral/rotated.cpp.o.d"
  "libfdet_integral.a"
  "libfdet_integral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdet_integral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
