file(REMOVE_RECURSE
  "libfdet_haar.a"
)
