# Empty compiler generated dependencies file for fdet_haar.
# This may be replaced when dependencies are built.
