
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/haar/cascade.cpp" "src/CMakeFiles/fdet_haar.dir/haar/cascade.cpp.o" "gcc" "src/CMakeFiles/fdet_haar.dir/haar/cascade.cpp.o.d"
  "/root/repo/src/haar/encoding.cpp" "src/CMakeFiles/fdet_haar.dir/haar/encoding.cpp.o" "gcc" "src/CMakeFiles/fdet_haar.dir/haar/encoding.cpp.o.d"
  "/root/repo/src/haar/enumerate.cpp" "src/CMakeFiles/fdet_haar.dir/haar/enumerate.cpp.o" "gcc" "src/CMakeFiles/fdet_haar.dir/haar/enumerate.cpp.o.d"
  "/root/repo/src/haar/feature.cpp" "src/CMakeFiles/fdet_haar.dir/haar/feature.cpp.o" "gcc" "src/CMakeFiles/fdet_haar.dir/haar/feature.cpp.o.d"
  "/root/repo/src/haar/profile.cpp" "src/CMakeFiles/fdet_haar.dir/haar/profile.cpp.o" "gcc" "src/CMakeFiles/fdet_haar.dir/haar/profile.cpp.o.d"
  "/root/repo/src/haar/tilted.cpp" "src/CMakeFiles/fdet_haar.dir/haar/tilted.cpp.o" "gcc" "src/CMakeFiles/fdet_haar.dir/haar/tilted.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fdet_integral.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdet_img.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdet_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdet_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
