file(REMOVE_RECURSE
  "CMakeFiles/fdet_haar.dir/haar/cascade.cpp.o"
  "CMakeFiles/fdet_haar.dir/haar/cascade.cpp.o.d"
  "CMakeFiles/fdet_haar.dir/haar/encoding.cpp.o"
  "CMakeFiles/fdet_haar.dir/haar/encoding.cpp.o.d"
  "CMakeFiles/fdet_haar.dir/haar/enumerate.cpp.o"
  "CMakeFiles/fdet_haar.dir/haar/enumerate.cpp.o.d"
  "CMakeFiles/fdet_haar.dir/haar/feature.cpp.o"
  "CMakeFiles/fdet_haar.dir/haar/feature.cpp.o.d"
  "CMakeFiles/fdet_haar.dir/haar/profile.cpp.o"
  "CMakeFiles/fdet_haar.dir/haar/profile.cpp.o.d"
  "CMakeFiles/fdet_haar.dir/haar/tilted.cpp.o"
  "CMakeFiles/fdet_haar.dir/haar/tilted.cpp.o.d"
  "libfdet_haar.a"
  "libfdet_haar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdet_haar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
